#!/usr/bin/env python3
"""Domain scenario: Ethernet-style bursty traffic with external interference.

The paper motivates contention resolution with congestion control on shared
media (Ethernet, 802.11).  This example starts from the named
``ethernet-burst`` scenario (a first-class, JSON-serializable spec), derives
a heavier variant with 25% interference by overriding two spec fields, and
shows how the system drains each burst — including a per-window success-rate
timeline recorded with a metrics collector (collectors ride on the same spec
through ``StudySpec.run(collectors=...)``).

Run it with::

    python examples/ethernet_burst.py

Set ``REPRO_EXAMPLES_SCALE=smoke`` for a fast CI-sized run.
"""

import os

from repro.metrics import WindowedSuccessCounter, summarize_latencies
from repro.workloads import get_scenario

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"
HORIZON = 2048 if SMOKE else 16384
BURST_SIZE = 8 if SMOKE else 32
BURST_PERIOD = 256 if SMOKE else 2048
JAM_FRACTION = 0.25


def main() -> None:
    scenario = get_scenario("ethernet-burst")
    print(f"Scenario '{scenario.key}': {scenario.description}")
    print("This example runs a heavier variant of it with 25% interference.\n")

    # The scenario is a spec; the heavier variant is a few dotted-path
    # overrides away (burst shape, horizon, and random-fraction jamming).
    study = scenario.study_spec(trials=1, seed=99).with_overrides(
        {
            "horizon": HORIZON,
            "adversary.arrivals.params.burst_size": BURST_SIZE,
            "adversary.arrivals.params.period": BURST_PERIOD,
            "adversary.jamming.kind": "random-fraction",
            "adversary.jamming.params": {"fraction": JAM_FRACTION},
            "label": "ethernet-burst-heavy",
        }
    )

    window_counter = WindowedSuccessCounter(window=BURST_PERIOD)
    result = study.run(collectors=[window_counter]).results[0]

    print(result.describe())
    latency = summarize_latencies([result])
    print(
        f"stations served: {result.total_successes}/{result.total_arrivals}, "
        f"latency mean {latency.mean:.0f} / p95 {latency.p95:.0f} slots\n"
    )

    print("deliveries per burst period (each window is one burst interval):")
    for index, count in enumerate(window_counter.counts, start=1):
        bar = "#" * count
        print(f"  window {index:2d}: {count:3d} {bar}")


if __name__ == "__main__":
    main()
