#!/usr/bin/env python3
"""Domain scenario: Ethernet-style bursty traffic with external interference.

The paper motivates contention resolution with congestion control on shared
media (Ethernet, 802.11).  This example uses the named workload scenarios in
``repro.workloads`` to model stations waking up in bursts while a quarter of
the slots are unusable due to interference, and shows how the system drains
each burst — including a per-window success-rate timeline recorded with a
metrics collector.

Run it with::

    python examples/ethernet_burst.py
"""

from repro import AlgorithmParameters, Simulator, SimulatorConfig, cjz_factory, constant_g
from repro.adversary import BurstyArrivals, ComposedAdversary, RandomFractionJamming
from repro.metrics import WindowedSuccessCounter, summarize_latencies
from repro.workloads import get_scenario

HORIZON = 16384
BURST_SIZE = 32
BURST_PERIOD = 2048
JAM_FRACTION = 0.25


def main() -> None:
    scenario = get_scenario("ethernet-burst")
    print(f"Scenario '{scenario.key}': {scenario.description}")
    print("This example runs a heavier variant of it with 25% interference.\n")

    adversary = ComposedAdversary(
        BurstyArrivals(BURST_SIZE, period=BURST_PERIOD, jitter=True),
        RandomFractionJamming(JAM_FRACTION),
    )
    window_counter = WindowedSuccessCounter(window=BURST_PERIOD)
    simulator = Simulator(
        protocol_factory=cjz_factory(AlgorithmParameters.from_g(constant_g(4.0))),
        adversary=adversary,
        config=SimulatorConfig(horizon=HORIZON),
        collectors=[window_counter],
        seed=99,
    )
    result = simulator.run()

    print(result.describe())
    latency = summarize_latencies([result])
    print(
        f"stations served: {result.total_successes}/{result.total_arrivals}, "
        f"latency mean {latency.mean:.0f} / p95 {latency.p95:.0f} slots\n"
    )

    print("deliveries per burst period (each window is one burst interval):")
    for index, count in enumerate(window_counter.counts, start=1):
        bar = "#" * count
        print(f"  window {index:2d}: {count:3d} {bar}")


if __name__ == "__main__":
    main()
