#!/usr/bin/env python3
"""Compare the paper's algorithm against classical backoff baselines.

Every contender is a declarative :class:`ProtocolSpec` and both workloads
are specs too, so each (protocol, workload) cell of the comparison is a
complete, serializable :class:`StudySpec`:

* the **lock-convoy** scenario (a large simultaneous batch with reactive
  stalls), where constant-probability senders collapse; and
* the **lower-bound adversary** of Lemma 4.1 (a lone node behind a jammed
  prefix), where the classical ``1/i`` probability backoff is starved while
  the paper's adaptive backoff recovers quickly.

Together they illustrate the dilemma the paper's impossibility results
formalize and why the adaptive ``backoff`` subroutine is necessary.

Run it with::

    python examples/baseline_showdown.py

Set ``REPRO_EXAMPLES_SCALE=smoke`` for a fast CI-sized run.
"""

import os

from repro.analysis import compare_protocols
from repro.analysis.comparison import comparison_table
from repro.metrics import summarize_latencies
from repro.spec import AdversarySpec, ProtocolSpec, StudySpec
from repro.workloads import get_scenario

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"
TRIALS = 2 if SMOKE else 3
LOWER_BOUND_HORIZON = 1024 if SMOKE else 8192


def contenders():
    return {
        "chen-jiang-zheng": ProtocolSpec(kind="cjz"),
        "binary-exponential": ProtocolSpec(kind="binary-exponential-backoff"),
        "probability 1/i": ProtocolSpec(kind="probability-backoff", params={"scale": 1.0}),
        "sawtooth": ProtocolSpec(kind="sawtooth-backoff"),
        "aloha(0.05)": ProtocolSpec(kind="slotted-aloha", params={"probability": 0.05}),
    }


def lock_convoy() -> None:
    scenario = get_scenario("lock-convoy")
    print(f"Workload 1 — {scenario.key}: {scenario.description}")
    base = scenario.study_spec(trials=TRIALS, seed=5)
    if SMOKE:
        base = base.with_overrides(
            {"horizon": 2048, "adversary.arrivals.params.count": 48}
        )
    studies = {
        name: base.with_overrides({"protocol": protocol.to_dict()}).run()
        for name, protocol in contenders().items()
    }
    rows = compare_protocols(studies, workload=scenario.key)
    print(comparison_table(rows, title="lock-convoy results").render())
    print()


def lower_bound_adversary() -> None:
    horizon = LOWER_BOUND_HORIZON
    print("Workload 2 — Lemma 4.1 adversary: lone node behind a jammed prefix")

    adversary = AdversarySpec(
        kind="lower-bound",
        params={
            "g": {"kind": "constant", "params": {"value": 4.0}},
            "initial_nodes": 1,
        },
    )
    for name, protocol in contenders().items():
        study = StudySpec(
            protocol=protocol,
            adversary=adversary,
            horizon=horizon,
            trials=TRIALS,
            seed=6,
            label=name,
        ).run()
        latency = summarize_latencies(list(study))
        unfinished = study.mean(lambda r: r.unfinished_nodes)
        latency_text = "never" if latency.count == 0 else f"{latency.mean:8.0f} slots"
        print(f"  {name:22s} mean latency {latency_text}   unfinished/trial {unfinished:.1f}")
    print()


def main() -> None:
    lock_convoy()
    lower_bound_adversary()
    print(
        "Reading the results: the 1/i probability backoff is the slowest (and sometimes\n"
        "fails outright) behind the jammed prefix, and constant-probability ALOHA pays an\n"
        "order-of-magnitude latency penalty on the convoy, while the paper's algorithm is\n"
        "solid on both — the robustness its worst-case guarantee is about.  On benign\n"
        "workloads the classical baselines keep better constants; the paper does not claim\n"
        "otherwise."
    )


if __name__ == "__main__":
    main()
