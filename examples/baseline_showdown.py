#!/usr/bin/env python3
"""Compare the paper's algorithm against classical backoff baselines.

Two workloads are used:

* the **lock-convoy** scenario (a large simultaneous batch with reactive
  stalls), where constant-probability senders collapse; and
* the **lower-bound adversary** of Lemma 4.1 (a lone node behind a jammed
  prefix), where the classical ``1/i`` probability backoff is starved while
  the paper's adaptive backoff recovers quickly.

Together they illustrate the dilemma the paper's impossibility results
formalize and why the adaptive ``backoff`` subroutine is necessary.

Run it with::

    python examples/baseline_showdown.py
"""

from repro import AlgorithmParameters, cjz_factory, constant_g
from repro.adversary import LowerBoundAdversary
from repro.analysis import compare_protocols
from repro.analysis.comparison import comparison_table
from repro.metrics import summarize_latencies
from repro.protocols import (
    ProbabilityBackoff,
    SawtoothBackoff,
    SlottedAloha,
    WindowedBinaryExponentialBackoff,
    make_factory,
)
from repro.sim import run_trials
from repro.workloads import build_adversary_factory, get_scenario

TRIALS = 3


def contenders():
    return {
        "chen-jiang-zheng": cjz_factory(AlgorithmParameters.from_g(constant_g(4.0))),
        "binary-exponential": make_factory(WindowedBinaryExponentialBackoff),
        "probability 1/i": make_factory(ProbabilityBackoff, 1.0),
        "sawtooth": make_factory(SawtoothBackoff),
        "aloha(0.05)": make_factory(SlottedAloha, 0.05),
    }


def lock_convoy() -> None:
    scenario = get_scenario("lock-convoy")
    print(f"Workload 1 — {scenario.key}: {scenario.description}")
    studies = {
        name: run_trials(
            protocol_factory=factory,
            adversary_factory=build_adversary_factory(scenario.spec),
            horizon=scenario.spec.horizon,
            trials=TRIALS,
            seed=5,
            label=scenario.key,
        )
        for name, factory in contenders().items()
    }
    rows = compare_protocols(studies, workload=scenario.key)
    print(comparison_table(rows, title="lock-convoy results").render())
    print()


def lower_bound_adversary() -> None:
    horizon = 8192
    print("Workload 2 — Lemma 4.1 adversary: lone node behind a jammed prefix")

    def adversary():
        return LowerBoundAdversary(horizon=horizon, g=constant_g(4.0), initial_nodes=1)

    for name, factory in contenders().items():
        study = run_trials(
            protocol_factory=factory,
            adversary_factory=adversary,
            horizon=horizon,
            trials=TRIALS,
            seed=6,
            label=name,
        )
        latency = summarize_latencies(list(study))
        unfinished = study.mean(lambda r: r.unfinished_nodes)
        latency_text = "never" if latency.count == 0 else f"{latency.mean:8.0f} slots"
        print(f"  {name:22s} mean latency {latency_text}   unfinished/trial {unfinished:.1f}")
    print()


def main() -> None:
    lock_convoy()
    lower_bound_adversary()
    print(
        "Reading the results: the 1/i probability backoff is the slowest (and sometimes\n"
        "fails outright) behind the jammed prefix, and constant-probability ALOHA pays an\n"
        "order-of-magnitude latency penalty on the convoy, while the paper's algorithm is\n"
        "solid on both — the robustness its worst-case guarantee is about.  On benign\n"
        "workloads the classical baselines keep better constants; the paper does not claim\n"
        "otherwise."
    )


if __name__ == "__main__":
    main()
