#!/usr/bin/env python3
"""Explore the throughput/jamming trade-off that gives the paper its title.

The script is one declarative grid sweep: a base :class:`StudySpec` (spread
arrivals over a fixed horizon) plus a single axis over the fraction of
jammed slots.  Each grid point measures what the paper's algorithm delivers:
messages delivered, active slots per arrival (the inverse of throughput) and
mean latency.  The per-arrival overhead degrades from "a few slots" towards
the Θ(log t) worst-case bound as jamming approaches the constant-fraction
regime — the trade-off of Theorems 1.2 and 1.3 in action.

The same sweep is available from the shell::

    python -m repro.cli sweep --spec <(python examples/jamming_tradeoff.py --emit-spec) \\
        --axis adversary.jamming.params.fraction=0.0,0.1,0.25,0.4

Run it with::

    python examples/jamming_tradeoff.py

Set ``REPRO_EXAMPLES_SCALE=smoke`` for a fast CI-sized run.
"""

import os
import sys

from repro.analysis import Table
from repro.spec import AdversarySpec, ProtocolSpec, StudyPlan, StudySpec, Sweep

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"
HORIZON = 2048 if SMOKE else 16384
ARRIVALS = 32 if SMOKE else 256
TRIALS = 2 if SMOKE else 3


def base_spec() -> StudySpec:
    # The base uses the random-fraction jamming kind (fraction 0.25) so the
    # sweep axis can rebind the fraction — including to 0.0, the clean channel.
    return StudySpec(
        protocol=ProtocolSpec(kind="cjz"),
        adversary=AdversarySpec.spread(ARRIVALS, end=HORIZON // 2, jam_fraction=0.25),
        horizon=HORIZON,
        trials=TRIALS,
        seed=7,
        label="jamming-tradeoff",
    )


def main() -> None:
    if "--emit-spec" in sys.argv:
        print(base_spec().to_json(indent=2))
        return

    sweep = Sweep(
        base_spec(),
        {"adversary.jamming.params.fraction": [0.0, 0.10, 0.25, 0.40]},
    )
    results = StudyPlan.from_sweep(sweep).run()

    table = Table(
        title=f"Jamming sweep: {ARRIVALS} arrivals over {HORIZON} slots ({TRIALS} trials)",
        columns=[
            "jammed fraction",
            "delivered",
            "unfinished",
            "active slots / arrival",
            "mean latency",
        ],
    )
    for point in results:
        study = point.study
        fraction = point.overrides["adversary.jamming.params.fraction"]
        table.add_row(
            f"{fraction:.0%}",
            study.mean(lambda r: r.total_successes),
            study.mean(lambda r: r.unfinished_nodes),
            study.mean(lambda r: r.total_active_slots / max(1, r.total_arrivals)),
            study.mean(lambda r: r.mean_latency()),
        )
    print(table.render())
    print()
    print(
        "The overhead per arrival grows as jamming intensifies but stays near the\n"
        "Θ(log t) bound of the constant-g regime — degradation is graceful, never a collapse."
    )


if __name__ == "__main__":
    main()
