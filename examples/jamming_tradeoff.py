#!/usr/bin/env python3
"""Explore the throughput/jamming trade-off that gives the paper its title.

The script sweeps the fraction of jammed slots from 0% to 40% and, for each
level, measures what the paper's algorithm delivers within a fixed horizon:
messages delivered, active slots per arrival (the inverse of throughput) and
the time the last message needed.  The per-arrival overhead degrades from
"a few slots" towards the Θ(log t) worst-case bound as jamming approaches the
constant-fraction regime — the trade-off of Theorems 1.2 and 1.3 in action.

Run it with::

    python examples/jamming_tradeoff.py
"""

from repro import AlgorithmParameters, cjz_factory, constant_g
from repro.adversary import ComposedAdversary, NoJamming, RandomFractionJamming, UniformRandomArrivals
from repro.analysis import Table
from repro.sim import run_trials

HORIZON = 16384
ARRIVALS = 256
TRIALS = 3


def adversary_factory(jam_fraction: float):
    def _factory():
        jamming = RandomFractionJamming(jam_fraction) if jam_fraction else NoJamming()
        return ComposedAdversary(
            UniformRandomArrivals(ARRIVALS, (1, HORIZON // 2)), jamming
        )

    return _factory


def main() -> None:
    parameters = AlgorithmParameters.from_g(constant_g(4.0))
    table = Table(
        title=f"Jamming sweep: {ARRIVALS} arrivals over {HORIZON} slots ({TRIALS} trials)",
        columns=[
            "jammed fraction",
            "delivered",
            "unfinished",
            "active slots / arrival",
            "mean latency",
        ],
    )
    for fraction in (0.0, 0.10, 0.25, 0.40):
        study = run_trials(
            protocol_factory=cjz_factory(parameters),
            adversary_factory=adversary_factory(fraction),
            horizon=HORIZON,
            trials=TRIALS,
            seed=7,
            label=f"jam={fraction:.0%}",
        )
        table.add_row(
            f"{fraction:.0%}",
            study.mean(lambda r: r.total_successes),
            study.mean(lambda r: r.unfinished_nodes),
            study.mean(lambda r: r.total_active_slots / max(1, r.total_arrivals)),
            study.mean(lambda r: r.mean_latency()),
        )
    print(table.render())
    print()
    print(
        "The overhead per arrival grows as jamming intensifies but stays near the\n"
        "Θ(log t) bound of the constant-g regime — degradation is graceful, never a collapse."
    )


if __name__ == "__main__":
    main()
