#!/usr/bin/env python3
"""Quickstart: run the paper's algorithm on a jammed batch workload.

This is the smallest end-to-end use of the declarative spec API:

1. describe the protocol (the paper's algorithm with a constant jamming
   budget ``g`` — the worst case it considers) as a :class:`ProtocolSpec`;
2. describe the adversary (a batch of nodes plus random jamming) as an
   :class:`AdversarySpec`;
3. bundle both with horizon/seed into a :class:`StudySpec` — plain JSON
   data that can be saved, diffed, shipped or swept;
4. run it and inspect the result.

Run it with::

    python examples/quickstart.py

Set ``REPRO_EXAMPLES_SCALE=smoke`` for a fast CI-sized run.
"""

import os

from repro import AlgorithmParameters, constant_g
from repro.metrics import check_fg_throughput, summarize_energy, summarize_latencies
from repro.spec import AdversarySpec, ProtocolSpec, StudySpec

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"
HORIZON = 1024 if SMOKE else 8192
ARRIVALS = 16 if SMOKE else 64


def main() -> None:
    # The algorithm is parameterized by how much jamming it should tolerate.
    # A constant g means "a constant fraction of all slots may be jammed".
    protocol = ProtocolSpec(
        kind="cjz", params={"g": {"kind": "constant", "params": {"value": 4.0}}}
    )

    # ARRIVALS nodes arrive simultaneously in slot 1; 25% of slots are jammed.
    adversary = AdversarySpec.batch(ARRIVALS, jam_fraction=0.25)

    study = StudySpec(
        protocol=protocol,
        adversary=adversary,
        horizon=HORIZON,
        trials=1,
        seed=2021,
        label="quickstart",
    )
    print("The full study description, as JSON:")
    print(study.to_json(indent=2))
    print()

    result = study.run().results[0]

    print(result.describe())
    print(f"classical throughput n_t/a_t at the horizon: {result.classical_throughput():.3f}")

    latency = summarize_latencies([result])
    energy = summarize_energy([result])
    print(f"latency (slots to success): mean {latency.mean:.0f}, p95 {latency.p95:.0f}")
    print(f"channel accesses per node:  mean {energy.mean:.1f}, p95 {energy.p95:.1f}")

    # Check the paper's (f, g)-throughput bound (Definition 1.1) on every
    # prefix, using the same parameters the protocol spec builds.
    parameters = AlgorithmParameters.from_g(constant_g(4.0))
    report = check_fg_throughput(
        result, parameters.f, parameters.g, slack=8.0, min_prefix=64, additive_grace=128.0
    )
    print(
        "(f, g)-throughput bound satisfied on every prefix:"
        f" {report.satisfied} (worst prefix uses {report.worst_ratio:.0%} of the bound)"
    )


if __name__ == "__main__":
    main()
