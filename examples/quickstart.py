#!/usr/bin/env python3
"""Quickstart: run the paper's algorithm on a jammed batch workload.

This is the smallest end-to-end use of the public API:

1. choose the jamming budget function ``g`` (here: constant, i.e. the
   adversary may jam a constant fraction of all slots — the worst case the
   paper considers);
2. build the algorithm's parameters and a protocol factory;
3. describe an adversary (a batch of nodes plus random jamming);
4. run the simulator and inspect the result.

Run it with::

    python examples/quickstart.py
"""

from repro import AlgorithmParameters, SimulatorConfig, Simulator, cjz_factory, constant_g
from repro.adversary import BatchArrivals, ComposedAdversary, RandomFractionJamming
from repro.metrics import check_fg_throughput, summarize_energy, summarize_latencies


def main() -> None:
    # The algorithm is parameterized by how much jamming it should tolerate.
    # A constant g means "a constant fraction of all slots may be jammed".
    parameters = AlgorithmParameters.from_g(constant_g(4.0))

    # 64 nodes arrive simultaneously in slot 1; 25% of slots are jammed.
    adversary = ComposedAdversary(BatchArrivals(64), RandomFractionJamming(0.25))

    simulator = Simulator(
        protocol_factory=cjz_factory(parameters),
        adversary=adversary,
        config=SimulatorConfig(horizon=8192),
        seed=2021,
    )
    result = simulator.run()

    print(result.describe())
    print(f"classical throughput n_t/a_t at the horizon: {result.classical_throughput():.3f}")

    latency = summarize_latencies([result])
    energy = summarize_energy([result])
    print(f"latency (slots to success): mean {latency.mean:.0f}, p95 {latency.p95:.0f}")
    print(f"channel accesses per node:  mean {energy.mean:.1f}, p95 {energy.p95:.1f}")

    # Check the paper's (f, g)-throughput bound (Definition 1.1) on every prefix.
    report = check_fg_throughput(
        result, parameters.f, parameters.g, slack=8.0, min_prefix=64, additive_grace=128.0
    )
    print(
        "(f, g)-throughput bound satisfied on every prefix:"
        f" {report.satisfied} (worst prefix uses {report.worst_ratio:.0%} of the bound)"
    )


if __name__ == "__main__":
    main()
