"""Tests for the persistent benchmark harness (repro.bench)."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    collect_bench,
    compare_bench,
    default_bench_path,
    load_bench,
    machine_info,
    render_comparison,
    run_micro_suite,
    write_bench,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def bench_data():
    """One tiny real suite run shared by the module's tests."""
    return collect_bench(
        scale="smoke",
        seed=7,
        backends=("vectorized", "batched-study"),
        include_experiments=False,
        repeats=1,
    )


class TestMicroSuite:
    def test_rejects_unknown_scale(self):
        with pytest.raises(ConfigurationError, match="scale"):
            run_micro_suite(scale="galactic")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            run_micro_suite(scale="smoke", backends=("warp-drive",))

    def test_records_have_required_fields(self, bench_data):
        micro = [b for b in bench_data["benchmarks"] if b["kind"] == "micro"]
        assert micro, "micro suite produced no records"
        for record in micro:
            assert record["wall_time_s"] > 0
            assert record["slots_per_second"] > 0
            assert record["per_trial_s"] > 0
            assert record["backend"] in ("vectorized", "batched-study")
            assert record["params"]["trials"] >= 1

    def test_records_have_memory_profile(self, bench_data):
        micro = [b for b in bench_data["benchmarks"] if b["kind"] == "micro"]
        for record in micro:
            assert record["peak_bytes_per_slot"] > 0
            # Four int64 prefix columns retained per slot.
            assert record["result_bytes_per_slot"] == 32.0
            # The pre-columnar list representation must measure strictly larger.
            assert (
                record["legacy_list_bytes_per_slot"]
                > record["result_bytes_per_slot"]
            )

    def test_batched_records_report_streaming_bytes(self, bench_data):
        batched = [
            b
            for b in bench_data["benchmarks"]
            if b["kind"] == "micro" and b["backend"] == "batched-study"
        ]
        assert batched
        for record in batched:
            # Streaming keeps only summaries; nothing per-slot is retained.
            assert record["streaming_result_bytes_per_slot"] == 0.0

    def test_batched_records_report_vectorized_speedup(self, bench_data):
        batched = [
            b
            for b in bench_data["benchmarks"]
            if b["kind"] == "micro" and b["backend"] == "batched-study"
        ]
        assert batched
        for record in batched:
            assert record["speedup_vs_vectorized"] > 0


class TestDocument:
    def test_schema_and_machine_fields(self, bench_data):
        assert bench_data["schema_version"] == SCHEMA_VERSION
        assert bench_data["machine"] == machine_info()
        assert bench_data["scale"] == "smoke"

    def test_roundtrip_through_file(self, tmp_path, bench_data):
        path = write_bench(bench_data, tmp_path / "BENCH_test.json")
        loaded = load_bench(path)
        assert loaded == json.loads(json.dumps(bench_data))

    def test_load_rejects_other_schema_versions(self, tmp_path, bench_data):
        data = dict(bench_data, schema_version=999)
        path = write_bench(data, tmp_path / "BENCH_bad.json")
        with pytest.raises(ConfigurationError, match="schema_version"):
            load_bench(path)

    def test_default_path_is_dated(self, tmp_path):
        path = default_bench_path(tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"


class TestComparison:
    def test_identical_files_have_no_regressions(self, bench_data):
        assert compare_bench(bench_data, bench_data) == []

    def test_speedup_regression_detected(self, bench_data):
        current = json.loads(json.dumps(bench_data))
        for record in current["benchmarks"]:
            if "speedup_vs_vectorized" in record:
                record["speedup_vs_vectorized"] *= 0.5
        regressions = compare_bench(bench_data, current, threshold=0.2)
        assert regressions
        assert all(r["metric"] == "speedup_vs_vectorized" for r in regressions)
        report = render_comparison(regressions)
        assert "regression" in report

    def test_wall_time_ignored_across_machines(self, bench_data):
        current = json.loads(json.dumps(bench_data))
        current["machine"] = dict(current["machine"], platform="other-machine")
        for record in current["benchmarks"]:
            record["wall_time_s"] = record["wall_time_s"] * 100
        # Wall time is machine-bound; only normalized speedups are compared.
        assert compare_bench(bench_data, current, threshold=0.2) == []

    def test_wall_time_regression_on_same_machine(self, bench_data):
        current = json.loads(json.dumps(bench_data))
        for record in current["benchmarks"]:
            record["wall_time_s"] = record["wall_time_s"] * 10
        regressions = compare_bench(bench_data, current, threshold=0.2)
        assert any(r["metric"] == "wall_time_s" for r in regressions)

    def test_memory_regression_detected(self, bench_data):
        current = json.loads(json.dumps(bench_data))
        for record in current["benchmarks"]:
            if "result_bytes_per_slot" in record:
                record["result_bytes_per_slot"] *= 2
                record["peak_bytes_per_slot"] *= 2
        regressions = compare_bench(bench_data, current, threshold=0.2)
        metrics = {r["metric"] for r in regressions}
        assert "result_bytes_per_slot" in metrics
        assert "peak_bytes_per_slot" in metrics

    def test_memory_gate_tolerates_missing_baseline_fields(self, bench_data):
        # Comparing against a pre-columnar baseline (no memory fields) must
        # not produce memory regressions.
        baseline = json.loads(json.dumps(bench_data))
        for record in baseline["benchmarks"]:
            for metric in (
                "peak_bytes_per_slot",
                "result_bytes_per_slot",
                "legacy_list_bytes_per_slot",
                "streaming_result_bytes_per_slot",
            ):
                record.pop(metric, None)
        regressions = compare_bench(baseline, bench_data, threshold=0.2)
        assert not any("bytes_per_slot" in r["metric"] for r in regressions)

    def test_missing_benchmark_is_flagged(self, bench_data):
        current = json.loads(json.dumps(bench_data))
        current["benchmarks"] = current["benchmarks"][1:]
        regressions = compare_bench(bench_data, current)
        assert any(r["metric"] == "missing_benchmark" for r in regressions)

    def test_small_changes_within_threshold_pass(self, bench_data):
        current = json.loads(json.dumps(bench_data))
        for record in current["benchmarks"]:
            record["wall_time_s"] *= 1.05
            if "speedup_vs_vectorized" in record:
                record["speedup_vs_vectorized"] *= 0.95
        assert compare_bench(bench_data, current, threshold=0.2) == []


class TestServiceSuite:
    @pytest.fixture(scope="class")
    def service_records(self):
        from repro.bench import run_service_suite

        return run_service_suite(seed=7, repeats=1)

    def test_roundtrip_record_shape(self, service_records):
        assert len(service_records) == 1
        record = service_records[0]
        assert record["kind"] == "micro"
        assert record["id"] == "service-submit-roundtrip"
        assert record["backend"] == "serve"
        assert record["wall_time_s"] > 0
        assert record["slots_per_second"] > 0
        assert record["cold_submit_s"] >= record["cached_submit_s"]
        assert record["cached_hits_per_second"] > 0

    def test_compare_tolerates_baseline_without_service_record(
        self, bench_data, service_records
    ):
        # An older baseline predating the service benchmark must compare
        # clean against a current file that carries it.
        current = json.loads(json.dumps(bench_data))
        current["benchmarks"] = current["benchmarks"] + service_records
        assert compare_bench(bench_data, current, threshold=0.2) == []

    def test_backend_restriction_skips_service_suite(self, bench_data):
        ids = {b["id"] for b in bench_data["benchmarks"]}
        assert "service-submit-roundtrip" not in ids
