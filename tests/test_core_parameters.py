"""Unit tests for the algorithm parameterization."""

import pytest

from repro.core import AlgorithmParameters
from repro.errors import ConfigurationError
from repro.functions import RateFunction, constant_g, log_g


class TestConstruction:
    def test_default_targets_constant_g(self):
        params = AlgorithmParameters.from_g()
        assert params.g(1e6) == 4.0
        assert params.a == 1.0

    def test_from_g_derives_f(self):
        params = AlgorithmParameters.from_g(constant_g(4.0))
        # f(x) = log2(x) / log2(4)^2 = log2(x) / 4
        assert params.f(2**16) == pytest.approx(4.0)

    def test_from_f_uses_given_f(self):
        f = RateFunction("const", lambda x: 2.0)
        params = AlgorithmParameters.from_f(f)
        assert params.f(10**6) == 2.0

    def test_invalid_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            AlgorithmParameters.from_g(constant_g(4.0), a=0.0)
        with pytest.raises(ConfigurationError):
            AlgorithmParameters.from_g(constant_g(4.0), c3=-1.0)

    def test_describe_mentions_g(self):
        params = AlgorithmParameters.from_g(log_g())
        assert "log" in params.describe()


class TestBudgetsAndRates:
    def test_backoff_budget_at_least_one(self, parameters):
        assert parameters.backoff_budget(1) == 1
        assert parameters.backoff_budget(2) >= 1

    def test_backoff_budget_grows_with_stage(self, parameters):
        assert parameters.backoff_budget(2**20) >= parameters.backoff_budget(2**4)

    def test_backoff_budget_never_exceeds_stage_length(self, parameters):
        for length in (1, 2, 4, 8, 1024):
            assert parameters.backoff_budget(length) <= length

    def test_backoff_budget_rejects_invalid(self, parameters):
        with pytest.raises(ConfigurationError):
            parameters.backoff_budget(0)

    def test_ctrl_probability_capped(self, parameters):
        assert parameters.ctrl_probability(1) == 1.0
        assert parameters.ctrl_probability(10**6) < 1e-3

    def test_data_probability_is_one_over_index(self, parameters):
        assert parameters.data_probability(1) == 1.0
        assert parameters.data_probability(100) == pytest.approx(0.01)

    def test_probabilities_reject_invalid_index(self, parameters):
        with pytest.raises(ConfigurationError):
            parameters.ctrl_probability(0)
        with pytest.raises(ConfigurationError):
            parameters.data_probability(-1)

    def test_ctrl_rate_scales_with_c3(self):
        low = AlgorithmParameters.from_g(constant_g(4.0), c3=2.0)
        high = AlgorithmParameters.from_g(constant_g(4.0), c3=8.0)
        assert high.ctrl_probability(4096) == pytest.approx(
            4.0 * low.ctrl_probability(4096)
        )
