"""Unit tests for deterministic randomness management."""

import numpy as np

from repro.rng import SeedTree, coerce_generator, make_generator, spawn_generators, trial_seeds


class TestSeedTree:
    def test_same_seed_same_stream(self):
        a = SeedTree(7).generator()
        b = SeedTree(7).generator()
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_different_seeds_differ(self):
        a = SeedTree(7).generator()
        b = SeedTree(8).generator()
        draws_a = a.integers(0, 1 << 30, size=8)
        draws_b = b.integers(0, 1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_children_are_independent(self):
        tree = SeedTree(3)
        children = list(tree.children(4))
        draws = [child.generator().integers(0, 1 << 30, size=4) for child in children]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_accepts_seed_tree_instance(self):
        base = SeedTree(11)
        wrapped = SeedTree(base)
        assert wrapped.entropy == base.entropy

    def test_accepts_seed_sequence(self):
        sequence = np.random.SeedSequence(5)
        tree = SeedTree(sequence)
        assert tree.entropy == sequence.entropy


class TestHelpers:
    def test_make_generator_returns_generator(self):
        assert isinstance(make_generator(1), np.random.Generator)

    def test_spawn_generators_count(self):
        generators = spawn_generators(2, 5)
        assert len(generators) == 5
        assert all(isinstance(g, np.random.Generator) for g in generators)

    def test_trial_seeds_are_reproducible(self):
        first = [t.entropy for t in trial_seeds(9, 3)]
        second = [t.entropy for t in trial_seeds(9, 3)]
        assert first == second

    def test_coerce_generator_passthrough(self):
        gen = make_generator(4)
        assert coerce_generator(gen) is gen

    def test_coerce_generator_from_int(self):
        a = coerce_generator(21)
        b = coerce_generator(21)
        assert a.integers(0, 1000) == b.integers(0, 1000)
