"""Unit tests for deterministic randomness management."""

import numpy as np

from repro.rng import SeedTree, coerce_generator, make_generator, spawn_generators, trial_seeds


class TestSeedTree:
    def test_same_seed_same_stream(self):
        a = SeedTree(7).generator()
        b = SeedTree(7).generator()
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_different_seeds_differ(self):
        a = SeedTree(7).generator()
        b = SeedTree(8).generator()
        draws_a = a.integers(0, 1 << 30, size=8)
        draws_b = b.integers(0, 1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_children_are_independent(self):
        tree = SeedTree(3)
        children = list(tree.children(4))
        draws = [child.generator().integers(0, 1 << 30, size=4) for child in children]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_accepts_seed_tree_instance(self):
        base = SeedTree(11)
        wrapped = SeedTree(base)
        assert wrapped.entropy == base.entropy

    def test_accepts_seed_sequence(self):
        sequence = np.random.SeedSequence(5)
        tree = SeedTree(sequence)
        assert tree.entropy == sequence.entropy


class TestHelpers:
    def test_make_generator_returns_generator(self):
        assert isinstance(make_generator(1), np.random.Generator)

    def test_spawn_generators_count(self):
        generators = spawn_generators(2, 5)
        assert len(generators) == 5
        assert all(isinstance(g, np.random.Generator) for g in generators)

    def test_trial_seeds_are_reproducible(self):
        first = [t.entropy for t in trial_seeds(9, 3)]
        second = [t.entropy for t in trial_seeds(9, 3)]
        assert first == second

    def test_coerce_generator_passthrough(self):
        gen = make_generator(4)
        assert coerce_generator(gen) is gen

    def test_coerce_generator_from_int(self):
        a = coerce_generator(21)
        b = coerce_generator(21)
        assert a.integers(0, 1000) == b.integers(0, 1000)


class TestBulkSeeding:
    """The vectorized SeedSequence/PCG64 replication matches numpy exactly."""

    def test_fast_seed_path_self_check(self):
        from repro.rng import fast_seed_path_ok

        assert fast_seed_path_ok() is True

    def test_fast_bounded_pairs_self_check(self):
        from repro.rng import fast_bounded_pairs_ok

        assert fast_bounded_pairs_ok() is True

    def test_bulk_seed_states_match_seed_sequences(self):
        from repro.rng import assemble_seed_words, bulk_seed_states

        entropy = 20210219
        keys = [(0, 1, 5, 0), (3, 1, 0, 0), (7, 0, 2, 0)]
        words = assemble_seed_words(entropy, keys)
        states = bulk_seed_states(words)
        for row, key in enumerate(keys):
            expected = np.random.SeedSequence(
                entropy, spawn_key=key
            ).generate_state(4, np.uint64)
            assert np.array_equal(states[row], expected)

    def test_assemble_rejects_oversized_key_components(self):
        from repro.rng import assemble_seed_words

        assert assemble_seed_words(1, [(1 << 40,)]) is None

    def test_reusable_generator_replays_default_rng_streams(self):
        from repro.rng import (
            ReusableGenerator,
            assemble_seed_words,
            bulk_seed_states,
        )

        reusable = ReusableGenerator()
        for key in [(0, 0), (5, 1, 0), (2,)]:
            sequence = np.random.SeedSequence(42, spawn_key=key)
            expected = np.random.default_rng(sequence).random(32)
            states = bulk_seed_states(assemble_seed_words(42, [key]))
            replayed = reusable.reseed(states[0]).random(32)
            assert np.array_equal(expected, replayed)

    def test_seed_states_for_entropies_matches_numpy(self):
        from repro.rng import seed_states_for_entropies

        entropies = [0, 7, 2**32 + 5, 2**62 - 1]
        states = seed_states_for_entropies(entropies)
        for row, entropy in enumerate(entropies):
            expected = np.random.SeedSequence(entropy).generate_state(4, np.uint64)
            assert np.array_equal(states[row], expected)

    def test_bulk_bounded_pairs_match_generator_integers(self):
        from repro.rng import bulk_bounded_pairs63

        sequences = [np.random.SeedSequence(9, spawn_key=(i, 0)) for i in range(50)]
        words = np.stack(
            [sequence.generate_state(4, np.uint64) for sequence in sequences]
        )
        pairs = bulk_bounded_pairs63(words)
        for row, sequence in enumerate(sequences):
            generator = np.random.default_rng(sequence)
            assert int(pairs[row, 0]) == int(generator.integers(0, 2**63 - 1))
            assert int(pairs[row, 1]) == int(generator.integers(0, 2**63 - 1))

    def test_trial_seed_batch_matches_trial_seeds(self):
        from repro.rng import TrialSeedBatch, trial_seeds

        batch = TrialSeedBatch(123, 4)
        eager = trial_seeds(123, 4)
        assert len(batch) == 4
        entropy, key, first = batch.spawn_descriptor()
        assert entropy == 123 and key == () and first == 0
        for lazy, expected in zip(batch.trees, eager):
            assert np.array_equal(
                lazy.sequence.generate_state(4), expected.sequence.generate_state(4)
            )
