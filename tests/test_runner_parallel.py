"""Tests for trial-level parallelism and collector threading in the runner."""

import pytest

from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    NoJamming,
    RandomFractionJamming,
    ScheduleAdversary,
)
from repro.errors import ConfigurationError
from repro.metrics import SuccessTimeline
from repro.protocols import ProbabilityBackoff, SlottedAloha, make_factory
from repro.sim import SimulatorConfig, TrialRunner, run_trials


def beb_study(workers, trials=4, seed=7, backend="auto"):
    return run_trials(
        protocol_factory=make_factory(ProbabilityBackoff, 1.0),
        adversary_factory=lambda: ComposedAdversary(
            BatchArrivals(8), RandomFractionJamming(0.2)
        ),
        horizon=200,
        trials=trials,
        seed=seed,
        workers=workers,
        backend=backend,
    )


class TestCollectorThreading:
    def test_run_trials_threads_collectors(self):
        # Regression: collectors used to be accepted and silently dropped.
        timeline = SuccessTimeline()
        study = run_trials(
            protocol_factory=make_factory(SlottedAloha, 1.0),
            adversary_factory=lambda: ScheduleAdversary.single_batch(1, slot=3),
            horizon=10,
            trials=2,
            seed=1,
            collectors=[timeline],
        )
        assert study.trials == 2
        # on_run_start resets the collector, so it holds the last trial's data.
        assert timeline.success_slots == [3]

    def test_collectors_with_workers_raise(self):
        with pytest.raises(ConfigurationError, match="collectors require workers=1"):
            run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.5),
                adversary_factory=lambda: ScheduleAdversary.single_batch(1),
                horizon=10,
                trials=2,
                seed=1,
                collectors=[SuccessTimeline()],
                workers=2,
            )


class TestParallelTrials:
    def test_parallel_matches_serial(self):
        serial, parallel = beb_study(workers=1), beb_study(workers=3)
        assert serial.trials == parallel.trials
        assert [r.prefix_successes for r in serial] == [
            r.prefix_successes for r in parallel
        ]
        assert [r.summary for r in serial] == [r.summary for r in parallel]
        assert [r.node_stats for r in serial] == [r.node_stats for r in parallel]

    def test_parallel_with_explicit_backends(self):
        reference = beb_study(workers=2, backend="reference")
        vectorized = beb_study(workers=2, backend="vectorized")
        assert [r.summary for r in reference] == [r.summary for r in vectorized]
        assert all(r.backend == "vectorized" for r in vectorized)

    def test_more_workers_than_trials(self):
        study = beb_study(workers=16, trials=2)
        assert study.trials == 2

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            TrialRunner(
                make_factory(SlottedAloha, 0.5),
                lambda: ScheduleAdversary.single_batch(1),
                SimulatorConfig(horizon=5),
                workers=0,
            )

    def test_label_preserved(self):
        study = run_trials(
            protocol_factory=make_factory(SlottedAloha, 0.5),
            adversary_factory=lambda: ComposedAdversary(BatchArrivals(2), NoJamming()),
            horizon=20,
            trials=2,
            seed=3,
            workers=2,
            label="parallel-study",
        )
        assert study.label == "parallel-study"

    def test_summary_row_reports_throughput_columns(self):
        study = beb_study(workers=1, trials=2)
        row = study.summary_row()
        assert row["mean_wall_time_s"] > 0.0
        assert row["mean_slots_per_s"] > 0.0


class TestEffectiveWorkers:
    def test_serial_study_records_one_worker(self):
        study = beb_study(workers=1, trials=2)
        assert study.effective_workers == 1

    def test_parallel_study_records_worker_count(self):
        study = beb_study(workers=3, trials=4)
        assert study.effective_workers == 3

    def test_workers_capped_by_trials(self):
        study = beb_study(workers=16, trials=2)
        assert study.effective_workers == 2

    def test_non_fork_platform_falls_back_and_records_serial(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.warns(RuntimeWarning, match="fork"):
            study = beb_study(workers=3, trials=2)
        assert study.effective_workers == 1
        assert study.trials == 2

    def test_summary_row_reports_workers(self):
        study = beb_study(workers=2, trials=2)
        assert study.summary_row()["workers"] == 2.0


class TestBatchedStudyWorkers:
    def test_batched_study_shards_match_serial(self):
        def study(workers):
            return run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.3),
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(6), RandomFractionJamming(0.2)
                ),
                horizon=120,
                trials=5,
                seed=11,
                workers=workers,
                backend="batched-study",
            )

        serial, parallel = study(1), study(3)
        assert parallel.effective_workers == 3
        assert all(r.backend == "batched-study" for r in parallel)
        assert [r.summary for r in serial] == [r.summary for r in parallel]
        assert [r.node_stats for r in serial] == [r.node_stats for r in parallel]
        assert [r.prefix_successes for r in serial] == [
            r.prefix_successes for r in parallel
        ]


class TestMetricMemoization:
    def test_metric_vector_computed_once_per_extractor(self):
        study = beb_study(workers=1, trials=3)
        calls = []

        def extractor(result):
            calls.append(1)
            return float(result.total_successes)

        first = study.metric(extractor)
        assert len(calls) == study.trials
        study.mean(extractor)
        study.std(extractor)
        study.quantile(extractor, 0.5)
        assert len(calls) == study.trials  # memoized: no further passes
        assert study.metric(extractor) is first

    def test_aggregates_accept_precomputed_vectors(self):
        import numpy as np

        study = beb_study(workers=1, trials=3)
        vector = study.metric(lambda r: float(r.total_successes))
        assert study.mean(vector) == pytest.approx(float(np.mean(vector)))
        assert study.std(vector) == pytest.approx(float(np.std(vector)))
        assert study.quantile(vector, 0.5) == pytest.approx(
            float(np.quantile(vector, 0.5))
        )
