"""Tests for the consistent-hash ring behind the sharded study store."""

import hashlib

import pytest

from repro.errors import SpecError
from repro.serve import ConsistentHashRing


def sample_keys(count: int):
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(count)]


class TestConstruction:
    def test_needs_at_least_one_node(self):
        with pytest.raises(SpecError):
            ConsistentHashRing([])

    def test_virtual_nodes_must_be_positive(self):
        with pytest.raises(SpecError):
            ConsistentHashRing(["a"], virtual_nodes=0)

    def test_duplicate_nodes_collapse(self):
        ring = ConsistentHashRing(["a", "b", "a"])
        assert ring.nodes == ["a", "b"]

    def test_node_order_is_canonical(self):
        assert (
            ConsistentHashRing(["b", "a"]).nodes
            == ConsistentHashRing(["a", "b"]).nodes
        )


class TestRouting:
    def test_deterministic_across_instances(self):
        keys = sample_keys(200)
        first = ConsistentHashRing(["a", "b", "c"])
        second = ConsistentHashRing(["a", "b", "c"])
        assert [first.node_for(k) for k in keys] == [
            second.node_for(k) for k in keys
        ]

    def test_single_node_takes_everything(self):
        ring = ConsistentHashRing(["only"])
        assert all(ring.node_for(k) == "only" for k in sample_keys(50))

    def test_distribution_is_roughly_balanced(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], virtual_nodes=128)
        counts = ring.distribution(sample_keys(4000))
        assert set(counts) == {"a", "b", "c", "d"}
        for count in counts.values():
            # Expected 1000 per shard; 128 vnodes keeps the spread tight
            # enough that a 2x band is a safe, non-flaky assertion.
            assert 500 <= count <= 2000

    def test_all_nodes_reachable(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        seen = {ring.node_for(k) for k in sample_keys(1000)}
        assert seen == {"a", "b", "c"}


class TestConsistency:
    def test_removing_one_shard_remaps_only_its_keys(self):
        """The headline consistent-hash property on a 10k-key sample.

        Dropping 1 of K shards must remap only the keys that shard owned
        (expected 1/K) — bounded here at 2/K — and every key that stays
        must stay on exactly the shard it was on.
        """
        keys = sample_keys(10_000)
        for k in (3, 5):
            nodes = [f"shard-{i:02d}" for i in range(k)]
            ring = ConsistentHashRing(nodes)
            before = {key: ring.node_for(key) for key in keys}
            removed = nodes[1]
            shrunk = ring.with_nodes([n for n in nodes if n != removed])
            moved = 0
            for key in keys:
                after = shrunk.node_for(key)
                if before[key] == removed:
                    assert after != removed
                    moved += 1
                else:
                    assert after == before[key], (
                        f"key on surviving shard {before[key]} moved to {after}"
                    )
            assert moved <= 2 * len(keys) // k

    def test_adding_a_shard_only_steals_keys(self):
        keys = sample_keys(5000)
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {key: ring.node_for(key) for key in keys}
        grown = ring.with_nodes(["a", "b", "c", "d"])
        for key in keys:
            after = grown.node_for(key)
            assert after == before[key] or after == "d"
