"""Deterministic fault-injection plans (repro.faults)."""

import json

import pytest

from repro import faults
from repro.errors import FaultInjected, SpecError
from repro.faults import FaultPlan, FaultRule


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(SpecError, match="unknown fault site"):
            FaultRule(site="nonsense")

    def test_rate_bounds_enforced(self):
        with pytest.raises(SpecError, match="rate"):
            FaultRule(site="kernel", rate=1.5)
        with pytest.raises(SpecError, match="rate"):
            FaultRule(site="kernel", rate=-0.1)

    def test_times_must_be_positive(self):
        with pytest.raises(SpecError, match="times"):
            FaultRule(site="kernel", times=0)

    def test_match_coordinates_pin_and_wildcard(self):
        rule = FaultRule(site="worker-crash", match={"shard": 1})
        assert rule.matches({"shard": 1, "attempt": 0})
        assert rule.matches({"shard": 1, "attempt": 5})
        assert not rule.matches({"shard": 2, "attempt": 0})
        # Omitted coordinate on the query side never matches a pinned one.
        assert not rule.matches({})

    def test_dict_round_trip_with_extra_keys_as_coords(self):
        rule = FaultRule.from_dict(
            {"site": "worker-crash", "shard": 1, "attempt": 0, "rate": 0.5}
        )
        assert rule.match == {"shard": 1, "attempt": 0}
        assert rule.rate == 0.5
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_empty_plan_never_fires(self):
        plan = FaultPlan()
        assert plan.empty
        assert not plan.fires("worker-crash", shard=0)
        plan.maybe_raise("kernel", trials=8)  # no-op

    def test_exact_rule_fires_only_on_matching_coords(self):
        plan = FaultPlan(rules=[{"site": "worker-crash", "shard": 1, "attempt": 0}])
        assert plan.fires("worker-crash", shard=1, attempt=0)
        assert not plan.fires("worker-crash", shard=1, attempt=1)
        assert not plan.fires("worker-crash", shard=0, attempt=0)
        assert not plan.fires("worker-hang", shard=1, attempt=0)

    def test_times_caps_firings(self):
        plan = FaultPlan(rules=[{"site": "kernel", "times": 2}])
        assert plan.fires("kernel")
        assert plan.fires("kernel")
        assert not plan.fires("kernel")

    def test_rate_rule_is_deterministic(self):
        plan = FaultPlan(rules=[{"site": "worker-crash", "rate": 0.5}], seed=3)
        outcomes = [plan.fires("worker-crash", shard=s) for s in range(64)]
        replay = FaultPlan(rules=[{"site": "worker-crash", "rate": 0.5}], seed=3)
        assert outcomes == [replay.fires("worker-crash", shard=s) for s in range(64)]
        # A 0.5 rate over 64 distinct coordinates fires a nontrivial subset.
        assert 10 < sum(outcomes) < 54

    def test_rate_depends_on_seed(self):
        a = FaultPlan(rules=[{"site": "worker-crash", "rate": 0.5}], seed=1)
        b = FaultPlan(rules=[{"site": "worker-crash", "rate": 0.5}], seed=2)
        assert [a.fires("worker-crash", shard=s) for s in range(64)] != [
            b.fires("worker-crash", shard=s) for s in range(64)
        ]

    def test_maybe_raise_raises_fault_injected(self):
        plan = FaultPlan(rules=[{"site": "kernel"}])
        with pytest.raises(FaultInjected) as info:
            plan.maybe_raise("kernel", trials=4)
        assert info.value.site == "kernel"

    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=[
                {"site": "worker-crash", "shard": 1, "attempt": 0},
                {"site": "shm-export", "rate": 0.25, "times": 3},
            ],
            seed=42,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.rules == plan.rules
        assert restored.seed == plan.seed

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown fault plan field"):
            FaultPlan.from_dict({"rules": [], "bogus": 1})

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="invalid fault plan JSON"):
            FaultPlan.from_json("{not json")


class TestActivation:
    def test_no_plan_means_inactive(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults.active_plan().empty

    def test_injected_context_manager_restores(self):
        assert faults.active_plan().empty
        with faults.injected({"rules": [{"site": "kernel"}]}) as plan:
            assert faults.active_plan() is plan
            assert plan.fires("kernel")
        assert faults.active_plan().empty

    def test_env_inline_json(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", json.dumps({"rules": [{"site": "kernel"}]})
        )
        plan = faults.active_plan()
        assert not plan.empty
        assert plan.rules[0].site == "kernel"

    def test_env_file_reference(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 9, "rules": [{"site": "shm-attach"}]}))
        monkeypatch.setenv("REPRO_FAULTS", f"@{path}")
        plan = faults.active_plan()
        assert plan.seed == 9
        assert plan.rules[0].site == "shm-attach"

    def test_programmatic_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", json.dumps({"rules": [{"site": "kernel"}]})
        )
        with faults.injected({"rules": []}):
            assert faults.active_plan().empty
        assert not faults.active_plan().empty

    def test_env_cache_tracks_value_changes(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", json.dumps({"rules": [{"site": "kernel"}]})
        )
        assert faults.active_plan().rules[0].site == "kernel"
        monkeypatch.setenv(
            "REPRO_FAULTS", json.dumps({"rules": [{"site": "worker-hang"}]})
        )
        assert faults.active_plan().rules[0].site == "worker-hang"
