"""Edge-case and regression tests that cut across modules."""

import numpy as np
import pytest

import repro
from repro.adversary import ReactiveJamming, ScheduleAdversary
from repro.adversary.base import Adversary
from repro.analysis.fitting import SHAPE_MODELS, fit_shape
from repro.errors import (
    AdversaryError,
    AnalysisError,
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
)
from repro.experiments._helpers import batch_jam_adversary, log2, spread_jam_adversary
from repro.protocols import make_factory
from repro.protocols.aloha import SlottedAloha
from repro.sim import Simulator, SimulatorConfig
from repro.types import Feedback, SlotObservation


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (
            ConfigurationError,
            ProtocolError,
            AdversaryError,
            AnalysisError,
            ExperimentError,
        ):
            assert issubclass(error_type, ReproError)
            assert issubclass(error_type, Exception)


class TestPackageSurface:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_lazy_two_channel_export(self):
        from repro import protocols

        assert protocols.TwoChannelNoJamming.__name__ == "TwoChannelNoJamming"
        with pytest.raises(AttributeError):
            protocols.DoesNotExist  # noqa: B018


class TestQuickRunEdgeCases:
    def test_zero_jam_fraction_uses_no_jamming(self):
        result = repro.quick_run(arrivals=2, horizon=64, jam_fraction=0.0, seed=1)
        assert result.total_jammed_slots == 0

    def test_result_metadata(self):
        result = repro.quick_run(arrivals=2, horizon=64, seed=5)
        assert result.horizon == 64
        assert result.protocol_name == "chen-jiang-zheng"
        assert "batch" in result.adversary_name


class TestResultAccessors:
    def make_result(self):
        return repro.quick_run(arrivals=4, horizon=256, seed=9)

    def test_successes_by_slot_monotone(self):
        result = self.make_result()
        assert result.successes_by_slot(1) <= result.successes_by_slot(256)
        assert result.successes_by_slot(10_000) == result.total_successes

    def test_max_latency(self):
        result = self.make_result()
        assert result.max_latency() >= 1

    def test_summary_counters_sum_to_horizon(self):
        result = self.make_result()
        summary = result.summary
        assert (
            summary.successes + summary.collisions + summary.silent_slots
            == summary.total_slots
        )


class TestExperimentHelpers:
    def test_log2_floor(self):
        assert log2(1.0) == 1.0
        assert log2(8.0) == 3.0

    def test_batch_jam_adversary_factory(self):
        factory = batch_jam_adversary(5, jam_fraction=0.0, slot=2)
        adversary = factory()
        assert isinstance(adversary, Adversary)
        adversary.setup(np.random.default_rng(0), 16)
        assert adversary.action_for_slot(2).arrivals == 5

    def test_spread_jam_adversary_factory(self):
        factory = spread_jam_adversary(10, horizon=128, jam_fraction=0.5)
        adversary = factory()
        adversary.setup(np.random.default_rng(0), 128)
        total = sum(adversary.action_for_slot(s).arrivals for s in range(1, 129))
        assert total == 10


class TestReactiveJammingEdgeCases:
    def test_non_success_observation_does_not_arm(self):
        strategy = ReactiveJamming(0.5, burst=3)
        strategy.setup(np.random.default_rng(0), 100)
        strategy.observe(SlotObservation(slot=1, feedback=Feedback.NO_SUCCESS))
        assert not any(strategy.jam_slot(s) for s in range(1, 20))


class TestSimulatorEdgeCases:
    def test_horizon_one(self):
        result = Simulator(
            protocol_factory=make_factory(SlottedAloha, 1.0),
            adversary=ScheduleAdversary.single_batch(1, slot=1),
            config=SimulatorConfig(horizon=1),
            seed=0,
        ).run()
        assert result.horizon == 1
        assert result.total_successes == 1

    def test_no_arrivals_at_all(self):
        result = Simulator(
            protocol_factory=make_factory(SlottedAloha, 1.0),
            adversary=ScheduleAdversary(),
            config=SimulatorConfig(horizon=32),
            seed=0,
        ).run()
        assert result.total_arrivals == 0
        assert result.total_active_slots == 0
        assert result.classical_throughput() == float("inf")

    def test_arrival_in_last_slot(self):
        result = Simulator(
            protocol_factory=make_factory(SlottedAloha, 1.0),
            adversary=ScheduleAdversary.single_batch(1, slot=32),
            config=SimulatorConfig(horizon=32),
            seed=0,
        ).run()
        assert result.total_arrivals == 1
        assert result.total_active_slots == 1


class TestFittingModels:
    def test_all_models_evaluate(self):
        xs = [2.0**k for k in range(4, 12)]
        for name, basis in SHAPE_MODELS.items():
            values = basis(np.asarray(xs))
            assert np.all(np.isfinite(values)), name

    def test_fit_all_default_models(self):
        xs = [2.0**k for k in range(4, 12)]
        ys = [3.0 * x for x in xs]
        fits = fit_shape(xs, ys)
        assert set(fits) == set(SHAPE_MODELS)
