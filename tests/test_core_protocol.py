"""Unit tests for the Chen–Jiang–Zheng protocol state machine."""

import numpy as np
import pytest

from repro.core import AlgorithmParameters, ChenJiangZhengProtocol, GlobalClockVariant, Phase, cjz_factory
from repro.functions import constant_g
from repro.types import ChannelParity, Feedback


def make_protocol(seed=0, **kwargs):
    protocol = ChenJiangZhengProtocol(AlgorithmParameters.from_g(constant_g(4.0), **kwargs))
    protocol.on_arrival(1, np.random.default_rng(seed))
    return protocol


def hear_success(protocol, slot):
    protocol.on_feedback(slot, Feedback.SUCCESS, broadcast=False, success_was_own=False)


def hear_nothing(protocol, slot):
    protocol.on_feedback(slot, Feedback.NO_SUCCESS, broadcast=False, success_was_own=False)


class TestPhaseTransitions:
    def test_starts_in_phase_one(self):
        protocol = make_protocol()
        assert protocol.phase is Phase.SYNCHRONIZE

    def test_any_success_moves_to_phase_two(self):
        protocol = make_protocol()
        hear_success(protocol, 6)
        assert protocol.phase is Phase.WAIT_CONTROL

    def test_phase_two_control_channel_is_opposite_of_success_channel(self):
        protocol = make_protocol()
        hear_success(protocol, 6)  # success on the even channel
        assert protocol.control_parity is ChannelParity.ODD
        other = make_protocol()
        hear_success(other, 7)  # success on the odd channel
        assert other.control_parity is ChannelParity.EVEN

    def test_success_on_data_channel_does_not_end_phase_two(self):
        protocol = make_protocol()
        hear_success(protocol, 6)  # data channel = even, control = odd
        hear_success(protocol, 10)  # another success on the even (data) channel
        assert protocol.phase is Phase.WAIT_CONTROL

    def test_success_on_control_channel_starts_phase_three(self):
        protocol = make_protocol()
        hear_success(protocol, 6)
        hear_success(protocol, 9)  # odd slot = control channel
        assert protocol.phase is Phase.BATCH

    def test_no_success_feedback_never_changes_phase(self):
        protocol = make_protocol()
        for slot in range(1, 40):
            hear_nothing(protocol, slot)
        assert protocol.phase is Phase.SYNCHRONIZE

    def test_own_success_is_ignored_by_state_machine(self):
        protocol = make_protocol()
        protocol.on_feedback(5, Feedback.SUCCESS, broadcast=True, success_was_own=True)
        assert protocol.phase is Phase.SYNCHRONIZE


class TestPhaseThree:
    def make_phase3(self, seed=0):
        protocol = make_protocol(seed=seed)
        hear_success(protocol, 6)   # -> Phase 2, control channel odd
        hear_success(protocol, 9)   # -> Phase 3 anchored at l3 = 9
        return protocol

    def test_control_and_data_channels_after_anchor(self):
        protocol = self.make_phase3()
        # l3 = 9: control channel has the parity of slot 10 (even), data of 11 (odd).
        assert protocol.control_parity is ChannelParity.EVEN

    def test_control_success_restarts_and_swaps_channels(self):
        protocol = self.make_phase3()
        before = protocol.control_parity
        # A success on the control (even) channel restarts Phase 3.
        hear_success(protocol, 14)
        assert protocol.phase is Phase.BATCH
        assert protocol.phase3_restarts == 1
        assert protocol.control_parity is before.other()

    def test_data_success_does_not_restart(self):
        protocol = self.make_phase3()
        hear_success(protocol, 13)  # odd slot = data channel
        assert protocol.phase3_restarts == 0

    def test_first_control_slot_broadcasts_with_probability_one(self):
        protocol = self.make_phase3()
        # h_ctrl(1) is capped at 1, so the node must broadcast in slot 10.
        assert protocol.wants_to_broadcast(10) is True

    def test_first_data_slot_broadcasts_with_probability_one(self):
        protocol = self.make_phase3()
        # h_data(1) = 1, so the node must broadcast in slot 11.
        assert protocol.wants_to_broadcast(11) is True


class TestBroadcastDecisions:
    def test_phase_one_only_uses_arrival_parity_channel(self):
        protocol = make_protocol()
        # Arrived at slot 1 (odd): the protocol never broadcasts on even slots
        # during Phase 1.
        for slot in range(2, 60, 2):
            assert protocol.wants_to_broadcast(slot) is False

    def test_phase_one_sends_in_arrival_slot(self):
        # Stage 0 of the backoff is the single arrival slot, with budget >= 1.
        protocol = make_protocol()
        assert protocol.wants_to_broadcast(1) is True

    def test_phase_two_only_uses_control_channel(self):
        protocol = make_protocol()
        hear_success(protocol, 6)  # control channel odd
        for slot in range(8, 60, 2):
            assert protocol.wants_to_broadcast(slot) is False


class TestGlobalClockVariant:
    def test_skips_phase_one(self):
        protocol = GlobalClockVariant(AlgorithmParameters.from_g(constant_g(4.0)))
        protocol.on_arrival(4, np.random.default_rng(0))
        assert protocol.phase is Phase.WAIT_CONTROL
        assert protocol.control_parity is ChannelParity.ODD

    def test_control_channel_is_always_odd(self):
        for arrival in (1, 2, 3, 8):
            protocol = GlobalClockVariant(AlgorithmParameters.from_g(constant_g(4.0)))
            protocol.on_arrival(arrival, np.random.default_rng(0))
            assert protocol.control_parity is ChannelParity.ODD


class TestFactory:
    def test_factory_produces_fresh_instances(self):
        factory = cjz_factory()
        first, second = factory(), factory()
        assert first is not second
        assert isinstance(first, ChenJiangZhengProtocol)

    def test_factory_global_clock(self):
        factory = cjz_factory(global_clock=True)
        assert isinstance(factory(), GlobalClockVariant)

    def test_factory_records_name(self):
        assert cjz_factory().protocol_name == "chen-jiang-zheng"
