"""Supervised worker pool: crash/hang/attach-failure recovery (fork only).

Every test injects faults through a deterministic :class:`repro.faults.FaultPlan`
and asserts the recovered parallel study is bit-identical to the serial one —
faults may cost wall-clock, never results.
"""

import multiprocessing
import time

import pytest

from repro import faults
from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    RandomFractionJamming,
)
from repro.errors import ConfigurationError, WorkerError
from repro.metrics import MetricPipeline, SuccessTimelineReducer
from repro.protocols import ProbabilityBackoff, make_factory
from repro.sim import SupervisorPolicy, run_trials

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervised pool requires the fork start method",
)


def study(trials=12, seed=7, **kwargs):
    return run_trials(
        protocol_factory=make_factory(ProbabilityBackoff, 1.0),
        adversary_factory=lambda: ComposedAdversary(
            BatchArrivals(8), RandomFractionJamming(0.2)
        ),
        horizon=200,
        trials=trials,
        seed=seed,
        **kwargs,
    )


def summaries(result_study):
    return [r.summary for r in result_study.results]


class TestSupervisorPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(timeout=0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(retries=-1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "5")
        policy = SupervisorPolicy.from_env()
        assert policy.timeout == 2.5
        assert policy.retries == 5

    def test_backoff_caps(self):
        policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.3)


class TestCrashRecovery:
    def test_injected_crash_retries_and_matches_serial(self):
        """The acceptance test: one worker killed mid-study, retried, and
        the recovered results are bit-identical to the serial run with
        exactly one retry recorded."""
        serial = study()
        with faults.injected(
            {"rules": [{"site": "worker-crash", "shard": 1, "attempt": 0}]}
        ):
            parallel = study(workers=4)
        assert summaries(parallel) == summaries(serial)
        assert parallel.health.retries == 1
        assert parallel.health.shard_failures == 1
        assert [e.kind for e in parallel.health.events if e.kind == "crash"] == [
            "crash"
        ]
        assert parallel.effective_workers == 4

    def test_crash_with_pipeline_merges_identically(self):
        """Shard retry must not disturb the ordered pipeline merge."""
        serial = study(pipeline=MetricPipeline([SuccessTimelineReducer()]))
        with faults.injected(
            {"rules": [{"site": "worker-crash", "shard": 2, "attempt": 0}]}
        ):
            parallel = study(
                workers=4, pipeline=MetricPipeline([SuccessTimelineReducer()])
            )
        assert summaries(parallel) == summaries(serial)
        serial_metrics = serial.metrics()
        parallel_metrics = parallel.metrics()
        assert serial_metrics.keys() == parallel_metrics.keys()
        for key in serial_metrics:
            assert parallel_metrics[key] == serial_metrics[key]

    def test_worker_error_carries_shard_and_trial_range(self):
        """Satellite regression test: a permanently failing shard surfaces a
        typed WorkerError naming the shard and its trial range."""
        with faults.injected({"rules": [{"site": "worker-crash", "shard": 1}]}):
            with pytest.raises(WorkerError) as info:
                study(
                    workers=4,
                    supervisor=SupervisorPolicy(retries=0, degrade=False),
                )
        assert info.value.shard_index == 1
        assert info.value.trial_range == (3, 6)
        assert info.value.attempts == 1
        assert "shard 1" in str(info.value)

    def test_exhausted_retries_degrade_to_inline_serial(self):
        """A shard that crashes on every attempt still completes in-process,
        identical to serial."""
        serial = study()
        with faults.injected({"rules": [{"site": "worker-crash", "shard": 1}]}):
            parallel = study(workers=4, supervisor=SupervisorPolicy(retries=1))
        assert summaries(parallel) == summaries(serial)
        assert parallel.health.degraded
        assert any(e.kind == "fallback" for e in parallel.health.events)


class TestHangRecovery:
    def test_hang_terminated_within_timeout_and_degrades(self):
        serial = study()
        start = time.monotonic()
        with faults.injected(
            {"rules": [{"site": "worker-hang", "shard": 2, "attempt": 0}]}
        ):
            parallel = study(workers=4, supervisor=SupervisorPolicy(timeout=0.5))
        elapsed = time.monotonic() - start
        assert summaries(parallel) == summaries(serial)
        # One timeout window plus the retry, not the 3600s injected sleep.
        assert elapsed < 10.0
        assert any(e.kind == "hang" for e in parallel.health.events)
        assert any(e.kind == "degrade" for e in parallel.health.events)
        assert parallel.health.retries == 1


class TestTransportRecovery:
    def test_shm_attach_failure_retries_with_pickle(self):
        serial = study()
        with faults.injected(
            {"rules": [{"site": "shm-attach", "shard": 0, "attempt": 0}]}
        ):
            parallel = study(workers=4)
        assert summaries(parallel) == summaries(serial)
        assert any(e.kind == "import-error" for e in parallel.health.events)
        assert parallel.health.retries == 1

    def test_shm_export_failure_falls_back_to_pickle_in_worker(self):
        """Worker-side staging failure never fails the shard: it re-exports
        through pickle and records a fallback event."""
        serial = study()
        # The export site fires inside the worker (coords carry only the
        # shard's trial count), so this rule makes every shard fall back.
        with faults.injected({"rules": [{"site": "shm-export"}]}):
            parallel = study(workers=4)
        assert summaries(parallel) == summaries(serial)
        fallbacks = [e for e in parallel.health.events if e.kind == "fallback"]
        assert any(e.site == "shm" for e in fallbacks)
        # No retry needed: the worker recovered on its own.
        assert parallel.health.retries == 0


class TestHealthPlumbing:
    def test_clean_run_has_clean_health(self):
        parallel = study(workers=3)
        assert parallel.health.clean
        assert parallel.health.describe() == "clean"
        assert parallel.health.requested_workers == 3
        assert parallel.health.effective_workers == 3

    def test_summary_row_carries_health_columns(self):
        with faults.injected(
            {"rules": [{"site": "worker-crash", "shard": 0, "attempt": 0}]}
        ):
            parallel = study(workers=4)
        row = parallel.summary_row()
        assert row["health_retries"] == 1.0
        assert row["health_failures"] == 1.0
        assert row["health_demotions"] == 0.0

    def test_health_round_trips_through_dict(self):
        with faults.injected(
            {"rules": [{"site": "worker-crash", "shard": 0, "attempt": 0}]}
        ):
            parallel = study(workers=4)
        from repro.sim import RunHealth

        restored = RunHealth.from_dict(parallel.health.to_dict())
        assert restored.events == parallel.health.events
        assert restored.retries == parallel.health.retries

    def test_kernel_fault_site_fires_in_serial_path(self):
        from repro.errors import FaultInjected

        with faults.injected({"rules": [{"site": "kernel", "times": 1}]}):
            with pytest.raises(FaultInjected):
                study()
