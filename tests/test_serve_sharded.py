"""Tests for the consistent-hash sharded study store."""

import json
import os
import re
import time

import pytest

from repro.errors import SpecError
from repro.serve import ShardedStudyStore
from repro.spec import AdversarySpec, ProtocolSpec, StudySpec, StudyStore

SEED = 77


def aloha_spec(seed=SEED, horizon=512) -> StudySpec:
    return StudySpec(
        protocol=ProtocolSpec(kind="slotted-aloha", params={"probability": 0.05}),
        adversary=AdversarySpec.batch(8, jam_fraction=0.25),
        horizon=horizon,
        trials=1,
        seed=seed,
    )


def fill(store, count, seed0=0):
    """Run and put ``count`` distinct tiny studies; returns their specs."""
    specs = [aloha_spec(seed=seed0 + i) for i in range(count)]
    for spec in specs:
        store.put(spec, spec.run())
    return specs


class TestTopology:
    def test_ring_config_persisted_and_reloaded(self, tmp_path):
        first = ShardedStudyStore(tmp_path, shards=3)
        assert first.shards == ["shard-00", "shard-01", "shard-02"]
        reopened = ShardedStudyStore(tmp_path)
        assert reopened.shards == first.shards
        assert reopened.ring.virtual_nodes == first.ring.virtual_nodes

    def test_conflicting_shard_count_rejected(self, tmp_path):
        ShardedStudyStore(tmp_path, shards=2)
        with pytest.raises(SpecError, match="rebalance"):
            ShardedStudyStore(tmp_path, shards=4)

    def test_conflicting_virtual_nodes_rejected(self, tmp_path):
        ShardedStudyStore(tmp_path, shards=2, virtual_nodes=64)
        with pytest.raises(SpecError, match="rebalance"):
            ShardedStudyStore(tmp_path, virtual_nodes=32)

    def test_matching_explicit_topology_accepted(self, tmp_path):
        ShardedStudyStore(tmp_path, shards=2, virtual_nodes=64)
        again = ShardedStudyStore(tmp_path, shards=2, virtual_nodes=64)
        assert len(again.shards) == 2

    def test_corrupt_ring_config_rejected(self, tmp_path):
        ShardedStudyStore(tmp_path, shards=2)
        (tmp_path / "ring.json").write_text("{not json")
        with pytest.raises(SpecError, match="ring"):
            ShardedStudyStore(tmp_path)


class TestStoreSurface:
    def test_put_get_round_trip(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=3)
        spec = aloha_spec()
        study = spec.run()
        store.put(spec, study)
        assert spec in store
        cached = store.get(spec)
        assert cached is not None
        assert cached.from_cache
        assert (
            cached.summary_row()["mean_successes"]
            == study.summary_row()["mean_successes"]
        )

    def test_entry_lands_on_its_ring_shard(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=3)
        for spec in fill(store, 8):
            digest = spec.spec_hash()
            shard = store.shard_for(spec)
            assert store.ring.node_for(digest) == shard
            assert (tmp_path / shard / digest[:2] / f"{digest}.json").exists()

    def test_entries_merged_across_shards(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=3)
        specs = fill(store, 10)
        assert store.entries() == sorted(s.spec_hash() for s in specs)

    def test_placement_agrees_across_instances(self, tmp_path):
        writer = ShardedStudyStore(tmp_path, shards=3)
        specs = fill(writer, 6)
        reader = ShardedStudyStore(tmp_path)
        for spec in specs:
            assert spec in reader
            assert reader.get(spec) is not None

    def test_shard_store_is_a_plain_study_store(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=2)
        spec = fill(store, 1)[0]
        shard = store.shard_store(store.shard_for(spec))
        assert isinstance(shard, StudyStore)
        assert shard.get(spec) is not None
        with pytest.raises(SpecError, match="unknown shard"):
            store.shard_store("shard-99")

    def test_works_as_study_plan_store(self, tmp_path):
        from repro.spec import StudyPlan, Sweep

        store = ShardedStudyStore(tmp_path, shards=2)
        plan = StudyPlan.from_sweep(
            Sweep(aloha_spec(), {"horizon": [256, 512]})
        )
        first = plan.run(store=store)
        assert all(not r.cached for r in first)
        second = plan.run(store=store)
        assert all(r.cached for r in second)


class TestStats:
    def test_stats_totals_match_shards(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=3)
        fill(store, 8)
        stats = store.stats()
        assert stats["entries"] == 8
        assert stats["entries"] == sum(
            s["entries"] for s in stats["shards"].values()
        )
        assert stats["bytes"] == sum(s["bytes"] for s in stats["shards"].values())
        assert stats["bytes"] > 0
        assert set(stats["shards"]) == set(store.shards)


class TestEviction:
    def _aged_store(self, tmp_path, count):
        """A store whose entries look like an earlier session wrote them."""
        writer = ShardedStudyStore(tmp_path, shards=2)
        specs = fill(writer, count)
        past = time.time() - 3600
        for spec in specs:
            os.utime(writer.path_for(spec), (past, past))
        return ShardedStudyStore(tmp_path), specs

    def test_evict_brings_shards_under_budget(self, tmp_path):
        store, _specs = self._aged_store(tmp_path, 12)
        entry_bytes = max(
            s["bytes"] for s in store.stats()["shards"].values()
        )
        budget = entry_bytes // 2
        report = store.evict(budget)
        assert report["evicted"]
        assert report["freed_bytes"] > 0
        assert not report["over_budget_shards"]
        for shard in store.stats()["shards"].values():
            assert shard["bytes"] <= budget

    def test_evict_oldest_atime_first(self, tmp_path):
        store, specs = self._aged_store(tmp_path, 6)
        # Touch all but one entry so a single entry is clearly the LRU,
        # with an atime ordering the eviction must respect.
        lru = specs[0]
        now = time.time()
        for spec in specs[1:]:
            os.utime(store.path_for(spec), (now - 10, now - 3600))
        stats = store.stats()
        shard = store.shard_for(lru)
        budget = stats["shards"][shard]["bytes"] - 1  # evict exactly one
        report = store.evict(budget)
        assert lru.spec_hash() in report["evicted"]

    def test_current_session_entries_never_evicted(self, tmp_path):
        store, _specs = self._aged_store(tmp_path, 4)
        mine = aloha_spec(seed=999)
        store.put(mine, mine.run())
        report = store.evict(0)  # zero budget: evict everything allowed
        assert mine.spec_hash() not in report["evicted"]
        assert mine in store
        # The shard holding only the protected entry stays over budget and
        # says so rather than deleting it.
        assert store.shard_for(mine) in report["over_budget_shards"]

    def test_entries_newer_than_open_are_protected(self, tmp_path):
        writer = ShardedStudyStore(tmp_path, shards=2)
        reader = ShardedStudyStore(tmp_path)
        spec = fill(writer, 1)[0]  # written after reader opened
        report = reader.evict(0)
        assert spec.spec_hash() not in report["evicted"]

    def test_negative_budget_rejected(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=2)
        with pytest.raises(SpecError):
            store.evict(-1)


class TestRebalance:
    def test_rebalance_moves_entries_to_new_homes(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=2)
        specs = fill(store, 12)
        report = store.rebalance(shards=4)
        assert report["shards"] == [f"shard-{i:02d}" for i in range(4)]
        assert report["moved"] + report["kept"] == 12
        assert store.entries() == sorted(s.spec_hash() for s in specs)
        for spec in specs:
            assert store.get(spec) is not None
        config = json.loads((tmp_path / "ring.json").read_text())
        assert len(config["shards"]) == 4

    def test_rebalance_moves_roughly_one_over_k(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=4)
        fill(store, 40)
        report = store.rebalance(shards=3)
        # Dropping 1 of 4 shards should move ~1/4 of entries; allow a wide
        # band (the sample is small) but reject wholesale reshuffles.
        assert report["moved"] <= 30

    def test_rebalance_without_args_repairs_placement(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=2)
        spec = fill(store, 1)[0]
        digest = spec.spec_hash()
        # Simulate a hand-copied entry sitting on the wrong shard.
        home = store.shard_for(spec)
        wrong = next(s for s in store.shards if s != home)
        misplaced = tmp_path / wrong / digest[:2] / f"{digest}.json"
        misplaced.parent.mkdir(parents=True, exist_ok=True)
        os.replace(store.path_for(spec), misplaced)
        assert store.get(spec) is None
        report = store.rebalance()
        assert report["moved"] == 1
        assert store.get(spec) is not None

    def test_reopen_after_rebalance_uses_new_topology(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=2)
        specs = fill(store, 6)
        store.rebalance(shards=3)
        reopened = ShardedStudyStore(tmp_path)
        assert len(reopened.shards) == 3
        for spec in specs:
            assert reopened.get(spec) is not None


class TestChecksumsAndScrub:
    def test_put_writes_verifiable_checksum(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = fill(store, 1)[0]
        payload = json.loads(store.path_for(spec).read_text())
        from repro.spec.store import payload_checksum

        assert payload["checksum"] == payload_checksum(payload)

    def test_bit_damage_in_valid_json_is_quarantined_on_read(self, tmp_path):
        """Damage that still parses as JSON — the case a parse check alone
        can never catch — must be caught by the content checksum."""
        store = StudyStore(tmp_path)
        spec = fill(store, 1)[0]
        path = store.path_for(spec)
        text = path.read_text()
        damaged = re.sub(
            r'"successes": \d+', '"successes": 9999', text, count=1
        )
        assert damaged != text
        path.write_text(damaged)
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            assert store.get(spec) is None
        assert f"{spec.spec_hash()}.json" in store.corrupt_entries()

    def test_legacy_entry_without_checksum_still_reads(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = fill(store, 1)[0]
        path = store.path_for(spec)
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        assert store.get(spec) is not None
        report = store.scrub()
        assert report == {
            "scanned": 1,
            "ok": 0,
            "legacy": 1,
            "quarantined": [],
        }

    def test_store_scrub_quarantines_only_damaged_entries(self, tmp_path):
        store = StudyStore(tmp_path)
        specs = fill(store, 3)
        victim = store.path_for(specs[0])
        victim.write_text(victim.read_text().replace(":", ";", 1))  # bad JSON
        with pytest.warns(RuntimeWarning, match="corrupt"):
            report = store.scrub()
        assert report["scanned"] == 3
        assert report["ok"] == 2
        assert report["quarantined"] == [specs[0].spec_hash()]
        for spec in specs[1:]:
            assert store.get(spec) is not None

    def test_sharded_scrub_merges_shard_reports(self, tmp_path):
        store = ShardedStudyStore(tmp_path, shards=2)
        specs = fill(store, 6)
        victim = store.path_for(specs[0])
        victim.write_text("not json at all")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            report = store.scrub()
        assert report["scanned"] == 6
        assert report["ok"] == 5
        assert report["quarantined"] == [specs[0].spec_hash()]
        assert report["lost_shards"] == []
        assert set(report["shards"]) == set(store.shards)


class TestShardLoss:
    def test_lost_shard_reads_as_miss_with_health_event(self, tmp_path):
        from repro import faults
        from repro.sim.health import RunHealth, collecting

        store = ShardedStudyStore(tmp_path, shards=2)
        specs = fill(store, 8)
        lost = store.shard_for(specs[0])
        health = RunHealth()
        with faults.injected({"rules": [{"site": "shard-loss", "shard": lost}]}):
            with collecting(health):
                for spec in specs:
                    survived = store.shard_for(spec) != lost
                    assert (store.get(spec) is not None) == survived
        assert health.shard_losses
        assert all(e.kind == "shard-loss" for e in health.shard_losses)
        # No fault: everything reads again (degradation, not damage).
        for spec in specs:
            assert store.get(spec) is not None

    def test_lost_shard_write_degrades_to_noop(self, tmp_path):
        from repro import faults
        from repro.sim.health import RunHealth, collecting

        store = ShardedStudyStore(tmp_path, shards=2)
        spec = aloha_spec(seed=1234)
        lost = store.shard_for(spec)
        health = RunHealth()
        with faults.injected({"rules": [{"site": "shard-loss", "shard": lost}]}):
            with collecting(health):
                path = store.put(spec, spec.run())
        assert not path.exists()
        assert health.shard_losses

    def test_sharded_scrub_reports_lost_shards(self, tmp_path):
        from repro import faults

        store = ShardedStudyStore(tmp_path, shards=2)
        fill(store, 6)
        lost = store.shards[0]
        with faults.injected({"rules": [{"site": "shard-loss", "shard": lost}]}):
            report = store.scrub()
        assert report["lost_shards"] == [lost]
        assert lost not in report["shards"]
        assert report["scanned"] < 6 or report["scanned"] == 6
