"""Tests for the declarative spec layer (repro.spec).

The heart of the suite is the round-trip property the API redesign promises:
for every registered protocol and adversary kind, ``to_json -> from_json``
preserves the spec exactly and the spec path runs seed-for-seed identical to
the callable-factory path.
"""

import numpy as np
import pytest

from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    RandomFractionJamming,
)
from repro.core import AlgorithmParameters, cjz_factory
from repro.errors import ConfigurationError, SpecError
from repro.functions import RateFunction, constant_g, log_g, polylog_g
from repro.sim import TrialRunner, SimulatorConfig, run_trials
from repro.spec import (
    ADVERSARIES,
    ARRIVAL_STRATEGIES,
    JAMMING_STRATEGIES,
    PROTOCOLS,
    AdversarySpec,
    ProtocolSpec,
    StrategySpec,
    StudySpec,
    rate_function_from_spec,
    rate_function_to_spec,
)

HORIZON = 384
TRIALS = 2
SEED = 20210219


def small_adversary() -> AdversarySpec:
    return AdversarySpec.batch(12, jam_fraction=0.2)


#: one spec per registered adversary kind (composed kinds via StrategySpec)
ADVERSARY_CASES = {
    "composed/batch+random": AdversarySpec.batch(10, jam_fraction=0.25),
    "composed/uniform+none": AdversarySpec.spread(10, end=HORIZON // 2),
    "composed/poisson+periodic": AdversarySpec.composed(
        "poisson", "periodic", {"rate": 0.02}, {"period": 5}
    ),
    "composed/bursty+reactive": AdversarySpec.composed(
        "bursty", "reactive", {"burst_size": 6, "period": 96}, {"fraction": 0.1, "burst": 4}
    ),
    "composed/scheduled+front-loaded": AdversarySpec.composed(
        "scheduled", "front-loaded", {"schedule": [[2, 4], [50, 4]]}, {"count": 16}
    ),
    "composed/none+budgeted": AdversarySpec.composed(
        "no-arrivals",
        "budgeted",
        {},
        {"g": {"kind": "constant", "params": {"value": 4.0}}, "budget_constant": 4.0},
    ),
    "lower-bound": AdversarySpec(
        kind="lower-bound",
        params={"g": {"kind": "constant", "params": {"value": 4.0}}, "initial_nodes": 2},
    ),
    "non-adaptive-killer": AdversarySpec(
        kind="non-adaptive-killer",
        params={"g": {"kind": "constant", "params": {"value": 4.0}}},
    ),
    "smooth": AdversarySpec(
        kind="smooth", params={"g": {"kind": "constant", "params": {"value": 4.0}}}
    ),
    "adaptive-success-chaser": AdversarySpec(
        kind="adaptive-success-chaser", params={"jam_fraction": 0.1, "seed_arrivals": 4}
    ),
    "schedule": AdversarySpec(
        kind="schedule", params={"arrivals": [[1, 8]], "jammed_slots": [3, 4]}
    ),
}


class TestRateFunctionSpecs:
    def test_standard_families_round_trip(self):
        for rate in (constant_g(3.0), log_g(2.0), polylog_g(1.5)):
            rebuilt = rate_function_from_spec(rate_function_to_spec(rate))
            for x in (16.0, 1024.0, 2.0**20):
                assert rebuilt(x) == pytest.approx(rate(x))

    def test_hand_rolled_function_rejected(self):
        custom = RateFunction("custom", lambda x: 2.0)
        with pytest.raises(SpecError):
            rate_function_to_spec(custom)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            rate_function_from_spec({"kind": "nope"})


class TestProtocolSpec:
    @pytest.mark.parametrize("kind", PROTOCOLS.kinds())
    def test_default_spec_builds_and_round_trips(self, kind):
        spec = ProtocolSpec(kind=kind)
        rebuilt = ProtocolSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        instance = spec.build()()
        assert instance.name

    @pytest.mark.parametrize("kind", PROTOCOLS.kinds())
    def test_instance_to_spec_rebuilds_identically(self, kind):
        spec = ProtocolSpec(kind=kind)
        instance = spec.build()()
        recovered = instance.to_spec()
        assert recovered.kind == kind
        # The recovered spec (with fully materialized params) must drive a
        # seed-identical study.
        adversary = small_adversary()
        original = run_trials(spec, adversary, HORIZON, trials=TRIALS, seed=SEED)
        rebuilt = run_trials(recovered, adversary, HORIZON, trials=TRIALS, seed=SEED)
        for a, b in zip(original, rebuilt):
            assert a.total_successes == b.total_successes
            assert a.prefix_active == b.prefix_active

    def test_from_spec_inverse(self):
        from repro.protocols.base import Protocol

        spec = ProtocolSpec(kind="slotted-aloha", params={"probability": 0.2})
        instance = Protocol.from_spec(spec)
        assert instance.to_spec() == spec
        # A to_dict mapping is accepted too.
        assert Protocol.from_spec(spec.to_dict()).to_spec() == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            ProtocolSpec(kind="quantum-backoff")

    def test_unknown_param_rejected(self):
        with pytest.raises(SpecError):
            ProtocolSpec(kind="slotted-aloha", params={"probabilty": 0.1})

    def test_cjz_from_f_is_not_serializable(self):
        params = AlgorithmParameters.from_f(
            f=RateFunction("const", lambda x: 2.0)
        )
        instance = cjz_factory(params)()
        with pytest.raises(SpecError):
            instance.to_spec()


class TestAdversarySpec:
    @pytest.mark.parametrize("name", sorted(ADVERSARY_CASES))
    def test_round_trip_and_build(self, name):
        spec = ADVERSARY_CASES[name]
        rebuilt = AdversarySpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        adversary = rebuilt.build(HORIZON)
        adversary.setup(np.random.default_rng(0), HORIZON)
        action = adversary.action_for_slot(1)
        assert action.arrivals >= 0

    @pytest.mark.parametrize("name", sorted(ADVERSARY_CASES))
    def test_instance_to_spec_round_trip(self, name):
        spec = ADVERSARY_CASES[name]
        instance = spec.build(HORIZON)
        recovered = instance.to_spec()
        rebuilt = recovered.build(HORIZON)
        # Same classes, same constructor state: drive both through setup with
        # the same seed and compare the resulting actions slot by slot.
        instance2 = spec.build(HORIZON)
        instance2.setup(np.random.default_rng(7), HORIZON)
        rebuilt.setup(np.random.default_rng(7), HORIZON)
        for slot in range(1, 65):
            a = instance2.action_for_slot(slot)
            b = rebuilt.action_for_slot(slot)
            assert (a.arrivals, a.jam) == (b.arrivals, b.jam)

    def test_registries_cover_every_case(self):
        monolithic = {s.kind for s in ADVERSARY_CASES.values() if s.kind != "composed"}
        assert monolithic == set(ADVERSARIES.kinds())
        arrival_kinds = {
            s.arrivals.kind for s in ADVERSARY_CASES.values() if s.kind == "composed"
        }
        jamming_kinds = {
            s.jamming.kind for s in ADVERSARY_CASES.values() if s.kind == "composed"
        }
        assert arrival_kinds == set(ARRIVAL_STRATEGIES.kinds())
        jammers = set(JAMMING_STRATEGIES.kinds())
        assert jamming_kinds <= jammers
        # random-fraction and no-jamming are exercised via the shorthand cases
        assert {"random-fraction", "no-jamming"} <= jammers

    def test_from_spec_inverse(self):
        from repro.adversary import Adversary

        spec = AdversarySpec(
            kind="lower-bound",
            params={"g": {"kind": "constant", "params": {"value": 4.0}}},
        )
        instance = Adversary.from_spec(spec, horizon=HORIZON)
        recovered = instance.to_spec()
        assert recovered.kind == "lower-bound"
        assert recovered.params["g"] == {"kind": "constant", "params": {"value": 4.0}}

    def test_composed_rejects_top_level_params(self):
        with pytest.raises(SpecError):
            AdversarySpec(
                arrivals=StrategySpec("batch"), params={"count": 3}
            )

    def test_monolithic_rejects_strategies(self):
        with pytest.raises(SpecError):
            AdversarySpec(kind="lower-bound", arrivals=StrategySpec("batch"))

    def test_horizon_required_for_proof_adversaries(self):
        spec = AdversarySpec(kind="lower-bound")
        with pytest.raises(SpecError):
            spec.build()


class TestStudySpecRoundTrip:
    @pytest.mark.parametrize("kind", PROTOCOLS.kinds())
    def test_every_protocol_seed_identical_to_callable_path(self, kind):
        adversary = small_adversary()
        spec = StudySpec(
            protocol=ProtocolSpec(kind=kind),
            adversary=adversary,
            horizon=HORIZON,
            trials=TRIALS,
            seed=SEED,
        )
        via_spec = StudySpec.from_json(spec.to_json()).run()
        via_callables = run_trials(
            protocol_factory=spec.protocol.build(),
            adversary_factory=adversary.factory(HORIZON),
            horizon=HORIZON,
            trials=TRIALS,
            seed=SEED,
        )
        for a, b in zip(via_spec, via_callables):
            assert a.total_successes == b.total_successes
            assert a.prefix_active == b.prefix_active
            assert a.prefix_jammed == b.prefix_jammed

    @pytest.mark.parametrize("name", sorted(ADVERSARY_CASES))
    def test_every_adversary_seed_identical_to_callable_path(self, name):
        adversary = ADVERSARY_CASES[name]
        spec = StudySpec(
            protocol=ProtocolSpec(kind="probability-backoff"),
            adversary=adversary,
            horizon=HORIZON,
            trials=TRIALS,
            seed=SEED,
        )
        via_spec = StudySpec.from_json(spec.to_json()).run()
        via_callables = run_trials(
            protocol_factory=spec.protocol.build(),
            adversary_factory=adversary.factory(HORIZON),
            horizon=HORIZON,
            trials=TRIALS,
            seed=SEED,
        )
        for a, b in zip(via_spec, via_callables):
            assert a.total_successes == b.total_successes
            assert a.prefix_active == b.prefix_active
            assert a.prefix_jammed == b.prefix_jammed

    def test_spec_path_matches_hand_built_closures(self):
        """The spec path reproduces a manually assembled study bit for bit."""

        def adversary_factory():
            return ComposedAdversary(
                BatchArrivals(12), RandomFractionJamming(0.2)
            )

        manual = run_trials(
            protocol_factory=cjz_factory(AlgorithmParameters.from_g(constant_g(4.0))),
            adversary_factory=adversary_factory,
            horizon=HORIZON,
            trials=TRIALS,
            seed=SEED,
        )
        declarative = StudySpec(
            protocol=ProtocolSpec(
                kind="cjz",
                params={"g": {"kind": "constant", "params": {"value": 4.0}}},
            ),
            adversary=small_adversary(),
            horizon=HORIZON,
            trials=TRIALS,
            seed=SEED,
        ).run()
        for a, b in zip(manual, declarative):
            assert a.total_successes == b.total_successes
            assert a.prefix_active == b.prefix_active

    def test_specs_are_hashable_by_content(self):
        a = StudySpec(
            protocol=ProtocolSpec(kind="slotted-aloha"), adversary=small_adversary()
        )
        b = StudySpec(
            protocol=ProtocolSpec(kind="slotted-aloha"), adversary=small_adversary()
        )
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        assert hash(ProtocolSpec()) == hash(ProtocolSpec())
        assert hash(small_adversary()) == hash(small_adversary())

    def test_run_forwards_collectors(self):
        from repro.metrics import WindowedSuccessCounter

        counter = WindowedSuccessCounter(window=64)
        spec = StudySpec(
            protocol=ProtocolSpec(kind="slotted-aloha"),
            adversary=small_adversary(),
            horizon=256,
            trials=1,
            seed=SEED,
        )
        study = spec.run(collectors=[counter])
        assert sum(counter.counts) == study.results[0].total_successes

    def test_json_round_trip_preserves_spec_exactly(self):
        spec = StudySpec(
            protocol=ProtocolSpec(kind="slotted-aloha", params={"probability": 0.07}),
            adversary=AdversarySpec.composed(
                "poisson", "periodic", {"rate": 0.01}, {"period": 7}, label="x"
            ),
            horizon=777,
            trials=3,
            seed=5,
            backend="reference",
            workers=2,
            stop_when_drained=True,
            label="round-trip",
        )
        assert StudySpec.from_json(spec.to_json()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError):
            StudySpec.from_dict({"horizont": 10})

    def test_invalid_backend_rejected(self):
        with pytest.raises(SpecError):
            StudySpec(backend="gpu")


class TestRunnerSpecSupport:
    def test_run_trials_accepts_specs_directly(self):
        study = run_trials(
            ProtocolSpec(kind="slotted-aloha"),
            small_adversary(),
            horizon=HORIZON,
            trials=TRIALS,
            seed=SEED,
        )
        assert study.trials == TRIALS

    def test_collectors_with_workers_rejected_at_construction(self):
        class DummyCollector:
            pass

        with pytest.raises(ConfigurationError, match="collectors require workers=1"):
            TrialRunner(
                ProtocolSpec(kind="slotted-aloha"),
                small_adversary(),
                SimulatorConfig(horizon=64),
                collectors=[DummyCollector()],
                workers=2,
            )


class TestWorkloadFoldIn:
    def test_workload_spec_converts_and_matches(self):
        from repro.workloads import WorkloadSpec, build_adversary_factory

        workload = WorkloadSpec(
            horizon=256,
            arrival_kind="uniform",
            arrival_params={"total": 20, "start": 1, "end": 128},
            jamming_kind="random",
            jamming_params={"fraction": 0.3},
            label="legacy",
        )
        spec = workload.to_adversary_spec()
        assert spec.arrivals.kind == "uniform-random"
        assert spec.jamming.kind == "random-fraction"
        assert spec.label == "legacy"
        built = build_adversary_factory(workload)()
        rebuilt = AdversarySpec.from_dict(spec.to_dict()).build(workload.horizon)
        built.setup(np.random.default_rng(3), workload.horizon)
        rebuilt.setup(np.random.default_rng(3), workload.horizon)
        for slot in range(1, 129):
            a, b = built.action_for_slot(slot), rebuilt.action_for_slot(slot)
            assert (a.arrivals, a.jam) == (b.arrivals, b.jam)

    def test_every_scenario_is_a_runnable_study_spec(self):
        from repro.workloads import STANDARD_SCENARIOS, scenario_study

        for key in STANDARD_SCENARIOS:
            study = scenario_study(key, trials=1, seed=1).with_overrides(
                {"horizon": 256}
            )
            assert StudySpec.from_json(study.to_json()) == study
            result = study.run()
            assert result.trials == 1

    def test_quick_run_scenario(self):
        from repro import quick_run

        result = quick_run(scenario="adversarial-jam", horizon=256, seed=2)
        assert result.horizon == 256
        assert result.total_arrivals > 0
