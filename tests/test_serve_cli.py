"""Tests for the sweep-service CLI: serve/submit/client/store commands.

In-process tests drive ``main()`` against a :class:`BackgroundServer`; one
subprocess smoke test exercises the real ``repro serve`` daemon end to end
(spawn, submit a sweep twice, assert the second pass is all cache hits,
shut it down).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import build_parser, main
from repro.serve import BackgroundServer, ServeClient, ShardedStudyStore
from repro.spec import AdversarySpec, ProtocolSpec, StudySpec

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def aloha_spec(seed=3, horizon=512) -> StudySpec:
    return StudySpec(
        protocol=ProtocolSpec(kind="slotted-aloha", params={"probability": 0.05}),
        adversary=AdversarySpec.batch(8, jam_fraction=0.25),
        horizon=horizon,
        trials=1,
        seed=seed,
    )


class TestParser:
    def test_serve_command_parsing(self):
        args = build_parser().parse_args(
            ["serve", "--port", "7500", "--workers", "4", "--shards", "3"]
        )
        assert args.port == 7500
        assert args.workers == 4
        assert args.shards == 3

    def test_submit_requires_spec_or_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_sweep_accepts_server(self):
        args = build_parser().parse_args(
            ["sweep", "--scenario", "adversarial-jam", "--server", ":7421"]
        )
        assert args.server == ":7421"

    def test_store_actions(self):
        args = build_parser().parse_args(["store", "evict", "--budget", "1024"])
        assert args.action == "evict"
        assert args.budget == 1024


class TestAgainstBackgroundServer:
    def _address(self, server):
        host, port = server.address
        return f"{host}:{port}"

    def test_sweep_server_thin_client(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(aloha_spec().to_json())
        with BackgroundServer(tmp_path / "store") as bg:
            code = main(
                [
                    "sweep",
                    "--spec",
                    str(spec_file),
                    "--axis",
                    "horizon=256,512",
                    "--server",
                    self._address(bg),
                    "--format",
                    "json",
                ]
            )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert all(row["status"] == "ok" for row in rows)

    def test_submit_waits_and_renders(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(aloha_spec().to_json())
        with BackgroundServer(tmp_path / "store") as bg:
            code = main(
                [
                    "submit",
                    "--spec",
                    str(spec_file),
                    "--axis",
                    "seed=1,2",
                    "--server",
                    self._address(bg),
                    "--format",
                    "json",
                ]
            )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2

    def test_submit_no_wait_prints_hashes(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec = aloha_spec()
        spec_file.write_text(spec.to_json())
        with BackgroundServer(tmp_path / "store") as bg:
            code = main(
                [
                    "submit",
                    "--spec",
                    str(spec_file),
                    "--no-wait",
                    "--server",
                    self._address(bg),
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert spec.spec_hash() in out
            # Drain the job so server shutdown doesn't race the executor.
            ServeClient(*bg.address).results([spec.spec_hash()])

    def test_client_stats_and_status(self, tmp_path, capsys):
        with BackgroundServer(tmp_path / "store") as bg:
            ServeClient(*bg.address).submit(aloha_spec())
            assert main(["client", "stats", "--server", self._address(bg)]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["executed"] == 1
            assert main(["client", "status", "--server", self._address(bg)]) == 0
            rows = json.loads(capsys.readouterr().out)
            assert rows[0]["status"] == "done"

    def test_client_result_requires_hashes(self, tmp_path, capsys):
        with BackgroundServer(tmp_path / "store") as bg:
            code = main(["client", "result", "--server", self._address(bg)])
        assert code == 2
        assert "spec hash" in capsys.readouterr().err

    def test_unreachable_server_is_a_clean_error(self, capsys):
        code = main(["client", "stats", "--server", "127.0.0.1:1"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


class TestStoreCommand:
    def test_stats_evict_rebalance_round_trip(self, tmp_path, capsys):
        root = tmp_path / "store"
        store = ShardedStudyStore(root, shards=2)
        for seed in range(6):
            spec = aloha_spec(seed=seed)
            store.put(spec, spec.run())
        # Age the entries so a fresh CLI process may evict them.
        for digest in store.entries():
            past = time.time() - 3600
            os.utime(store.path_for(digest), (past, past))

        assert main(["store", "stats", "--root", str(root), "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 6

        assert main(["store", "rebalance", "--root", str(root), "--shards", "3"]) == 0
        assert "3 shards" in capsys.readouterr().out

        assert (
            main(
                [
                    "store",
                    "evict",
                    "--root",
                    str(root),
                    "--budget",
                    "1",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert len(report["evicted"]) == 6

    def test_evict_without_budget_is_an_error(self, tmp_path, capsys):
        ShardedStudyStore(tmp_path / "store", shards=2)
        code = main(["store", "evict", "--root", str(tmp_path / "store")])
        assert code == 2
        assert "--budget" in capsys.readouterr().err


@pytest.mark.slow
class TestServeSubprocess:
    def test_daemon_round_trip_second_pass_all_cached(self, tmp_path):
        """The CI smoke scenario in miniature: spawn the real daemon, run an
        8-point sweep through it twice, and assert the second pass never
        re-executes."""
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(aloha_spec(horizon=256).to_json())
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
                "--shards",
                "2",
                "--store-root",
                str(tmp_path / "store"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = daemon.stdout.readline()
            assert "listening on" in banner, banner
            address = banner.split("listening on ")[1].split()[0]
            submit = [
                sys.executable,
                "-m",
                "repro.cli",
                "submit",
                "--spec",
                str(spec_file),
                "--axis",
                "seed=1,2,3,4",
                "--axis",
                "adversary.jamming.params.fraction=0.0,0.25",
                "--server",
                address,
                "--format",
                "json",
            ]
            first = subprocess.run(
                submit, env=env, capture_output=True, text=True, timeout=300
            )
            assert first.returncode == 0, first.stderr
            first_rows = json.loads(first.stdout)
            assert len(first_rows) == 8

            second = subprocess.run(
                submit, env=env, capture_output=True, text=True, timeout=300
            )
            assert second.returncode == 0, second.stderr
            second_rows = json.loads(second.stdout)
            assert len(second_rows) == 8
            stats = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "client",
                    "stats",
                    "--server",
                    address,
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            counters = json.loads(stats.stdout)
            assert counters["executed"] == 8
            assert counters["cache_hits"] == 8  # the whole second pass

            # Served results must match a local serial run, semantic field
            # for semantic field.
            skip = {"mean_wall_time_s", "mean_slots_per_s",
                    "dispatch_seconds", "run_seconds"}
            from repro.spec import StudyPlan, Sweep, sweep_rows

            sweep = Sweep(
                aloha_spec(horizon=256),
                {
                    "seed": [1, 2, 3, 4],
                    "adversary.jamming.params.fraction": [0.0, 0.25],
                },
            )
            local_rows = sweep_rows(StudyPlan.from_sweep(sweep).run())
            for local, served in zip(local_rows, first_rows):
                for key, value in local.items():
                    if key in skip:
                        continue
                    assert served[key] == value, key

            shutdown = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "client",
                    "shutdown",
                    "--server",
                    address,
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert shutdown.returncode == 0
            assert daemon.wait(timeout=30) == 0
        finally:
            if daemon.poll() is None:
                daemon.send_signal(signal.SIGKILL)
                daemon.wait(timeout=10)
