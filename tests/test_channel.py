"""Unit tests for the multiple-access channel substrate."""

import pytest

from repro.channel import (
    MultipleAccessChannel,
    NoCollisionDetection,
    VirtualChannelView,
    WithCollisionDetection,
    slot_parity,
)
from repro.types import ChannelParity, Feedback, SlotOutcome


class TestFeedbackModels:
    def test_no_cd_hides_collision_vs_silence(self):
        model = NoCollisionDetection()
        assert model.feedback_for(SlotOutcome.SILENCE) is Feedback.NO_SUCCESS
        assert model.feedback_for(SlotOutcome.COLLISION) is Feedback.NO_SUCCESS
        assert model.feedback_for(SlotOutcome.SUCCESS) is Feedback.SUCCESS
        assert model.collision_detection is False

    def test_with_cd_distinguishes(self):
        model = WithCollisionDetection()
        assert model.feedback_for(SlotOutcome.SILENCE) is Feedback.SILENCE
        assert model.feedback_for(SlotOutcome.COLLISION) is Feedback.COLLISION
        assert model.feedback_for(SlotOutcome.SUCCESS) is Feedback.SUCCESS
        assert model.collision_detection is True


class TestMultipleAccessChannel:
    def test_single_broadcaster_succeeds(self):
        channel = MultipleAccessChannel()
        outcome, winner, feedback = channel.resolve([42])
        assert outcome is SlotOutcome.SUCCESS
        assert winner == 42
        assert feedback is Feedback.SUCCESS

    def test_empty_slot_is_silence(self):
        channel = MultipleAccessChannel()
        outcome, winner, feedback = channel.resolve([])
        assert outcome is SlotOutcome.SILENCE
        assert winner is None
        assert feedback is Feedback.NO_SUCCESS

    def test_two_broadcasters_collide(self):
        channel = MultipleAccessChannel()
        outcome, winner, feedback = channel.resolve([1, 2])
        assert outcome is SlotOutcome.COLLISION
        assert winner is None
        assert feedback is Feedback.NO_SUCCESS

    def test_jamming_overrides_single_broadcaster(self):
        channel = MultipleAccessChannel()
        outcome, winner, feedback = channel.resolve([7], jammed=True)
        assert outcome is SlotOutcome.COLLISION
        assert winner is None
        assert feedback is Feedback.NO_SUCCESS

    def test_jamming_an_empty_slot_still_collides(self):
        channel = MultipleAccessChannel()
        outcome, _, _ = channel.resolve([], jammed=True)
        assert outcome is SlotOutcome.COLLISION

    def test_counters(self):
        channel = MultipleAccessChannel()
        channel.resolve([1])
        channel.resolve([1, 2])
        channel.resolve([], jammed=True)
        assert channel.slots_resolved == 3
        assert channel.successes == 1
        assert channel.jammed_slots == 1
        channel.reset()
        assert channel.slots_resolved == 0

    def test_collision_detection_feedback(self):
        channel = MultipleAccessChannel(WithCollisionDetection())
        _, _, silence = channel.resolve([])
        _, _, collision = channel.resolve([1, 2])
        assert silence is Feedback.SILENCE
        assert collision is Feedback.COLLISION
        assert channel.collision_detection


class TestVirtualChannelView:
    def test_slot_parity_helper(self):
        assert slot_parity(1) is ChannelParity.ODD
        assert slot_parity(2) is ChannelParity.EVEN
        with pytest.raises(ValueError):
            slot_parity(0)

    def test_contains_same_parity(self):
        view = VirtualChannelView(anchor_slot=5, same_parity=True)
        assert view.contains(5)
        assert view.contains(7)
        assert not view.contains(6)
        assert not view.contains(3)  # before the anchor

    def test_contains_opposite_parity(self):
        view = VirtualChannelView(anchor_slot=5, same_parity=False)
        assert view.parity is ChannelParity.EVEN
        assert view.contains(6)
        assert not view.contains(5)

    def test_local_index_counts_channel_slots(self):
        view = VirtualChannelView(anchor_slot=5, same_parity=True)
        assert view.local_index(5) == 1
        assert view.local_index(7) == 2
        assert view.local_index(15) == 6

    def test_local_index_rejects_foreign_slots(self):
        view = VirtualChannelView(anchor_slot=5, same_parity=True)
        with pytest.raises(ValueError):
            view.local_index(6)
        with pytest.raises(ValueError):
            view.local_index(3)

    def test_first_slot(self):
        assert VirtualChannelView(5, True).first_slot() == 5
        assert VirtualChannelView(5, False).first_slot() == 6

    def test_opposite_swaps_parity(self):
        view = VirtualChannelView(anchor_slot=8, same_parity=True)
        assert view.opposite().parity is view.parity.other()
        assert view.opposite().anchor_slot == view.anchor_slot

    def test_invalid_anchor_rejected(self):
        with pytest.raises(ValueError):
            VirtualChannelView(anchor_slot=0)
