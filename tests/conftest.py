"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlgorithmParameters
from repro.functions import constant_g


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def parameters() -> AlgorithmParameters:
    """Default algorithm parameters (constant g, worst-case regime)."""
    return AlgorithmParameters.from_g(constant_g(4.0))


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running integration tests")
