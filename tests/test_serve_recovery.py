"""Crash safety of the sweep service: WAL, restart recovery, resilient
clients, deadlines/watchdog, graceful drain, and the SIGKILL acceptance
path (kill the daemon mid-sweep, restart it, demand identical rows)."""

import json
import os
import re
import select
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro import faults
from repro.errors import ServeError, ServeRetriable, ServeTimeout, ServeUnavailable
from repro.serve import (
    BackgroundServer,
    ServeClient,
    ServeJournal,
    SweepServer,
)
from repro.spec import AdversarySpec, ProtocolSpec, StudyPlan, StudySpec
from repro.spec.store import result_record

SEED = 47
SRC_ROOT = str(Path(repro.__file__).parents[1])


def aloha_spec(seed=SEED, horizon=256, trials=2) -> StudySpec:
    return StudySpec(
        protocol=ProtocolSpec(kind="slotted-aloha", params={"probability": 0.05}),
        adversary=AdversarySpec.batch(8, jam_fraction=0.25),
        horizon=horizon,
        trials=trials,
        seed=seed,
    )


def sweep_specs(count, **kwargs):
    return [aloha_spec(seed=SEED + index, **kwargs) for index in range(count)]


def semantic_records(study):
    records = []
    for result in study.results:
        record = result_record(result)
        record.pop("wall_time_seconds")
        record.pop("backend")
        records.append(record)
    return records


# --------------------------------------------------------------- journal


class TestServeJournal:
    def test_accepted_job_is_unfinished_until_terminal(self, tmp_path):
        journal = ServeJournal(tmp_path / "wal.jsonl")
        spec = aloha_spec()
        digest = spec.spec_hash()
        journal.record(digest, "accepted", spec=spec.to_dict(), priority=3)
        backlog = journal.unfinished()
        assert set(backlog) == {digest}
        assert backlog[digest]["spec"] == spec.to_dict()
        assert backlog[digest]["record"]["priority"] == 3

        journal.record(digest, "running")
        assert set(journal.unfinished()) == {digest}

        journal.record(digest, "done")
        assert journal.unfinished() == {}

    def test_spec_survives_status_only_appends(self, tmp_path):
        journal = ServeJournal(tmp_path / "wal.jsonl")
        spec = aloha_spec()
        digest = spec.spec_hash()
        journal.record(digest, "accepted", spec=spec.to_dict())
        journal.record(digest, "running")
        journal.record(digest, "requeued", reason="deadline")
        _, specs = journal.replay()
        assert specs[digest] == spec.to_dict()

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = ServeJournal(path)
        spec = aloha_spec()
        journal.record(spec.spec_hash(), "accepted", spec=spec.to_dict())
        with path.open("a") as handle:
            handle.write('{"hash": "feedface", "status": "acc')  # no newline
        backlog = journal.unfinished()
        assert set(backlog) == {spec.spec_hash()}

    def test_append_after_tear_starts_a_fresh_line(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = ServeJournal(path)
        with path.open("w") as handle:
            handle.write('{"hash": "feedface", "status": "acc')  # torn
        spec = aloha_spec()
        journal.record(spec.spec_hash(), "accepted", spec=spec.to_dict())
        # The welded-line failure mode would lose the new record too.
        assert set(journal.unfinished()) == {spec.spec_hash()}

    def test_wal_torn_fault_tears_the_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = ServeJournal(path)
        keep = aloha_spec(seed=1)
        torn = aloha_spec(seed=2)
        journal.record(keep.spec_hash(), "accepted", spec=keep.to_dict())
        with faults.injected(
            {"rules": [{"site": "wal-torn", "hash": torn.spec_hash()}]}
        ):
            journal.record(torn.spec_hash(), "accepted", spec=torn.to_dict())
        assert not path.read_text().endswith("\n")
        # The torn record is dropped; the earlier one survives intact.
        assert set(journal.unfinished()) == {keep.spec_hash()}


# ------------------------------------------------------ restart recovery


class TestRestartRecovery:
    def test_backlog_is_requeued_and_executed_on_start(self, tmp_path):
        """A journal of accepted-but-unfinished jobs (the post-crash shape)
        must be completed by a restarted server, with rows seed-for-seed
        identical to an uninterrupted serial StudyPlan.run."""
        journal_path = tmp_path / "wal.jsonl"
        journal = ServeJournal(journal_path)
        specs = sweep_specs(3)
        journal.record(specs[0].spec_hash(), "accepted", spec=specs[0].to_dict())
        journal.record(specs[1].spec_hash(), "accepted", spec=specs[1].to_dict())
        journal.record(specs[1].spec_hash(), "running")
        journal.record(specs[2].spec_hash(), "accepted", spec=specs[2].to_dict())
        with BackgroundServer(
            tmp_path / "store", shards=2, workers=2, journal=journal_path
        ) as bg:
            client = ServeClient(*bg.address, timeout=60.0)
            outcomes = client.results(
                [spec.spec_hash() for spec in specs], wait=True
            )
            by_hash = {o.hash: o for o in outcomes}
            assert bg.server.stats.recovered == 3
            serial = StudyPlan(specs).run()
            for spec, result in zip(specs, serial):
                outcome = by_hash[spec.spec_hash()]
                assert outcome.ok
                assert semantic_records(outcome.study) == semantic_records(
                    result.study
                )

    def test_completed_jobs_recover_as_cache_hits(self, tmp_path):
        """Crash in the put-then-journal gap: the result is in the store but
        the WAL never saw 'done' — recovery must answer from the store, not
        re-execute."""
        journal_path = tmp_path / "wal.jsonl"
        spec = aloha_spec()
        store_root = tmp_path / "store"
        from repro.serve import ShardedStudyStore

        store = ShardedStudyStore(store_root, shards=2)
        spec.run(store=store)
        journal = ServeJournal(journal_path)
        journal.record(spec.spec_hash(), "accepted", spec=spec.to_dict())
        journal.record(spec.spec_hash(), "running")
        with BackgroundServer(
            store_root, shards=2, workers=2, journal=journal_path
        ) as bg:
            client = ServeClient(*bg.address, timeout=60.0)
            outcome = client.results([spec.spec_hash()], wait=True)[0]
            assert outcome.status == "cached"
            assert bg.server.stats.recovered == 1
            assert bg.server.stats.executed == 0
        # And the journal now carries the terminal state: a second restart
        # has nothing left to recover.
        assert ServeJournal(journal_path).unfinished() == {}

    def test_dedupe_is_preserved_across_restart(self, tmp_path):
        journal_path = tmp_path / "wal.jsonl"
        spec = aloha_spec()
        journal = ServeJournal(journal_path)
        journal.record(spec.spec_hash(), "accepted", spec=spec.to_dict())
        with BackgroundServer(
            tmp_path / "store", shards=2, workers=2, journal=journal_path
        ) as bg:
            client = ServeClient(*bg.address, timeout=60.0)
            outcome = client.submit(spec)[0]  # same spec: attach or cache
            assert outcome.ok
            stats = client.stats()
            # One execution total despite recovery + resubmission.
            assert stats["executed"] + stats["jobs"]["cached"] <= 2
            assert bg.server.stats.executed <= 1


# ------------------------------------------------- deadlines and watchdog


class TestDeadlineAndWatchdog:
    def test_deadline_requeues_then_fails(self, tmp_path):
        """An execution that can never meet its deadline burns its requeue
        budget and lands in 'failed' with a deadline error."""
        # A long watchdog interval keeps the hung-dispatcher ladder out of
        # this test: under CPU load the executing thread can starve the
        # event loop past the default threshold, and the second attempt
        # would fail as "dispatcher hung" instead of "deadline".
        with BackgroundServer(
            tmp_path / "store",
            shards=2,
            workers=1,
            journal=tmp_path / "wal.jsonl",
            deadline=0.001,
            requeues=1,
            watchdog_interval=30.0,
        ) as bg:
            client = ServeClient(*bg.address, timeout=60.0)
            outcome = client.submit(aloha_spec(horizon=2048, trials=4))[0]
            assert not outcome.ok
            assert outcome.status == "failed"
            assert "deadline" in outcome.error
            assert bg.server.stats.requeued == 1
        state = ServeJournal(tmp_path / "wal.jsonl").load()
        statuses = [r["status"] for r in state.values()]
        assert statuses == ["failed"]

    def test_watchdog_replaces_hung_dispatcher_and_job_completes(self, tmp_path):
        """A dispatcher wedged by the dispatcher-hang fault is cancelled and
        replaced; its job re-queues and finishes on the fresh dispatcher."""
        with faults.injected(
            {"rules": [{"site": "dispatcher-hang", "times": 1}]}
        ):
            with BackgroundServer(
                tmp_path / "store",
                shards=2,
                workers=1,
                deadline=0.5,
                requeues=2,
            ) as bg:
                client = ServeClient(*bg.address, timeout=60.0)
                outcome = client.submit(aloha_spec())[0]
                assert outcome.ok
                assert bg.server.stats.watchdog_restarts >= 1
                assert bg.server.stats.requeued >= 1

    def test_hung_dispatcher_job_fails_when_requeues_exhausted(self, tmp_path):
        with faults.injected({"rules": [{"site": "dispatcher-hang"}]}):
            with BackgroundServer(
                tmp_path / "store",
                shards=2,
                workers=1,
                deadline=0.3,
                requeues=0,
            ) as bg:
                client = ServeClient(*bg.address, timeout=60.0)
                outcome = client.submit(aloha_spec())[0]
                assert not outcome.ok
                assert "dispatcher" in outcome.error


# ----------------------------------------------------- client resilience


class TestClientResilience:
    def test_default_timeout_is_finite(self):
        client = ServeClient("127.0.0.1", 1)
        assert client._timeout == 300.0
        assert client._retries == 4

    def test_env_overrides_timeout_and_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_SERVE_RETRIES", "2")
        monkeypatch.setenv("REPRO_SERVE_BACKOFF", "0.125")
        client = ServeClient("127.0.0.1", 1)
        assert client._timeout == 7.5
        assert client._retries == 2
        assert client._backoff == 0.125

    def test_unresponsive_server_raises_serve_timeout(self):
        """A server that accepts but never answers must not hang the client
        forever — the typed, retriable timeout fires instead."""
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            client = ServeClient(
                "127.0.0.1", port, timeout=0.2, retries=1, backoff=0.01
            )
            start = time.monotonic()
            with pytest.raises(ServeTimeout):
                client.stats()
            assert time.monotonic() - start < 10.0

    def test_refused_connection_raises_serve_unavailable(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = ServeClient("127.0.0.1", port, timeout=0.5, retries=0)
        with pytest.raises(ServeUnavailable) as excinfo:
            client.stats()
        assert isinstance(excinfo.value, ServeRetriable)
        assert isinstance(excinfo.value, ServeError)

    def test_conn_drop_fault_is_retried_transparently(self, tmp_path):
        """A connection dropped mid-submit re-sends the whole request; the
        server-side dedupe turns the re-send into a reattach."""
        with BackgroundServer(tmp_path / "store", shards=2, workers=2) as bg:
            client = ServeClient(
                *bg.address, timeout=60.0, retries=3, backoff=0.01
            )
            with faults.injected(
                {"rules": [{"site": "conn-drop", "op": "submit", "times": 1}]}
            ):
                outcome = client.submit(aloha_spec())[0]
            assert outcome.ok

    def test_conn_drop_exhausting_retries_surfaces_unavailable(self, tmp_path):
        with BackgroundServer(tmp_path / "store", shards=2, workers=2) as bg:
            client = ServeClient(
                *bg.address, timeout=60.0, retries=1, backoff=0.01
            )
            with faults.injected({"rules": [{"site": "conn-drop"}]}):
                with pytest.raises(ServeUnavailable, match="conn-drop"):
                    client.stats()

    def test_sweep_survives_server_restart_mid_flight(self, tmp_path):
        """The acceptance scenario in-process: a client sweep keeps retrying
        through a full server stop/restart on the same port+journal+store
        and its rows are seed-for-seed identical to a serial run."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        store_root = tmp_path / "store"
        journal = tmp_path / "wal.jsonl"
        specs = sweep_specs(6, horizon=512, trials=2)
        client = ServeClient(
            "127.0.0.1", port, timeout=20.0, retries=8, backoff=0.05
        )
        results = {}
        errors = []

        def run_sweep():
            try:
                results["plan"] = client.run_plan(specs)
            except BaseException as exc:  # noqa: BLE001 — reported in-test
                errors.append(exc)

        first = BackgroundServer(
            store_root, shards=2, workers=2, journal=journal, port=port
        )
        first.__enter__()
        worker = threading.Thread(target=run_sweep, daemon=True)
        try:
            worker.start()
            time.sleep(0.4)  # let some jobs land and some execute
            first.stop()  # hard stop: in-flight waits die mid-stream
            with BackgroundServer(
                store_root, shards=2, workers=2, journal=journal, port=port
            ):
                worker.join(timeout=120.0)
                assert not worker.is_alive()
        finally:
            first.stop()
        assert not errors, f"sweep died across restart: {errors[0]!r}"
        serial = StudyPlan(specs).run()
        for planned, expected in zip(results["plan"], serial):
            assert not planned.failed
            assert semantic_records(planned.study) == semantic_records(
                expected.study
            )


# -------------------------------------------------- daemon (subprocess)


def _daemon_command(store_root, journal, *extra):
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--workers",
        "2",
        "--shards",
        "2",
        "--store-root",
        str(store_root),
        "--journal",
        str(journal),
        *extra,
    ]


def _spawn_daemon(store_root, journal, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        _daemon_command(store_root, journal, *extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60.0
    line = ""
    while time.monotonic() < deadline:
        ready, _, _ = select.select([proc.stdout], [], [], 1.0)
        if ready:
            line = proc.stdout.readline()
            break
        if proc.poll() is not None:
            break
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        raise AssertionError(f"daemon did not announce its port: {line!r}")
    return proc, (match.group(1), int(match.group(2))), line


@pytest.mark.slow
class TestDaemonCrashRestart:
    def test_sigkill_restart_completes_sweep_identically(self, tmp_path):
        """SIGKILL the daemon mid-sweep with queued + running jobs, restart
        it over the same journal/store, and demand every accepted job
        completes with rows seed-for-seed identical to a serial
        StudyPlan.run — including a torn trailing WAL line."""
        store_root = tmp_path / "store"
        journal = tmp_path / "wal.jsonl"
        specs = sweep_specs(12, horizon=2048, trials=4)

        proc, address, _ = _spawn_daemon(store_root, journal)
        try:
            client = ServeClient(*address, timeout=30.0)
            accepted = client.submit(specs, wait=False)
            assert len(accepted) == len(specs)
            time.sleep(0.05)  # a mix of done / running / queued jobs
        finally:
            proc.kill()  # SIGKILL: no drain, no flush
            proc.wait(timeout=30.0)

        assert ServeJournal(journal).unfinished(), (
            "kill arrived after the whole backlog finished; nothing to "
            "recover — enlarge the sweep"
        )
        # Guarantee the torn-trailing-line case regardless of kill timing.
        with journal.open("a") as handle:
            handle.write('{"hash": "deadbeef", "status": "runn')

        proc, address, banner = _spawn_daemon(store_root, journal)
        try:
            assert "recovered" in banner
            client = ServeClient(*address, timeout=60.0)
            # Reattach exactly as a resumed sweep does: resubmit the same
            # specs — deduped by spec_hash, answered from the job table or
            # the store, never re-executed twice.
            outcomes = client.submit(specs, wait=True)
            by_hash = {o.hash: o for o in outcomes}
            serial = StudyPlan(specs).run()
            for spec, expected in zip(specs, serial):
                outcome = by_hash[spec.spec_hash()]
                assert outcome.ok, outcome.error
                assert semantic_records(outcome.study) == semantic_records(
                    expected.study
                )
            client.shutdown()
            proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        assert ServeJournal(journal).unfinished() == {}

    def test_sigterm_drains_backlog_and_exits_zero(self, tmp_path):
        store_root = tmp_path / "store"
        journal = tmp_path / "wal.jsonl"
        specs = sweep_specs(4)

        proc, address, _ = _spawn_daemon(store_root, journal)
        try:
            client = ServeClient(*address, timeout=30.0)
            accepted = client.submit(specs, wait=False)
            assert len(accepted) == len(specs)
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        assert code == 0
        # Every accepted job reached a terminal, journaled state.
        assert ServeJournal(journal).unfinished() == {}
        state = ServeJournal(journal).load()
        for spec in specs:
            assert state[spec.spec_hash()]["status"] in ("done", "cached")
