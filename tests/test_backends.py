"""Unit tests for the pluggable slot-kernel architecture."""

import numpy as np
import pytest

from repro.adversary import (
    AdaptiveSuccessChaser,
    BatchArrivals,
    ComposedAdversary,
    NoJamming,
    PoissonArrivals,
    RandomFractionJamming,
    ReactiveJamming,
    ScheduleAdversary,
)
from repro.core import cjz_factory
from repro.core.subroutines import HBackoff
from repro.errors import ConfigurationError
from repro.metrics import SuccessTimeline
from repro.protocols import (
    ProbabilityBackoff,
    SlottedAloha,
    WindowedBinaryExponentialBackoff,
    make_factory,
)
from repro.sim import (
    Simulator,
    SimulatorConfig,
    available_backends,
    available_study_backends,
    run_trials,
)
from repro.sim.backends import batched as batched_module
from repro.sim.backends import vectorized as vectorized_module


def make_simulator(factory, adversary, backend="auto", horizon=128, seed=1, **kwargs):
    return Simulator(
        protocol_factory=factory,
        adversary=adversary,
        config=SimulatorConfig(horizon=horizon, **kwargs),
        seed=seed,
        backend=backend,
    )


class TestBackendSelection:
    def test_available_backends(self):
        assert available_backends() == ("auto", "reference", "vectorized")

    def test_available_study_backends(self):
        assert available_study_backends() == (
            "auto",
            "batched-study",
            "lockstep",
            "lockstep-jit",
            "reference",
            "vectorized",
        )

    @pytest.mark.parametrize("backend", ["batched-study", "lockstep", "lockstep-jit"])
    def test_simulator_rejects_study_backend(self, backend):
        with pytest.raises(ConfigurationError, match="whole trial studies"):
            make_simulator(
                make_factory(SlottedAloha, 0.2),
                ScheduleAdversary.single_batch(4),
                backend=backend,
            )

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            make_simulator(
                make_factory(SlottedAloha, 0.2),
                ScheduleAdversary.single_batch(4),
                backend="warp-drive",
            )

    def test_auto_picks_vectorized_for_eligible_protocol(self):
        result = make_simulator(
            make_factory(SlottedAloha, 0.2), ScheduleAdversary.single_batch(4)
        ).run()
        assert result.backend == "vectorized"

    def test_auto_falls_back_for_adaptive_protocol(self):
        result = make_simulator(cjz_factory(), ScheduleAdversary.single_batch(4)).run()
        assert result.backend == "reference"

    def test_auto_falls_back_for_adaptive_adversary(self):
        result = make_simulator(
            make_factory(SlottedAloha, 0.2),
            ComposedAdversary(BatchArrivals(4), ReactiveJamming(0.2)),
        ).run()
        assert result.backend == "reference"

    def test_explicit_vectorized_rejects_adaptive_protocol(self):
        simulator = make_simulator(
            cjz_factory(), ScheduleAdversary.single_batch(4), backend="vectorized"
        )
        with pytest.raises(ConfigurationError, match="vector-eligible"):
            simulator.run()

    def test_explicit_vectorized_rejects_adaptive_adversary(self):
        simulator = make_simulator(
            make_factory(SlottedAloha, 0.2),
            AdaptiveSuccessChaser(),
            backend="vectorized",
        )
        with pytest.raises(ConfigurationError, match="adaptive"):
            simulator.run()

    def test_explicit_reference_always_allowed(self):
        result = make_simulator(
            make_factory(SlottedAloha, 0.2),
            ScheduleAdversary.single_batch(4),
            backend="reference",
        ).run()
        assert result.backend == "reference"


class TestResultProvenance:
    def test_wall_time_and_rate_recorded(self):
        result = make_simulator(
            make_factory(SlottedAloha, 0.2), ScheduleAdversary.single_batch(4)
        ).run()
        assert result.wall_time_seconds > 0.0
        assert result.slots_per_second > 0.0
        assert result.slots_per_second == result.horizon / result.wall_time_seconds

    def test_channel_counters_match_reference(self):
        def run(backend):
            simulator = make_simulator(
                make_factory(SlottedAloha, 0.2),
                ComposedAdversary(BatchArrivals(6), RandomFractionJamming(0.2)),
                backend=backend,
                seed=3,
            )
            simulator.run()
            return (
                simulator.channel.slots_resolved,
                simulator.channel.successes,
                simulator.channel.jammed_slots,
            )

        assert run("reference") == run("vectorized")

    def test_collectors_identical_across_backends(self):
        def success_slots(backend):
            timeline = SuccessTimeline()
            Simulator(
                protocol_factory=make_factory(SlottedAloha, 0.3),
                adversary=ScheduleAdversary(arrivals={1: 3}, jammed_slots=[2]),
                config=SimulatorConfig(horizon=200),
                collectors=[timeline],
                seed=9,
                backend=backend,
            ).run()
            return timeline.success_slots

        assert success_slots("reference") == success_slots("vectorized")

    def test_memory_guard_falls_back_to_replay(self, monkeypatch):
        reference = make_simulator(
            make_factory(SlottedAloha, 0.2),
            ComposedAdversary(BatchArrivals(8), RandomFractionJamming(0.25)),
            backend="reference",
            seed=5,
        ).run()
        monkeypatch.setattr(vectorized_module, "_MAX_MATRIX_BYTES", 1)
        fallback = make_simulator(
            make_factory(SlottedAloha, 0.2),
            ComposedAdversary(BatchArrivals(8), RandomFractionJamming(0.25)),
            backend="vectorized",
            seed=5,
        ).run()
        assert fallback.backend == "reference"  # replayed through the slot loop
        assert fallback.summary == reference.summary
        assert fallback.prefix_successes == reference.prefix_successes

    def test_max_nodes_guard_matches_reference_message(self):
        simulator = make_simulator(
            make_factory(SlottedAloha, 0.2),
            ScheduleAdversary(arrivals={3: 100}),
            backend="vectorized",
            max_nodes=10,
        )
        with pytest.raises(ConfigurationError, match="max_nodes=10 at slot 3"):
            simulator.run()


class TestPrecompilation:
    def test_composed_adversary_precompile_matches_live_loop(self):
        horizon = 300

        def materialize(live: bool):
            adversary = ComposedAdversary(
                PoissonArrivals(0.1), RandomFractionJamming(0.3)
            )
            adversary.setup(np.random.default_rng(42), horizon)
            if live:
                arrivals = [0] + [
                    adversary.action_for_slot(s).arrivals
                    for s in range(1, horizon + 1)
                ]
                adversary2 = ComposedAdversary(
                    PoissonArrivals(0.1), RandomFractionJamming(0.3)
                )
                adversary2.setup(np.random.default_rng(42), horizon)
                jammed = [False] + [
                    adversary2.action_for_slot(s).jam for s in range(1, horizon + 1)
                ]
                return arrivals, jammed
            schedule = adversary.precompile(horizon)
            return schedule.arrivals.tolist(), schedule.jammed.tolist()

        assert materialize(live=True) == materialize(live=False)

    def test_adaptive_adversary_does_not_precompile(self):
        adversary = ComposedAdversary(BatchArrivals(4), ReactiveJamming(0.2))
        adversary.setup(np.random.default_rng(0), 50)
        assert not adversary.precompilable
        assert adversary.precompile(50) is None

    def test_schedule_adversary_precompiles(self):
        adversary = ScheduleAdversary(arrivals={2: 3, 7: 1}, jammed_slots=[4])
        schedule = adversary.precompile(10)
        assert schedule.total_arrivals == 4
        assert schedule.arrivals[2] == 3 and schedule.arrivals[7] == 1
        assert bool(schedule.jammed[4]) and not bool(schedule.jammed[5])


class TestPopulationApi:
    def test_aloha_probability_is_constant(self):
        protocol = SlottedAloha(0.25)
        protocol.on_arrival(1, np.random.default_rng(0))
        assert protocol.broadcast_probability(10) == 0.25
        vector = protocol.age_probability_vector(16)
        assert np.allclose(vector[1:], 0.25) and vector[0] == 0.0

    def test_probability_backoff_decays(self):
        protocol = ProbabilityBackoff(1.0)
        protocol.on_arrival(1, np.random.default_rng(0))
        assert protocol.broadcast_probability(1) == 1.0
        assert protocol.broadcast_probability(4) == 0.25
        vector = protocol.age_probability_vector(8)
        assert vector[8] == pytest.approx(1 / 8)

    def test_windowed_beb_reports_state_conditional_probability(self):
        protocol = WindowedBinaryExponentialBackoff(initial_window=1)
        protocol.on_arrival(5, np.random.default_rng(0))
        # window=1 forces the first attempt into the arrival slot itself
        assert protocol.broadcast_probability(5) == 1.0
        assert protocol.broadcast_probability(6) == 0.0
        assert not protocol.vector_eligible
        assert protocol.age_probability_vector(8) is None

    def test_cjz_probability_from_subroutines(self):
        protocol = cjz_factory()()
        assert protocol.broadcast_probability(1) is None  # before arrival
        protocol.on_arrival(1, np.random.default_rng(0))
        p = protocol.broadcast_probability(1)
        assert p is not None and 0.0 <= p <= 1.0
        # Off-channel slots never broadcast in Phase 1.
        assert protocol.broadcast_probability(2) == 0.0
        assert not protocol.vector_eligible

    def test_hbackoff_marginal_probability(self):
        backoff = HBackoff(lambda length: 1, np.random.default_rng(0))
        # Stage of length 1 with one planned send: certainty.
        assert backoff.marginal_probability(1) == 1.0
        # Stage of length 4 with one planned send: 1 - (3/4)^1.
        assert backoff.marginal_probability(4) == pytest.approx(0.25)
        with pytest.raises(ConfigurationError):
            backoff.marginal_probability(0)


class TestExhaustedHooks:
    def test_batch_arrivals_exhausted_after_batch_slot(self):
        strategy = BatchArrivals(4, slot=10)
        assert not strategy.exhausted(9)
        assert strategy.exhausted(10)

    def test_poisson_conservative_without_bound(self):
        strategy = PoissonArrivals(0.5)
        strategy.setup(np.random.default_rng(0), horizon=None)
        assert not strategy.exhausted(10**9)
        bounded = PoissonArrivals(0.5, last_slot=100)
        bounded.setup(np.random.default_rng(0))
        assert not bounded.exhausted(99)
        assert bounded.exhausted(100)
        zero_rate = PoissonArrivals(0.0)
        zero_rate.setup(np.random.default_rng(0))
        assert zero_rate.exhausted(1)

    def test_composed_adversary_delegates(self):
        adversary = ComposedAdversary(BatchArrivals(4, slot=5), NoJamming())
        assert not adversary.arrivals_exhausted(4)
        assert adversary.arrivals_exhausted(5)

    def test_adaptive_chaser_budget(self):
        adversary = AdaptiveSuccessChaser(total_arrival_budget=1, seed_arrivals=1)
        adversary.setup(np.random.default_rng(0))
        assert not adversary.arrivals_exhausted(1)
        adversary.action_for_slot(1)  # injects the seed node, exhausting the budget
        assert adversary.arrivals_exhausted(1)


def _reference_run(factory, adversary_factory, horizon=150, seed=5, **kwargs):
    return make_simulator(
        factory, adversary_factory(), backend="reference", horizon=horizon,
        seed=seed, **kwargs
    ).run()


class _AgeVectorlessAloha(SlottedAloha):
    """vector_eligible but without a usable age probability vector."""

    def age_probability_vector(self, max_age):
        return None


class TestReplayFallback:
    """The vectorized kernel's replay fallback is bit-identical to reference."""

    def _adversary(self):
        return ComposedAdversary(BatchArrivals(10), RandomFractionJamming(0.3))

    def test_oversized_matrix_replay_is_bit_identical(self, monkeypatch):
        reference = _reference_run(make_factory(SlottedAloha, 0.2), self._adversary)
        monkeypatch.setattr(vectorized_module, "_MAX_MATRIX_BYTES", 1)
        fallback = make_simulator(
            make_factory(SlottedAloha, 0.2),
            self._adversary(),
            backend="vectorized",
            horizon=150,
            seed=5,
        ).run()
        assert fallback.backend == "reference"
        assert fallback.summary == reference.summary
        assert fallback.prefix_active == reference.prefix_active
        assert fallback.prefix_arrivals == reference.prefix_arrivals
        assert fallback.prefix_jammed == reference.prefix_jammed
        assert fallback.prefix_successes == reference.prefix_successes
        assert fallback.node_stats == reference.node_stats

    def test_missing_age_vector_replay_is_bit_identical(self):
        factory = make_factory(_AgeVectorlessAloha, 0.2)
        reference = _reference_run(factory, self._adversary)
        # Explicit vectorized accepts the protocol (it is vector-eligible)
        # but must fall back to the replayed reference loop at run time.
        fallback = make_simulator(
            factory, self._adversary(), backend="vectorized", horizon=150, seed=5
        ).run()
        assert fallback.backend == "reference"
        assert fallback.summary == reference.summary
        assert fallback.prefix_successes == reference.prefix_successes
        assert fallback.node_stats == reference.node_stats

    def test_missing_age_vector_study_falls_back(self):
        study = run_trials(
            protocol_factory=make_factory(_AgeVectorlessAloha, 0.2),
            adversary_factory=self._adversary,
            horizon=80,
            trials=3,
            seed=2,
            backend="batched-study",
        )
        reference = run_trials(
            protocol_factory=make_factory(_AgeVectorlessAloha, 0.2),
            adversary_factory=self._adversary,
            horizon=80,
            trials=3,
            seed=2,
            backend="reference",
        )
        assert [r.backend for r in study] == ["reference"] * 3
        assert [r.summary for r in study] == [r.summary for r in reference]
        assert [r.node_stats for r in study] == [r.node_stats for r in reference]


class TestBatchedStudyBackend:
    def test_explicit_batched_rejects_adaptive_protocol(self):
        from repro.core import cjz_factory

        with pytest.raises(ConfigurationError, match="vector-eligible"):
            run_trials(
                protocol_factory=cjz_factory(),
                adversary_factory=lambda: ScheduleAdversary.single_batch(4),
                horizon=50,
                trials=2,
                seed=1,
                backend="batched-study",
            )

    def test_explicit_batched_rejects_adaptive_adversary(self):
        with pytest.raises(ConfigurationError, match="adaptive"):
            run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.2),
                adversary_factory=lambda: AdaptiveSuccessChaser(),
                horizon=50,
                trials=2,
                seed=1,
                backend="batched-study",
            )

    def test_explicit_batched_rejects_collectors(self):
        with pytest.raises(ConfigurationError, match="collectors"):
            run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.2),
                adversary_factory=lambda: ScheduleAdversary.single_batch(4),
                horizon=50,
                trials=2,
                seed=1,
                backend="batched-study",
                collectors=[SuccessTimeline()],
            )

    def test_auto_with_collectors_falls_back_and_threads_them(self):
        timeline = SuccessTimeline()
        study = run_trials(
            protocol_factory=make_factory(SlottedAloha, 1.0),
            adversary_factory=lambda: ScheduleAdversary.single_batch(1, slot=3),
            horizon=10,
            trials=2,
            seed=1,
            backend="auto",
            collectors=[timeline],
        )
        assert all(r.backend != "batched-study" for r in study)
        assert timeline.success_slots == [3]

    def test_auto_with_keep_trace_falls_back(self):
        study = run_trials(
            protocol_factory=make_factory(SlottedAloha, 0.3),
            adversary_factory=lambda: ScheduleAdversary.single_batch(3),
            horizon=40,
            trials=2,
            seed=1,
            backend="auto",
            keep_trace=True,
        )
        assert all(r.backend == "vectorized" for r in study)
        assert all(r.trace is not None for r in study)

    def test_adaptive_study_auto_uses_reference(self):
        study = run_trials(
            protocol_factory=make_factory(SlottedAloha, 0.2),
            adversary_factory=lambda: ComposedAdversary(
                BatchArrivals(4), ReactiveJamming(0.2)
            ),
            horizon=60,
            trials=2,
            seed=1,
            backend="auto",
        )
        assert all(r.backend == "reference" for r in study)

    def test_max_nodes_guard_matches_reference_message(self):
        from repro.sim import TrialRunner

        runner = TrialRunner(
            make_factory(SlottedAloha, 0.2),
            lambda: ScheduleAdversary(arrivals={3: 100}),
            SimulatorConfig(horizon=20, max_nodes=10),
            backend="batched-study",
        )
        with pytest.raises(ConfigurationError, match="max_nodes=10 at slot 3"):
            runner.run(trials=2, seed=1)

    def test_block_splitting_preserves_results(self, monkeypatch):
        def study(backend):
            return run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.3),
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(5), RandomFractionJamming(0.2)
                ),
                horizon=60,
                trials=6,
                seed=9,
                backend=backend,
            )

        reference = study("reference")
        # Force one trial per block (5 nodes x 61 slots = 305 elements).
        monkeypatch.setattr(batched_module, "_MAX_BLOCK_ELEMENTS", 400)
        batched = study("batched-study")
        assert all(r.backend == "batched-study" for r in batched)
        assert [r.summary for r in batched] == [r.summary for r in reference]
        assert [r.node_stats for r in batched] == [
            r.node_stats for r in reference
        ]

    def test_single_oversized_trial_falls_back_per_trial(self, monkeypatch):
        monkeypatch.setattr(batched_module, "_MAX_BLOCK_ELEMENTS", 100)
        study = run_trials(
            protocol_factory=make_factory(SlottedAloha, 0.3),
            adversary_factory=lambda: ScheduleAdversary.single_batch(5),
            horizon=60,
            trials=2,
            seed=3,
            backend="batched-study",
        )
        # The whole-study fast path bails; trials escalate to the per-trial
        # ladder, which still produces identical results.
        assert all(r.backend == "vectorized" for r in study)

    def test_wall_time_recorded(self):
        study = run_trials(
            protocol_factory=make_factory(SlottedAloha, 0.2),
            adversary_factory=lambda: ScheduleAdversary.single_batch(4),
            horizon=50,
            trials=3,
            seed=1,
            backend="batched-study",
        )
        assert all(r.wall_time_seconds > 0.0 for r in study)
        assert all(r.slots_per_second > 0.0 for r in study)
