"""Unit tests for the shared value types."""

import pytest

from repro.types import (
    AdversaryAction,
    ChannelParity,
    Feedback,
    NodeStats,
    SimulationSummary,
    SlotOutcome,
    SlotRecord,
)


def make_record(**overrides):
    defaults = dict(
        slot=1,
        broadcasters=(0,),
        jammed=False,
        outcome=SlotOutcome.SUCCESS,
        successful_node=0,
        active_nodes=1,
        arrivals=1,
    )
    defaults.update(overrides)
    return SlotRecord(**defaults)


class TestChannelParity:
    def test_odd_slots_are_odd_channel(self):
        assert ChannelParity.of_slot(1) is ChannelParity.ODD
        assert ChannelParity.of_slot(3) is ChannelParity.ODD
        assert ChannelParity.of_slot(101) is ChannelParity.ODD

    def test_even_slots_are_even_channel(self):
        assert ChannelParity.of_slot(2) is ChannelParity.EVEN
        assert ChannelParity.of_slot(1024) is ChannelParity.EVEN

    def test_other_swaps(self):
        assert ChannelParity.ODD.other() is ChannelParity.EVEN
        assert ChannelParity.EVEN.other() is ChannelParity.ODD

    def test_other_is_involution(self):
        for parity in ChannelParity:
            assert parity.other().other() is parity


class TestFeedback:
    def test_success_flag(self):
        assert Feedback.SUCCESS.is_success
        assert not Feedback.NO_SUCCESS.is_success
        assert not Feedback.SILENCE.is_success
        assert not Feedback.COLLISION.is_success


class TestSlotRecord:
    def test_active_when_nodes_present(self):
        assert make_record(active_nodes=3).is_active
        assert not make_record(active_nodes=0, broadcasters=(), outcome=SlotOutcome.SILENCE,
                               successful_node=None, arrivals=0).is_active

    def test_is_success(self):
        assert make_record().is_success
        assert not make_record(outcome=SlotOutcome.COLLISION, successful_node=None).is_success


class TestNodeStats:
    def test_unfinished_node_has_no_latency(self):
        stats = NodeStats(node_id=1, arrival_slot=10)
        assert not stats.finished
        assert stats.latency is None

    def test_latency_counts_inclusive_slots(self):
        stats = NodeStats(node_id=1, arrival_slot=10, success_slot=10)
        assert stats.finished
        assert stats.latency == 1
        stats = NodeStats(node_id=1, arrival_slot=10, success_slot=19)
        assert stats.latency == 10


class TestAdversaryAction:
    def test_negative_arrivals_rejected(self):
        with pytest.raises(ValueError):
            AdversaryAction(arrivals=-1)

    def test_defaults(self):
        action = AdversaryAction()
        assert action.arrivals == 0
        assert action.jam is False


class TestSimulationSummary:
    def test_record_accumulates_counters(self):
        summary = SimulationSummary()
        summary.record(make_record())
        summary.record(
            make_record(
                slot=2,
                broadcasters=(1, 2),
                outcome=SlotOutcome.COLLISION,
                successful_node=None,
                active_nodes=2,
                arrivals=0,
                jammed=True,
            )
        )
        summary.record(
            make_record(
                slot=3,
                broadcasters=(),
                outcome=SlotOutcome.SILENCE,
                successful_node=None,
                active_nodes=0,
                arrivals=0,
            )
        )
        assert summary.total_slots == 3
        assert summary.successes == 1
        assert summary.collisions == 1
        assert summary.silent_slots == 1
        assert summary.jammed_slots == 1
        assert summary.active_slots == 2
        assert summary.arrivals == 1
        assert summary.total_broadcasts == 3
