"""Unit tests for the rate-function families."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.functions import (
    RateFunction,
    STANDARD_G_FAMILIES,
    backoff_budget,
    constant_g,
    derive_f,
    exp_sqrt_log_g,
    h_ctrl,
    h_data,
    is_sub_logarithmic,
    log_g,
    polylog_g,
)


class TestRateFunction:
    def test_rejects_non_positive_argument(self):
        f = RateFunction("id", lambda x: x)
        with pytest.raises(ConfigurationError):
            f(0)
        with pytest.raises(ConfigurationError):
            f(-3)

    def test_rejects_non_positive_value(self):
        f = RateFunction("zero", lambda x: 0.0)
        with pytest.raises(ConfigurationError):
            f(10)

    def test_rejects_non_finite_value(self):
        f = RateFunction("inf", lambda x: float("inf"))
        with pytest.raises(ConfigurationError):
            f(10)

    def test_evaluates(self):
        f = RateFunction("double", lambda x: 2 * x)
        assert f(3) == 6.0


class TestGFamilies:
    def test_constant_g_value(self):
        g = constant_g(5.0)
        assert g(10) == 5.0
        assert g(1e9) == 5.0

    def test_constant_g_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            constant_g(1.0)

    def test_log_g_grows(self):
        g = log_g()
        assert g(2**20) > g(2**10)
        assert g(2**10) == pytest.approx(10.0)

    def test_log_g_floor(self):
        g = log_g(floor=3.0)
        assert g(2) == 3.0

    def test_polylog_g(self):
        g = polylog_g(2.0)
        assert g(2**10) == pytest.approx(100.0)

    def test_exp_sqrt_log_g(self):
        g = exp_sqrt_log_g(1.0)
        assert g(2**16) == pytest.approx(2.0**4)

    def test_exp_sqrt_log_g_dominates_polylog_eventually(self):
        g_exp = exp_sqrt_log_g(1.0)
        g_poly = polylog_g(2.0)
        x = 2.0**400
        assert g_exp(x) > g_poly(x)


class TestDeriveF:
    def test_constant_g_yields_logarithmic_f(self):
        g = constant_g(4.0)
        f = derive_f(g)
        # f(x) = log2(x)/log2(4)^2 = log2(x)/4
        assert f(2**20) == pytest.approx(5.0)
        assert f(2**40) == pytest.approx(10.0)

    def test_f_has_floor(self):
        f = derive_f(constant_g(4.0), floor=1.0)
        assert f(2) >= 1.0

    def test_larger_g_gives_smaller_f(self):
        x = 2.0**30
        f_small_g = derive_f(constant_g(4.0))
        f_big_g = derive_f(constant_g(256.0))
        assert f_big_g(x) < f_small_g(x)

    def test_invalid_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_f(constant_g(4.0), a=0)
        with pytest.raises(ConfigurationError):
            derive_f(constant_g(4.0), c2=-1)


class TestSendingRates:
    def test_h_ctrl_shape(self):
        h = h_ctrl(4.0)
        assert h(1) == 1.0  # capped
        assert h(1024) == pytest.approx(4.0 * 10.0 / 1024.0)

    def test_h_ctrl_is_decreasing_eventually(self):
        h = h_ctrl(4.0)
        assert h(64) > h(1024) > h(65536)

    def test_h_data_is_one_over_x(self):
        h = h_data()
        assert h(1) == 1.0
        assert h(10) == pytest.approx(0.1)

    def test_h_ctrl_requires_positive_c3(self):
        with pytest.raises(ConfigurationError):
            h_ctrl(0.0)


class TestBackoffBudget:
    def test_budget_is_at_least_one(self):
        budget = backoff_budget(derive_f(constant_g(4.0)))
        assert budget(1) >= 1
        assert budget(2) >= 1

    def test_budget_grows_with_stage_length(self):
        budget = backoff_budget(derive_f(constant_g(4.0)))
        assert budget(2**20) >= budget(2**4)

    def test_budget_rejects_invalid_stage(self):
        budget = backoff_budget(derive_f(constant_g(4.0)))
        with pytest.raises(ConfigurationError):
            budget(0)

    def test_scale_multiplies(self):
        f = derive_f(constant_g(4.0))
        small = backoff_budget(f, scale=1.0)
        large = backoff_budget(f, scale=4.0)
        assert large(2**16) >= small(2**16)


class TestSubLogarithmicCheck:
    def test_log_like_functions_pass(self):
        assert is_sub_logarithmic(RateFunction("log", lambda x: math.log2(max(x, 2))))
        assert is_sub_logarithmic(constant_g(8.0))

    def test_polynomial_function_fails(self):
        assert not is_sub_logarithmic(RateFunction("sqrt", lambda x: math.sqrt(x)))

    def test_derived_f_passes_for_standard_families(self):
        for family in STANDARD_G_FAMILIES:
            assert is_sub_logarithmic(family.f()), family.label


class TestStandardFamilies:
    def test_labels_unique(self):
        labels = [family.label for family in STANDARD_G_FAMILIES]
        assert len(labels) == len(set(labels))

    def test_each_family_produces_f(self):
        for family in STANDARD_G_FAMILIES:
            f = family.f()
            assert f(2**16) > 0
