"""Unit tests for arrival strategies, jamming strategies and composed adversaries."""

import numpy as np
import pytest

from repro.adversary import (
    AdaptiveSuccessChaser,
    BatchArrivals,
    BudgetedJamming,
    BurstyArrivals,
    ComposedAdversary,
    FrontLoadedJamming,
    LowerBoundAdversary,
    NoArrivals,
    NoJamming,
    NonAdaptiveKillerAdversary,
    PeriodicJamming,
    PoissonArrivals,
    RandomFractionJamming,
    ReactiveJamming,
    ScheduleAdversary,
    ScheduledArrivals,
    SmoothAdversary,
    UniformRandomArrivals,
)
from repro.core import AlgorithmParameters
from repro.errors import ConfigurationError
from repro.functions import constant_g
from repro.types import Feedback, SlotObservation


def setup(strategy, seed=0, horizon=1024):
    strategy.setup(np.random.default_rng(seed), horizon)
    return strategy


class TestArrivalStrategies:
    def test_no_arrivals(self):
        strategy = setup(NoArrivals())
        assert all(strategy.arrivals_for_slot(s) == 0 for s in range(1, 100))

    def test_batch_arrivals_single_slot(self):
        strategy = setup(BatchArrivals(10, slot=5))
        assert strategy.arrivals_for_slot(5) == 10
        assert strategy.arrivals_for_slot(4) == 0
        assert strategy.arrivals_for_slot(6) == 0

    def test_batch_arrivals_validation(self):
        with pytest.raises(ConfigurationError):
            BatchArrivals(-1)
        with pytest.raises(ConfigurationError):
            BatchArrivals(5, slot=0)

    def test_poisson_mean_rate(self):
        strategy = setup(PoissonArrivals(0.5), horizon=4000)
        total = sum(strategy.arrivals_for_slot(s) for s in range(1, 4001))
        assert 1600 < total < 2400

    def test_poisson_requires_setup(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.5).arrivals_for_slot(1)

    def test_poisson_stops_after_last_slot(self):
        strategy = setup(PoissonArrivals(1.0, last_slot=10), horizon=100)
        assert all(strategy.arrivals_for_slot(s) == 0 for s in range(11, 100))

    def test_uniform_random_total_conserved(self):
        strategy = setup(UniformRandomArrivals(50, (1, 200)))
        total = sum(strategy.arrivals_for_slot(s) for s in range(1, 201))
        assert total == 50

    def test_uniform_random_respects_window(self):
        strategy = setup(UniformRandomArrivals(50, (10, 20)))
        assert all(strategy.arrivals_for_slot(s) == 0 for s in range(1, 10))
        assert all(strategy.arrivals_for_slot(s) == 0 for s in range(21, 100))

    def test_bursty_total_volume(self):
        strategy = setup(BurstyArrivals(8, period=64, jitter=False), horizon=640)
        total = sum(strategy.arrivals_for_slot(s) for s in range(1, 641))
        assert total == 8 * 10

    def test_scheduled_arrivals(self):
        strategy = ScheduledArrivals({3: 2, 9: 1})
        assert strategy.arrivals_for_slot(3) == 2
        assert strategy.arrivals_for_slot(9) == 1
        assert strategy.arrivals_for_slot(4) == 0
        assert strategy.total_arrivals == 3

    def test_scheduled_arrivals_validation(self):
        with pytest.raises(ConfigurationError):
            ScheduledArrivals({0: 1})


class TestJammingStrategies:
    def test_no_jamming(self):
        strategy = setup(NoJamming())
        assert not any(strategy.jam_slot(s) for s in range(1, 200))

    def test_random_fraction_rate(self):
        strategy = setup(RandomFractionJamming(0.25))
        jams = sum(1 for s in range(1, 4001) if strategy.jam_slot(s))
        assert 800 < jams < 1200

    def test_random_fraction_zero_never_jams(self):
        strategy = RandomFractionJamming(0.0)
        assert not strategy.jam_slot(1)

    def test_random_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            RandomFractionJamming(1.0)

    def test_periodic_jamming(self):
        strategy = setup(PeriodicJamming(4))
        jams = [s for s in range(1, 17) if strategy.jam_slot(s)]
        assert jams == [4, 8, 12, 16]

    def test_front_loaded_jamming(self):
        strategy = setup(FrontLoadedJamming(10))
        assert all(strategy.jam_slot(s) for s in range(1, 11))
        assert not any(strategy.jam_slot(s) for s in range(11, 40))

    def test_budgeted_jamming_respects_budget(self):
        g = constant_g(4.0)
        strategy = BudgetedJamming(g, budget_constant=4.0)
        setup(strategy, horizon=1024)
        assert len(strategy.jammed_slots) <= 1024 // 16

    def test_budgeted_jamming_needs_horizon(self):
        strategy = BudgetedJamming(constant_g(4.0))
        with pytest.raises(ConfigurationError):
            strategy.setup(np.random.default_rng(0), None)

    def test_reactive_jams_only_after_success_and_within_budget(self):
        strategy = setup(ReactiveJamming(0.5, burst=2))
        assert not strategy.jam_slot(1)
        strategy.observe(SlotObservation(slot=1, feedback=Feedback.SUCCESS))
        jammed = [strategy.jam_slot(s) for s in range(2, 6)]
        assert sum(jammed) <= 2
        assert jammed[0] or jammed[1]

    def test_reactive_budget_cap(self):
        strategy = setup(ReactiveJamming(0.1, burst=100))
        strategy.observe(SlotObservation(slot=1, feedback=Feedback.SUCCESS))
        jams = sum(1 for s in range(1, 101) if strategy.jam_slot(s))
        assert jams <= 10


class TestComposedAdversary:
    def test_combines_arrivals_and_jamming(self):
        adversary = ComposedAdversary(BatchArrivals(5, slot=2), FrontLoadedJamming(1))
        adversary.setup(np.random.default_rng(0), 100)
        action1 = adversary.action_for_slot(1)
        action2 = adversary.action_for_slot(2)
        assert action1.jam is True and action1.arrivals == 0
        assert action2.jam is False and action2.arrivals == 5

    def test_name_combines_parts(self):
        adversary = ComposedAdversary(BatchArrivals(5), NoJamming())
        assert "batch" in adversary.name and "no-jamming" in adversary.name


class TestScheduleAdversary:
    def test_single_batch_constructor(self):
        adversary = ScheduleAdversary.single_batch(12, slot=3)
        adversary.setup(np.random.default_rng(0), 10)
        assert adversary.action_for_slot(3).arrivals == 12
        assert adversary.total_arrivals == 12

    def test_jam_schedule(self):
        adversary = ScheduleAdversary(arrivals={1: 1}, jammed_slots=[2, 4])
        adversary.setup(np.random.default_rng(0), 10)
        assert adversary.action_for_slot(2).jam
        assert not adversary.action_for_slot(3).jam

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScheduleAdversary(arrivals={0: 1})
        with pytest.raises(ConfigurationError):
            ScheduleAdversary(jammed_slots=[0])


class TestAdaptiveSuccessChaser:
    def test_reacts_to_success(self):
        adversary = AdaptiveSuccessChaser(
            jam_fraction=0.5, arrival_budget_per_success=3, jam_burst=2, seed_arrivals=1
        )
        adversary.setup(np.random.default_rng(0), 100)
        assert adversary.action_for_slot(1).arrivals == 1
        adversary.observe(SlotObservation(slot=1, feedback=Feedback.SUCCESS))
        action = adversary.action_for_slot(2)
        assert action.arrivals == 3
        assert action.jam is True

    def test_total_arrival_budget_cap(self):
        adversary = AdaptiveSuccessChaser(
            arrival_budget_per_success=10, total_arrival_budget=5, seed_arrivals=1
        )
        adversary.setup(np.random.default_rng(0), 100)
        adversary.action_for_slot(1)
        adversary.observe(SlotObservation(slot=1, feedback=Feedback.SUCCESS))
        adversary.action_for_slot(2)
        assert adversary.injected_nodes <= 5


class TestLowerBoundAdversaries:
    def test_lower_bound_jams_prefix_and_injects_one_node(self):
        adversary = LowerBoundAdversary(horizon=1024, g=constant_g(4.0))
        adversary.setup(np.random.default_rng(0), 1024)
        assert adversary.action_for_slot(1).arrivals == 1
        assert adversary.action_for_slot(1).jam
        assert adversary.action_for_slot(2).arrivals == 0
        # Front prefix is horizon / (4 * g) = 64 slots.
        assert adversary.action_for_slot(64).jam
        assert adversary.action_for_slot(1024).jam  # last slot always jammed

    def test_lower_bound_budget_bounded(self):
        adversary = LowerBoundAdversary(horizon=2048, g=constant_g(4.0))
        adversary.setup(np.random.default_rng(1), 2048)
        jams = sum(1 for s in range(1, 2049) if adversary.action_for_slot(s).jam)
        assert jams <= 2 * (2048 // 16) + 1

    def test_non_adaptive_killer_schedule(self):
        params = AlgorithmParameters.from_g(constant_g(4.0))
        adversary = NonAdaptiveKillerAdversary(
            horizon=1024, g=params.g, f=params.f
        )
        adversary.setup(np.random.default_rng(0), 1024)
        assert adversary.action_for_slot(1).arrivals == 2
        assert adversary.action_for_slot(1).jam
        last = adversary.action_for_slot(1024)
        assert last.jam and last.arrivals == adversary.late_arrivals
        assert adversary.front_jam_slots == 64

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            LowerBoundAdversary(horizon=2, g=constant_g(4.0))


class TestSmoothAdversary:
    def make(self, horizon=2048):
        params = AlgorithmParameters.from_g(constant_g(4.0))
        adversary = SmoothAdversary(horizon=horizon, f=params.f, g=params.g)
        adversary.setup(np.random.default_rng(0), horizon)
        return adversary

    def test_budgets_respected_globally(self):
        adversary = self.make()
        assert adversary.total_arrivals >= 1
        assert adversary.total_jams <= 2048 // 8

    def test_verify_smoothness(self):
        assert self.make().verify_smoothness()

    def test_suffix_counts_consistent(self):
        adversary = self.make()
        assert adversary.arrivals_in_suffix(2048) == adversary.total_arrivals
        assert adversary.jams_in_suffix(2048) == adversary.total_jams
        assert adversary.arrivals_in_suffix(16) <= adversary.total_arrivals

    def test_actions_match_schedules(self):
        adversary = self.make()
        arrivals = sum(adversary.action_for_slot(s).arrivals for s in range(1, 2049))
        assert arrivals == adversary.total_arrivals
