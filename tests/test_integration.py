"""Integration tests: end-to-end behaviour of protocols against adversaries.

These tests exercise the full stack (protocol + adversary + channel + engine +
metrics) on workloads small enough to run in seconds, asserting the behavioural
claims the experiments measure at larger scale.
"""

import pytest

from repro import quick_run
from repro.adversary import (
    AdaptiveSuccessChaser,
    BatchArrivals,
    ComposedAdversary,
    LowerBoundAdversary,
    NoJamming,
    PoissonArrivals,
    RandomFractionJamming,
    SmoothAdversary,
)
from repro.core import AlgorithmParameters, GlobalClockVariant, cjz_factory
from repro.functions import constant_g, exp_sqrt_log_g
from repro.metrics import check_fg_throughput, summarize_energy, summarize_latencies
from repro.protocols import (
    ProbabilityBackoff,
    WindowedBinaryExponentialBackoff,
    make_factory,
)
from repro.protocols.base import make_factory as base_make_factory
from repro.sim import run_trials


PARAMS = AlgorithmParameters.from_g(constant_g(4.0))


class TestQuickRun:
    def test_quick_run_delivers_batch(self):
        result = quick_run(arrivals=32, horizon=4096, seed=1)
        assert result.total_successes == 32
        assert result.unfinished_nodes == 0

    def test_quick_run_with_jamming_still_delivers(self):
        result = quick_run(arrivals=32, horizon=4096, jam_fraction=0.25, seed=2)
        assert result.total_successes == 32

    def test_quick_run_keep_trace(self):
        result = quick_run(arrivals=4, horizon=256, seed=3, keep_trace=True)
        assert result.trace is not None
        assert result.trace.successes_count() == 4


class TestCJZBehaviour:
    def test_batch_fg_throughput_holds(self):
        study = run_trials(
            protocol_factory=cjz_factory(PARAMS),
            adversary_factory=lambda: ComposedAdversary(
                BatchArrivals(48), RandomFractionJamming(0.25)
            ),
            horizon=4096,
            trials=3,
            seed=5,
        )
        for result in study:
            report = check_fg_throughput(
                result, PARAMS.f, PARAMS.g, slack=8.0, min_prefix=64, additive_grace=128.0
            )
            assert report.satisfied, f"worst ratio {report.worst_ratio}"

    def test_dynamic_poisson_arrivals_all_delivered(self):
        study = run_trials(
            protocol_factory=cjz_factory(PARAMS),
            adversary_factory=lambda: ComposedAdversary(
                PoissonArrivals(0.02, last_slot=2048), NoJamming()
            ),
            horizon=4096,
            trials=2,
            seed=6,
        )
        assert study.mean(lambda r: r.unfinished_nodes) <= 1.0

    def test_adaptive_adversary_does_not_break_the_protocol(self):
        study = run_trials(
            protocol_factory=cjz_factory(PARAMS),
            adversary_factory=lambda: AdaptiveSuccessChaser(
                jam_fraction=0.2,
                arrival_budget_per_success=1,
                total_arrival_budget=48,
                seed_arrivals=8,
            ),
            horizon=4096,
            trials=2,
            seed=7,
        )
        assert study.mean(lambda r: r.unfinished_nodes) <= 2.0

    def test_exp_sqrt_log_parameterization_also_works(self):
        params = AlgorithmParameters.from_g(exp_sqrt_log_g())
        study = run_trials(
            protocol_factory=cjz_factory(params),
            adversary_factory=lambda: ComposedAdversary(BatchArrivals(32), NoJamming()),
            horizon=4096,
            trials=2,
            seed=8,
        )
        assert study.mean(lambda r: r.unfinished_nodes) == 0.0

    def test_global_clock_variant_drains_batch(self):
        study = run_trials(
            protocol_factory=base_make_factory(GlobalClockVariant, PARAMS),
            adversary_factory=lambda: ComposedAdversary(BatchArrivals(24), NoJamming()),
            horizon=4096,
            trials=2,
            seed=9,
        )
        assert study.mean(lambda r: r.unfinished_nodes) == 0.0

    def test_energy_is_far_below_active_time(self):
        study = run_trials(
            protocol_factory=cjz_factory(PARAMS),
            adversary_factory=lambda: ComposedAdversary(BatchArrivals(64), NoJamming()),
            horizon=8192,
            trials=1,
            seed=10,
        )
        result = study.results[0]
        energy = summarize_energy([result])
        latency = summarize_latencies([result])
        assert energy.mean < latency.maximum

    def test_lone_node_succeeds_immediately(self):
        result = quick_run(arrivals=1, horizon=64, seed=11)
        assert result.node_stats[0].success_slot == 1


class TestPaperLevelComparisons:
    def test_cjz_beats_beb_on_active_slots_under_jamming(self):
        """The headline qualitative comparison: under constant-fraction jamming the
        paper's algorithm wastes far fewer active slots than windowed BEB."""
        def adversary():
            return ComposedAdversary(BatchArrivals(64), RandomFractionJamming(0.25))

        cjz = run_trials(cjz_factory(PARAMS), adversary, horizon=8192, trials=2, seed=13)
        beb = run_trials(
            make_factory(WindowedBinaryExponentialBackoff),
            adversary,
            horizon=8192,
            trials=2,
            seed=13,
        )
        assert cjz.mean(lambda r: r.unfinished_nodes) == 0.0
        assert (
            cjz.mean(lambda r: r.total_active_slots)
            < 0.7 * beb.mean(lambda r: r.total_active_slots)
        )

    def test_probability_backoff_lags_under_front_jamming(self):
        """A lone 1/i node starved by the Lemma 4.1 adversary takes longer than CJZ."""
        horizon = 4096

        def adversary():
            return LowerBoundAdversary(horizon=horizon, g=constant_g(4.0), initial_nodes=1)

        cjz = run_trials(cjz_factory(PARAMS), adversary, horizon=horizon, trials=4, seed=17)
        prob = run_trials(
            make_factory(ProbabilityBackoff, 1.0), adversary, horizon=horizon, trials=4, seed=17
        )
        cjz_latency = summarize_latencies(list(cjz)).mean
        prob_latency = summarize_latencies(list(prob)).mean
        assert cjz_latency < prob_latency

    def test_smooth_adversary_clears_old_nodes(self):
        horizon = 4096
        params = PARAMS

        def adversary():
            return SmoothAdversary(horizon=horizon, f=params.f, g=params.g)

        study = run_trials(cjz_factory(params), adversary, horizon=horizon, trials=2, seed=19)
        for result in study:
            for stats in result.node_stats.values():
                if stats.arrival_slot < horizon // 2:
                    assert stats.finished, (
                        f"node arrived at {stats.arrival_slot} not cleared by {horizon}"
                    )
