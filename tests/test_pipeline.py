"""Unit tests for columnar prefix counters and the metric pipeline."""

import numpy as np
import pytest

from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    NoJamming,
    RandomFractionJamming,
)
from repro.core import AlgorithmParameters
from repro.errors import AnalysisError, ConfigurationError, SpecError
from repro.functions import constant_g
from repro.metrics import (
    EnergyReducer,
    FGThroughputReducer,
    LatencyReducer,
    MetricPipeline,
    ScalarSummaryReducer,
    SuccessTimeline,
    SuccessTimelineReducer,
    WindowedRateReducer,
    WindowedSuccessCounter,
    summarize_energy,
    summarize_latencies,
)
from repro.protocols import SlottedAloha, make_factory
from repro.sim import (
    PrefixColumn,
    PrefixCounters,
    SimulationResult,
    Simulator,
    SimulatorConfig,
    run_trials,
)
from repro.spec import METRIC_REDUCERS, PipelineSpec, StudySpec
from repro.types import SimulationSummary


def aloha_factory(p=0.15):
    return make_factory(SlottedAloha, p)


def jammed_batch(n=6, fraction=0.25):
    return lambda: ComposedAdversary(BatchArrivals(n), RandomFractionJamming(fraction))


def small_study(backend="auto", **kwargs):
    return run_trials(
        protocol_factory=aloha_factory(),
        adversary_factory=jammed_batch(),
        horizon=192,
        trials=6,
        seed=11,
        backend=backend,
        **kwargs,
    )


class TestPrefixCounters:
    def make(self):
        return PrefixCounters.from_lists(
            active=[0, 1, 2, 3],
            arrivals=[0, 2, 2, 2],
            jammed=[0, 0, 1, 1],
            successes=[0, 0, 1, 2],
        )

    def test_columns_are_int64(self):
        counters = self.make()
        for name in ("active", "arrivals", "jammed", "successes"):
            assert counters.column(name).dtype == np.int64

    def test_length_and_slots(self):
        counters = self.make()
        assert len(counters) == 4
        assert counters.slots == 3

    def test_nbytes(self):
        assert self.make().nbytes == 4 * 4 * 8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            PrefixCounters.from_lists([0, 1], [0], [0, 1], [0, 1])

    def test_unknown_column_rejected(self):
        with pytest.raises(AnalysisError):
            self.make().column("latency")

    def test_int64_input_is_zero_copy(self):
        column = np.arange(5, dtype=np.int64)
        counters = PrefixCounters(
            active=column, arrivals=column, jammed=column, successes=column
        )
        assert counters.active is column

    def test_equality_compares_columns(self):
        assert self.make() == self.make()
        other = PrefixCounters.from_lists(
            [0, 1, 2, 3], [0, 2, 2, 2], [0, 0, 1, 1], [0, 1, 1, 2]
        )
        assert self.make() != other
        assert self.make() != object()

    def test_success_slots(self):
        assert self.make().success_slots().tolist() == [2, 3]

    def test_windowed_successes(self):
        # Per-slot successes are [0, 1, 1] (slots 1..3).
        counters = self.make()
        assert counters.windowed_successes(2).tolist() == [1, 1]
        assert counters.windowed_successes(3).tolist() == [2]
        with pytest.raises(AnalysisError):
            counters.windowed_successes(0)


class TestPrefixColumn:
    def make(self):
        return PrefixColumn(np.asarray([0, 1, 1, 3], dtype=np.int64))

    def test_indexing_returns_python_ints(self):
        column = self.make()
        assert column[0] == 0 and isinstance(column[0], int)
        assert column[-1] == 3

    def test_slicing_and_iteration(self):
        column = self.make()
        assert list(column[1:]) == [1, 1, 3]
        assert all(b >= a for a, b in zip(column, column[1:]))

    def test_equality_with_lists_and_views(self):
        column = self.make()
        assert column == [0, 1, 1, 3]
        assert column == self.make()
        assert column != [0, 1, 1, 4]
        assert (column == object()) is False or True  # NotImplemented path

    def test_numpy_interop(self):
        assert np.asarray(self.make()).sum() == 5


class TestSimulationResultSurface:
    def run_once(self, **config_kwargs):
        return Simulator(
            protocol_factory=aloha_factory(),
            adversary=jammed_batch()(),
            config=SimulatorConfig(horizon=128, **config_kwargs),
            seed=3,
        ).run()

    def test_prefix_accessors_are_views(self):
        result = self.run_once()
        assert isinstance(result.prefix_active, PrefixColumn)
        assert len(result.prefix_active) == result.horizon + 1
        assert result.prefix_successes[-1] == result.total_successes

    def test_release_counters(self):
        result = self.run_once()
        assert result.memory_bytes() > 0
        released = result.release_counters()
        assert released > 0
        assert result.memory_bytes() == 0
        assert result.release_counters() == 0
        with pytest.raises(AnalysisError):
            result.prefix_active
        # Summary surface survives the release.
        assert result.total_successes == result.summary.successes
        assert result.describe()
        assert result.classical_throughput() == result.classical_throughput(
            result.horizon
        )

    def test_released_classical_throughput_rejects_interior_slots(self):
        result = self.run_once()
        result.release_counters()
        with pytest.raises(AnalysisError):
            result.classical_throughput(result.horizon // 2)

    def test_slots_per_second_uses_resolved_slots(self):
        # An early-exit run resolved 10 slots of a 1000-slot horizon; the
        # throughput figure must divide by 10, not 1000.
        summary = SimulationSummary(total_slots=10, successes=1, arrivals=1)
        result = SimulationResult(
            summary=summary,
            node_stats={},
            counters=None,
            horizon=1000,
            wall_time_seconds=2.0,
        )
        assert result.slots_per_second == pytest.approx(5.0)
        result.wall_time_seconds = 0.0
        assert result.slots_per_second == 0.0


class TestReducers:
    def study_results(self):
        return list(small_study(backend="reference"))

    def test_success_timeline_matches_collector(self):
        timeline = SuccessTimeline()
        result = Simulator(
            protocol_factory=aloha_factory(),
            adversary=jammed_batch()(),
            config=SimulatorConfig(horizon=192),
            collectors=[timeline],
            seed=7,
        ).run()
        reducer = SuccessTimelineReducer()
        reducer.reduce(result.counters, result)
        assert reducer.timelines[0] == timeline.success_slots
        assert reducer.first_success_slots()[0] == timeline.first_success()

    def test_windowed_rate_matches_collector(self):
        counter = WindowedSuccessCounter(window=17)
        result = Simulator(
            protocol_factory=aloha_factory(),
            adversary=jammed_batch()(),
            config=SimulatorConfig(horizon=192),
            collectors=[counter],
            seed=7,
        ).run()
        reducer = WindowedRateReducer(window=17)
        reducer.reduce(result.counters, result)
        assert reducer.counts[0] == counter.counts
        assert reducer.rates(0) == counter.rates()

    def test_latency_and_energy_match_summaries(self):
        results = self.study_results()
        latency = LatencyReducer()
        energy = EnergyReducer()
        for result in results:
            latency.reduce(result.counters, result)
            energy.reduce(result.counters, result)
        assert latency.value() == summarize_latencies(results)
        assert energy.value() == summarize_energy(results)

    def test_scalar_reducer_summary(self):
        results = self.study_results()
        reducer = ScalarSummaryReducer("successes")
        for result in results:
            reducer.reduce(result.counters, result)
        values = [float(r.total_successes) for r in results]
        summary = reducer.value()
        assert summary["trials"] == len(values)
        assert summary["mean"] == pytest.approx(np.mean(values))
        assert summary["max"] == max(values)

    def test_scalar_reducer_rejects_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            ScalarSummaryReducer("vibes")

    def test_fg_reducer_matches_per_trial_checks(self):
        from repro.metrics import FGThroughputChecker

        g = constant_g(4.0)
        f = AlgorithmParameters.from_g(g).f
        results = self.study_results()
        checker = FGThroughputChecker(f, g, slack=8.0, min_prefix=32, additive_grace=64.0)
        reports = [checker.check(r) for r in results]
        reducer = FGThroughputReducer(f, g, slack=8.0, min_prefix=32, additive_grace=64.0)
        for result in results:
            reducer.reduce(result.counters, result)
        verdict = reducer.value()
        assert verdict["trials"] == len(reports)
        assert verdict["satisfied"] == sum(1 for r in reports if r.satisfied)
        assert verdict["violations"] == sum(r.violations for r in reports)
        assert verdict["worst_ratio"] == max(r.worst_ratio for r in reports)

    def test_merge_is_ordered_concatenation(self):
        results = self.study_results()
        serial = SuccessTimelineReducer()
        for result in results:
            serial.reduce(result.counters, result)
        left, right = SuccessTimelineReducer(), SuccessTimelineReducer()
        for result in results[:2]:
            left.reduce(result.counters, result)
        for result in results[2:]:
            right.reduce(result.counters, result)
        left.merge(right)
        assert left.timelines == serial.timelines

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(AnalysisError):
            WindowedRateReducer(8).merge(WindowedRateReducer(16))
        with pytest.raises(AnalysisError):
            ScalarSummaryReducer("successes").merge(ScalarSummaryReducer("arrivals"))

    def test_reducers_need_counters(self):
        result = self.study_results()[0]
        result.release_counters()
        with pytest.raises(AnalysisError):
            SuccessTimelineReducer().reduce(result.counters, result)


class TestMetricPipeline:
    def make(self):
        return MetricPipeline(
            [SuccessTimelineReducer(), ScalarSummaryReducer("successes")]
        )

    def test_requires_reducers(self):
        with pytest.raises(ConfigurationError):
            MetricPipeline([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            MetricPipeline([LatencyReducer(), LatencyReducer()])

    def test_update_and_finalize(self):
        pipeline = self.make()
        study = small_study(backend="reference")
        for result in study:
            pipeline.update(result)
        values = pipeline.finalize()
        assert pipeline.trials == study.trials
        assert set(values) == {"success-timeline", "scalar:successes"}
        # finalize is pure: calling it again returns the same values.
        assert pipeline.finalize() == values

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            self.make().merge(MetricPipeline([LatencyReducer()]))

    def test_getitem(self):
        pipeline = self.make()
        assert isinstance(pipeline["success-timeline"], SuccessTimelineReducer)
        with pytest.raises(KeyError):
            pipeline["nope"]


class TestRunnerIntegration:
    def pipeline(self):
        return MetricPipeline(
            [
                SuccessTimelineReducer(),
                WindowedRateReducer(32),
                ScalarSummaryReducer("successes"),
            ]
        )

    def test_pipeline_runs_on_batched_study_backend(self):
        study = small_study(backend="batched-study", pipeline=self.pipeline())
        assert all(r.backend == "batched-study" for r in study)
        assert study.metrics() is not None
        assert study.pipeline.trials == study.trials

    def test_pipeline_values_identical_across_backends(self):
        values = {
            backend: small_study(backend=backend, pipeline=self.pipeline()).metrics()
            for backend in ("reference", "vectorized", "batched-study")
        }
        assert values["reference"] == values["vectorized"] == values["batched-study"]

    def test_streaming_releases_columns(self):
        study = small_study(pipeline=self.pipeline(), streaming=True)
        assert study.memory_bytes() == 0
        assert all(r.counters is None for r in study)
        # Metrics were reduced before the columns were dropped.
        assert study.metrics() == small_study(pipeline=self.pipeline()).metrics()
        # Summary-level aggregation still works on streamed results.
        assert study.mean(lambda r: r.total_successes) >= 0.0

    def test_streaming_without_pipeline(self):
        study = small_study(streaming=True)
        assert study.memory_bytes() == 0
        assert study.metrics() is None

    def test_streaming_conflicts_with_keep_trace(self):
        with pytest.raises(ConfigurationError):
            run_trials(
                protocol_factory=aloha_factory(),
                adversary_factory=jammed_batch(),
                horizon=64,
                trials=2,
                keep_trace=True,
                streaming=True,
            )

    def test_pipeline_type_validated(self):
        with pytest.raises(ConfigurationError):
            small_study(pipeline=object())

    def test_study_without_pipeline_has_no_metrics(self):
        assert small_study().metrics() is None

    def test_consecutive_runs_get_independent_pipelines(self):
        from repro.sim import SimulatorConfig, TrialRunner

        template = self.pipeline()
        runner = TrialRunner(
            aloha_factory(),
            jammed_batch(),
            SimulatorConfig(horizon=96),
            pipeline=template,
        )
        first = runner.run(trials=3, seed=1)
        first_metrics = first.metrics()
        second = runner.run(trials=5, seed=2)
        # The first study's metrics must not be overwritten by the later run.
        assert first.pipeline is not second.pipeline
        assert first.metrics() == first_metrics
        assert first.pipeline.trials == 3
        assert second.pipeline.trials == 5
        # The template the caller handed in stays untouched.
        assert template.trials == 0


class TestPipelineSpec:
    def spec(self):
        return PipelineSpec(
            reducers=(
                {"kind": "success-timeline"},
                {"kind": "windowed-rate", "params": {"window": 24}},
                {"kind": "scalar", "params": {"metric": "successes"}},
            )
        )

    def test_json_round_trip(self):
        spec = self.spec()
        assert PipelineSpec.from_json(spec.to_json()) == spec
        assert hash(PipelineSpec.from_json(spec.to_json())) == hash(spec)

    def test_build_and_reserialize(self):
        spec = self.spec()
        pipeline = spec.build()
        assert pipeline.to_spec() == spec

    def test_fg_reducer_round_trips_through_rate_specs(self):
        g = constant_g(4.0)
        f = AlgorithmParameters.from_g(g).f
        spec = PipelineSpec.of(
            FGThroughputReducer(f, g, slack=8.0, min_prefix=48, additive_grace=32.0)
        )
        rebuilt = PipelineSpec.from_json(spec.to_json()).build()
        reducer = rebuilt.reducers[0]
        assert reducer.slack == 8.0
        assert reducer.min_prefix == 48
        assert reducer.g.name == g.name

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            PipelineSpec(reducers=({"kind": "telepathy"},))

    def test_unknown_params_rejected(self):
        with pytest.raises(SpecError):
            PipelineSpec(reducers=({"kind": "latency", "params": {"bogus": 1}},))

    def test_missing_required_param_rejected(self):
        with pytest.raises(SpecError):
            PipelineSpec(reducers=({"kind": "windowed-rate"},))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(SpecError):
            PipelineSpec(reducers=())

    def test_registry_lists_all_kinds(self):
        assert set(METRIC_REDUCERS.kinds()) == {
            "success-timeline",
            "windowed-rate",
            "fg-throughput",
            "latency",
            "energy",
            "scalar",
        }


class TestStudySpecIntegration:
    def test_pipeline_and_streaming_round_trip(self):
        spec = StudySpec(
            horizon=256,
            trials=3,
            pipeline=PipelineSpec(reducers=({"kind": "energy"},)),
            streaming=True,
        )
        rebuilt = StudySpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.pipeline == spec.pipeline

    def test_pipeline_and_streaming_are_hash_neutral(self):
        base = StudySpec(horizon=256, trials=3)
        augmented = StudySpec(
            horizon=256,
            trials=3,
            pipeline=PipelineSpec(reducers=({"kind": "latency"},)),
            streaming=True,
        )
        assert base.spec_hash() == augmented.spec_hash()

    def test_streaming_keep_trace_conflict(self):
        with pytest.raises(SpecError):
            StudySpec(streaming=True, keep_trace=True)

    def test_run_executes_pipeline(self):
        spec = StudySpec(
            horizon=256,
            trials=3,
            pipeline=PipelineSpec(reducers=({"kind": "latency"},)),
            streaming=True,
        )
        study = spec.run()
        assert study.metrics() is not None
        assert study.memory_bytes() == 0

    def test_pipeline_runs_skip_store(self, tmp_path):
        from repro.spec import StudyStore

        store = StudyStore(tmp_path)
        spec = StudySpec(
            horizon=128,
            trials=2,
            pipeline=PipelineSpec(reducers=({"kind": "latency"},)),
        )
        spec.run(store=store)
        assert store.entries() == []
        # Streaming-only runs still cache (the summary surface is intact).
        plain = StudySpec(horizon=128, trials=2, streaming=True)
        plain.run(store=store)
        assert store.entries() == [plain.spec_hash()]


class TestCollectorFix:
    def test_successes_before_uses_sorted_order(self):
        timeline = SuccessTimeline()
        timeline.success_slots = [2, 5, 5, 9]
        assert timeline.successes_before(1) == 0
        assert timeline.successes_before(5) == 3
        assert timeline.successes_before(100) == 4
