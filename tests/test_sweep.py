"""Tests for the sweep engine and the content-addressed study store."""

import json

import numpy as np
import pytest

from repro.errors import SpecError
from repro.spec import (
    AdversarySpec,
    ProtocolSpec,
    StudyPlan,
    StudySpec,
    StudyStore,
    Sweep,
    sweep_rows,
)

SEED = 11


def aloha_spec(horizon=1024, trials=2) -> StudySpec:
    return StudySpec(
        protocol=ProtocolSpec(kind="slotted-aloha", params={"probability": 0.05}),
        adversary=AdversarySpec.batch(16, jam_fraction=0.25),
        horizon=horizon,
        trials=trials,
        seed=SEED,
        label="aloha-base",
    )


class TestSpecHash:
    def test_stable_across_processes_inputs(self):
        assert aloha_spec().spec_hash() == aloha_spec().spec_hash()

    def test_semantic_change_changes_hash(self):
        base = aloha_spec()
        assert base.spec_hash() != base.with_overrides({"horizon": 2048}).spec_hash()
        assert base.spec_hash() != base.with_overrides({"seed": 12}).spec_hash()
        assert (
            base.spec_hash()
            != base.with_overrides(
                {"adversary.jamming.params.fraction": 0.5}
            ).spec_hash()
        )

    def test_execution_placement_is_hash_neutral(self):
        base = aloha_spec()
        assert base.spec_hash() == base.with_execution(backend="reference").spec_hash()
        assert base.spec_hash() == base.with_execution(workers=4).spec_hash()
        assert base.spec_hash() == base.with_overrides({"label": "other"}).spec_hash()


class TestSweepExpansion:
    def test_cartesian_product_row_major(self):
        sweep = Sweep(
            aloha_spec(),
            {"horizon": [256, 512], "adversary.jamming.params.fraction": [0.1, 0.2]},
        )
        assert sweep.size == 4
        specs = sweep.expand()
        assert [s.horizon for s in specs] == [256, 256, 512, 512]
        fractions = [s.adversary.jamming.params["fraction"] for s in specs]
        assert fractions == [0.1, 0.2, 0.1, 0.2]

    def test_point_labels_name_the_overrides(self):
        sweep = Sweep(aloha_spec(), {"adversary.jamming.params.fraction": [0.1]})
        (spec,) = sweep.expand()
        assert "fraction=0.1" in spec.label
        assert spec.label.startswith("aloha-base")

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError):
            Sweep(aloha_spec(), {"horizon": []})

    def test_no_axes_is_single_point(self):
        assert Sweep(aloha_spec(), {}).expand() == [
            aloha_spec().with_overrides({"label": "aloha-base"})
        ]


class TestStudyStore:
    def test_miss_then_hit(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        assert store.get(spec) is None
        study = spec.run(store=store)
        assert not study.from_cache
        cached = spec.run(store=store)
        assert cached.from_cache
        assert cached.summary_row() == study.summary_row()

    def test_cached_study_preserves_per_trial_metrics(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256, trials=3)
        live = spec.run(store=store)
        cached = spec.run(store=store)
        assert [r.total_successes for r in cached] == [
            r.total_successes for r in live
        ]
        assert [sorted(r.latencies()) for r in cached] == [
            sorted(r.latencies()) for r in live
        ]
        assert [sorted(r.broadcast_counts()) for r in cached] == [
            sorted(r.broadcast_counts()) for r in live
        ]
        np.testing.assert_allclose(
            cached.metric(lambda r: r.mean_latency()),
            live.metric(lambda r: r.mean_latency()),
        )

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        path = store.put(spec, spec.run())
        path.write_text("{not json")
        assert store.get(spec) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        path = store.put(spec, spec.run())
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        assert store.get(spec) is None

    def test_cached_result_refuses_prefix_throughput(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        spec.run(store=store)
        cached = store.get(spec).results[0]
        assert cached.classical_throughput() == cached.classical_throughput(256)
        with pytest.raises(SpecError):
            cached.classical_throughput(100)

    def test_entries_lists_hashes(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        spec.run(store=store)
        assert store.entries() == [spec.spec_hash()]


class TestStudyPlan:
    def test_twelve_point_grid_on_batched_study_backend(self, tmp_path):
        """The acceptance grid: >= 12 points, batched-study, low dispatch cost."""
        sweep = Sweep(
            aloha_spec(horizon=4096, trials=3),
            {
                "adversary.jamming.params.fraction": [0.05, 0.15, 0.25, 0.35],
                "adversary.arrivals.params.count": [16, 32, 64],
            },
        )
        assert sweep.size == 12
        store = StudyStore(tmp_path)
        results = StudyPlan.from_sweep(sweep).run(store=store)
        assert len(results) == 12
        # Every point went through the batched study kernel.
        for point in results:
            assert not point.cached
            assert {r.backend for r in point.study} == {"batched-study"}
        # Dispatch (expansion + hashing + cache lookup + publish) stays well
        # under 10% of simulation time.
        dispatch = sum(r.dispatch_seconds for r in results)
        runtime = sum(r.run_seconds for r in results)
        assert dispatch < 0.10 * runtime

        # Second pass: all twelve points served from the store, with
        # identical aggregates.
        rerun = StudyPlan.from_sweep(sweep).run(store=store)
        assert all(point.cached for point in rerun)
        for cold, warm in zip(results, rerun):
            assert cold.study.summary_row() == warm.study.summary_row()

    def test_progress_callback_sees_every_point(self):
        seen = []
        sweep = Sweep(aloha_spec(horizon=128), {"horizon": [128, 256]})
        StudyPlan.from_sweep(sweep).run(progress=seen.append)
        assert [p.spec.horizon for p in seen] == [128, 256]

    def test_rows_carry_overrides_and_aggregates(self):
        sweep = Sweep(aloha_spec(horizon=128), {"trials": [1, 2]})
        rows = sweep_rows(StudyPlan.from_sweep(sweep).run())
        assert [row["trials"] for row in rows] == [1.0, 2.0]
        for row in rows:
            assert "mean_successes" in row and "hash" in row and "cached" in row

    def test_empty_plan_rejected(self):
        with pytest.raises(SpecError):
            StudyPlan([])


class TestSweepCli:
    def test_cli_sweep_json_and_cache(self, tmp_path, capsys):
        from repro.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(aloha_spec(horizon=256).to_json())
        args = [
            "sweep",
            "--spec",
            str(spec_file),
            "--axis",
            "adversary.jamming.params.fraction=0.1,0.3",
            "--store",
            str(tmp_path / "store"),
            "--format",
            "json",
        ]
        assert main(args) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert all(not row["cached"] for row in rows)
        assert main(args) == 0
        rerun = json.loads(capsys.readouterr().out)
        assert all(row["cached"] for row in rerun)
        for cold, warm in zip(rows, rerun):
            assert cold["mean_successes"] == warm["mean_successes"]

    def test_cli_sweep_scenario_base(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--scenario",
                "adversarial-jam",
                "--axis",
                "horizon=256",
                "--trials",
                "1",
                "--no-store",
                "--format",
                "csv",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("label,")
        assert "adversarial-jam" in out

    def test_cli_bad_axis_reports_error(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--scenario", "adversarial-jam", "--axis", "oops"])
        assert code == 2
        assert "invalid --axis" in capsys.readouterr().err

    def test_cli_scenarios_json(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        keys = {entry["key"] for entry in payload}
        assert "ethernet-burst" in keys
        for entry in payload:
            StudySpec.from_dict(entry["study"])

    def test_cli_simulate_scenario(self, capsys):
        from repro.cli import main

        code = main(
            ["simulate", "--scenario", "ethernet-burst", "--horizon", "256", "--seed", "3"]
        )
        assert code == 0
        assert "ethernet-burst" in capsys.readouterr().out


class TestStoreQuarantine:
    def test_corrupt_entry_quarantined_with_warning(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        path = store.put(spec, spec.run())
        path.write_text('{"schema": 1, "results": [{"succ')  # truncated JSON
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(spec) is None
        # The evidence moved to <root>/corrupt/, not deleted.
        assert not path.exists()
        assert store.corrupt_entries() == [path.name]
        # Quarantined entries never pollute the hash listing.
        assert store.entries() == []

    def test_quarantined_point_reruns_and_heals(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        live = spec.run(store=store)
        store.path_for(spec).write_text("{torn")
        with pytest.warns(RuntimeWarning):
            healed = spec.run(store=store)
        assert not healed.from_cache
        timing = ("mean_wall_time_s", "mean_slots_per_s")
        assert {
            k: v for k, v in healed.summary_row().items() if k not in timing
        } == {k: v for k, v in live.summary_row().items() if k not in timing}
        # The store is whole again: next read is a clean cache hit.
        assert store.get(spec) is not None

    def test_store_corrupt_fault_truncates_entry(self, tmp_path):
        from repro import faults

        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        with faults.injected({"rules": [{"site": "store-corrupt"}]}):
            path = store.put(spec, spec.run())
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.get(spec) is None


class TestResumableSweep:
    def _plan(self):
        return StudyPlan.from_sweep(
            Sweep(aloha_spec(horizon=128), {"trials": [1, 2, 3]})
        )

    def test_on_error_skip_records_failed_points(self, tmp_path):
        from repro import faults

        with faults.injected({"rules": [{"site": "sweep-point", "point": 1}]}):
            results = self._plan().run(
                store=StudyStore(tmp_path), on_error="skip"
            )
        assert [r.failed for r in results] == [False, True, False]
        assert results[1].study is None
        assert "FaultInjected" in results[1].error
        assert results[1].attempts == 1

    def test_on_error_retry_reattempts_before_skipping(self, tmp_path):
        from repro import faults

        # attempt 0 fails, attempt 1 succeeds (the rule pins attempt=0).
        with faults.injected(
            {"rules": [{"site": "sweep-point", "point": 1, "attempt": 0}]}
        ):
            results = self._plan().run(
                store=StudyStore(tmp_path), on_error="retry", retries=1
            )
        assert not any(r.failed for r in results)
        assert results[1].attempts == 2

    def test_on_error_raise_propagates(self):
        from repro import faults
        from repro.errors import FaultInjected

        with faults.injected({"rules": [{"site": "sweep-point", "point": 0}]}):
            with pytest.raises(FaultInjected):
                self._plan().run()

    def test_invalid_on_error_rejected(self):
        with pytest.raises(SpecError, match="on_error"):
            self._plan().run(on_error="explode")

    def test_resume_requires_journal(self):
        with pytest.raises(SpecError, match="journal"):
            self._plan().run(resume=True)

    def test_journal_records_outcomes(self, tmp_path):
        from repro import faults
        from repro.spec import PlanJournal

        journal = PlanJournal(tmp_path / "journal.jsonl")
        with faults.injected({"rules": [{"site": "sweep-point", "point": 2}]}):
            self._plan().run(
                store=StudyStore(tmp_path / "store"),
                on_error="skip",
                journal=journal,
            )
        state = journal.load()
        statuses = sorted(record["status"] for record in state.values())
        assert statuses == ["done", "done", "failed"]

    def test_resume_skips_done_and_reattempts_failed(self, tmp_path):
        from repro import faults
        from repro.spec import PlanJournal

        store = StudyStore(tmp_path / "store")
        journal = PlanJournal(tmp_path / "journal.jsonl")
        with faults.injected({"rules": [{"site": "sweep-point", "point": 1}]}):
            first = self._plan().run(
                store=store, on_error="skip", journal=journal
            )
        assert first[1].failed
        # No faults now: the resumed run serves done points from the store
        # (attempts == 0) and re-runs only the failed one.
        second = self._plan().run(store=store, journal=journal, resume=True)
        assert not any(r.failed for r in second)
        assert [r.attempts for r in second] == [0, 1, 0]
        assert [r.cached for r in second] == [True, False, True]
        assert all(
            record["status"] == "done" for record in journal.load().values()
        )

    def test_journal_tolerates_torn_trailing_line(self, tmp_path):
        from repro.spec import PlanJournal

        journal = PlanJournal(tmp_path / "journal.jsonl")
        journal.append({"hash": "abc", "status": "done"})
        with journal.path.open("a") as handle:
            handle.write('{"hash": "def", "sta')  # writer died mid-append
        assert list(journal.load()) == ["abc"]

    def test_failed_rows_stay_rectangular(self, tmp_path):
        from repro import faults

        with faults.injected({"rules": [{"site": "sweep-point", "point": 0}]}):
            results = self._plan().run(
                store=StudyStore(tmp_path), on_error="skip"
            )
        rows = sweep_rows(results)
        assert all(set(rows[0]) == set(row) for row in rows)
        assert rows[0]["status"] == "failed"
        assert rows[1]["status"] == "ok"
        assert rows[1]["error"] == ""
        assert rows[0]["mean_successes"] == ""
