"""Tests for the sweep engine and the content-addressed study store."""

import json

import numpy as np
import pytest

from repro.errors import SpecError
from repro.spec import (
    AdversarySpec,
    ProtocolSpec,
    StudyPlan,
    StudySpec,
    StudyStore,
    Sweep,
    sweep_rows,
)

SEED = 11


def aloha_spec(horizon=1024, trials=2) -> StudySpec:
    return StudySpec(
        protocol=ProtocolSpec(kind="slotted-aloha", params={"probability": 0.05}),
        adversary=AdversarySpec.batch(16, jam_fraction=0.25),
        horizon=horizon,
        trials=trials,
        seed=SEED,
        label="aloha-base",
    )


class TestSpecHash:
    def test_stable_across_processes_inputs(self):
        assert aloha_spec().spec_hash() == aloha_spec().spec_hash()

    def test_semantic_change_changes_hash(self):
        base = aloha_spec()
        assert base.spec_hash() != base.with_overrides({"horizon": 2048}).spec_hash()
        assert base.spec_hash() != base.with_overrides({"seed": 12}).spec_hash()
        assert (
            base.spec_hash()
            != base.with_overrides(
                {"adversary.jamming.params.fraction": 0.5}
            ).spec_hash()
        )

    def test_execution_placement_is_hash_neutral(self):
        base = aloha_spec()
        assert base.spec_hash() == base.with_execution(backend="reference").spec_hash()
        assert base.spec_hash() == base.with_execution(workers=4).spec_hash()
        assert base.spec_hash() == base.with_overrides({"label": "other"}).spec_hash()


class TestSweepExpansion:
    def test_cartesian_product_row_major(self):
        sweep = Sweep(
            aloha_spec(),
            {"horizon": [256, 512], "adversary.jamming.params.fraction": [0.1, 0.2]},
        )
        assert sweep.size == 4
        specs = sweep.expand()
        assert [s.horizon for s in specs] == [256, 256, 512, 512]
        fractions = [s.adversary.jamming.params["fraction"] for s in specs]
        assert fractions == [0.1, 0.2, 0.1, 0.2]

    def test_point_labels_name_the_overrides(self):
        sweep = Sweep(aloha_spec(), {"adversary.jamming.params.fraction": [0.1]})
        (spec,) = sweep.expand()
        assert "fraction=0.1" in spec.label
        assert spec.label.startswith("aloha-base")

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError):
            Sweep(aloha_spec(), {"horizon": []})

    def test_no_axes_is_single_point(self):
        assert Sweep(aloha_spec(), {}).expand() == [
            aloha_spec().with_overrides({"label": "aloha-base"})
        ]


class TestStudyStore:
    def test_miss_then_hit(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        assert store.get(spec) is None
        study = spec.run(store=store)
        assert not study.from_cache
        cached = spec.run(store=store)
        assert cached.from_cache
        assert cached.summary_row() == study.summary_row()

    def test_cached_study_preserves_per_trial_metrics(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256, trials=3)
        live = spec.run(store=store)
        cached = spec.run(store=store)
        assert [r.total_successes for r in cached] == [
            r.total_successes for r in live
        ]
        assert [sorted(r.latencies()) for r in cached] == [
            sorted(r.latencies()) for r in live
        ]
        assert [sorted(r.broadcast_counts()) for r in cached] == [
            sorted(r.broadcast_counts()) for r in live
        ]
        np.testing.assert_allclose(
            cached.metric(lambda r: r.mean_latency()),
            live.metric(lambda r: r.mean_latency()),
        )

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        path = store.put(spec, spec.run())
        path.write_text("{not json")
        assert store.get(spec) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        path = store.put(spec, spec.run())
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        assert store.get(spec) is None

    def test_cached_result_refuses_prefix_throughput(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        spec.run(store=store)
        cached = store.get(spec).results[0]
        assert cached.classical_throughput() == cached.classical_throughput(256)
        with pytest.raises(SpecError):
            cached.classical_throughput(100)

    def test_entries_lists_hashes(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec(horizon=256)
        spec.run(store=store)
        assert store.entries() == [spec.spec_hash()]


class TestStudyPlan:
    def test_twelve_point_grid_on_batched_study_backend(self, tmp_path):
        """The acceptance grid: >= 12 points, batched-study, low dispatch cost."""
        sweep = Sweep(
            aloha_spec(horizon=4096, trials=3),
            {
                "adversary.jamming.params.fraction": [0.05, 0.15, 0.25, 0.35],
                "adversary.arrivals.params.count": [16, 32, 64],
            },
        )
        assert sweep.size == 12
        store = StudyStore(tmp_path)
        results = StudyPlan.from_sweep(sweep).run(store=store)
        assert len(results) == 12
        # Every point went through the batched study kernel.
        for point in results:
            assert not point.cached
            assert {r.backend for r in point.study} == {"batched-study"}
        # Dispatch (expansion + hashing + cache lookup + publish) stays well
        # under 10% of simulation time.
        dispatch = sum(r.dispatch_seconds for r in results)
        runtime = sum(r.run_seconds for r in results)
        assert dispatch < 0.10 * runtime

        # Second pass: all twelve points served from the store, with
        # identical aggregates.
        rerun = StudyPlan.from_sweep(sweep).run(store=store)
        assert all(point.cached for point in rerun)
        for cold, warm in zip(results, rerun):
            assert cold.study.summary_row() == warm.study.summary_row()

    def test_progress_callback_sees_every_point(self):
        seen = []
        sweep = Sweep(aloha_spec(horizon=128), {"horizon": [128, 256]})
        StudyPlan.from_sweep(sweep).run(progress=seen.append)
        assert [p.spec.horizon for p in seen] == [128, 256]

    def test_rows_carry_overrides_and_aggregates(self):
        sweep = Sweep(aloha_spec(horizon=128), {"trials": [1, 2]})
        rows = sweep_rows(StudyPlan.from_sweep(sweep).run())
        assert [row["trials"] for row in rows] == [1.0, 2.0]
        for row in rows:
            assert "mean_successes" in row and "hash" in row and "cached" in row

    def test_empty_plan_rejected(self):
        with pytest.raises(SpecError):
            StudyPlan([])


class TestSweepCli:
    def test_cli_sweep_json_and_cache(self, tmp_path, capsys):
        from repro.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(aloha_spec(horizon=256).to_json())
        args = [
            "sweep",
            "--spec",
            str(spec_file),
            "--axis",
            "adversary.jamming.params.fraction=0.1,0.3",
            "--store",
            str(tmp_path / "store"),
            "--format",
            "json",
        ]
        assert main(args) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert all(not row["cached"] for row in rows)
        assert main(args) == 0
        rerun = json.loads(capsys.readouterr().out)
        assert all(row["cached"] for row in rerun)
        for cold, warm in zip(rows, rerun):
            assert cold["mean_successes"] == warm["mean_successes"]

    def test_cli_sweep_scenario_base(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--scenario",
                "adversarial-jam",
                "--axis",
                "horizon=256",
                "--trials",
                "1",
                "--no-store",
                "--format",
                "csv",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("label,")
        assert "adversarial-jam" in out

    def test_cli_bad_axis_reports_error(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--scenario", "adversarial-jam", "--axis", "oops"])
        assert code == 2
        assert "invalid --axis" in capsys.readouterr().err

    def test_cli_scenarios_json(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        keys = {entry["key"] for entry in payload}
        assert "ethernet-burst" in keys
        for entry in payload:
            StudySpec.from_dict(entry["study"])

    def test_cli_simulate_scenario(self, capsys):
        from repro.cli import main

        code = main(
            ["simulate", "--scenario", "ethernet-burst", "--horizon", "256", "--seed", "3"]
        )
        assert code == 0
        assert "ethernet-burst" in capsys.readouterr().out
