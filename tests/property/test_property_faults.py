"""Property tests: injected faults never change results, only wall-clock.

The resilience contract of the supervised worker pool: for any workload and
seed, a parallel study that loses a worker (crash), loses a shared-memory
attach, or loses the shm export entirely produces results — and merged
pipeline metrics — bit-identical to the serial run.  Faults are injected
through deterministic :class:`repro.faults.FaultPlan` rules, so every
counterexample hypothesis finds is replayable.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    RandomFractionJamming,
)
from repro.metrics import (
    MetricPipeline,
    ScalarSummaryReducer,
    SuccessTimelineReducer,
)
from repro.protocols import ProbabilityBackoff, SlottedAloha, make_factory
from repro.sim import run_trials

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not HAS_FORK, reason="supervised pool requires the fork start method"
)

factories = st.sampled_from(
    [
        ("aloha", make_factory(SlottedAloha, 0.2)),
        ("prob-backoff", make_factory(ProbabilityBackoff, 1.0)),
    ]
)


@st.composite
def studies(draw):
    return (
        draw(factories),
        draw(st.integers(min_value=4, max_value=20)),  # arrivals
        draw(st.floats(min_value=0.0, max_value=0.4)),  # jam fraction
        draw(st.integers(min_value=60, max_value=150)),  # horizon
        draw(st.integers(min_value=5, max_value=10)),  # trials
        draw(st.integers(min_value=0, max_value=2**16)),  # seed
        draw(st.integers(min_value=0, max_value=3)),  # crashed shard
    )


def _run(factory, arrivals, jam, horizon, trials, seed, **kwargs):
    return run_trials(
        protocol_factory=factory,
        adversary_factory=lambda: ComposedAdversary(
            BatchArrivals(arrivals), RandomFractionJamming(jam)
        ),
        horizon=horizon,
        trials=trials,
        seed=seed,
        pipeline=MetricPipeline(
            [SuccessTimelineReducer(), ScalarSummaryReducer("successes")]
        ),
        **kwargs,
    )


def _assert_identical(serial, parallel):
    assert [r.summary for r in parallel.results] == [
        r.summary for r in serial.results
    ]
    serial_metrics = serial.metrics()
    parallel_metrics = parallel.metrics()
    assert serial_metrics.keys() == parallel_metrics.keys()
    for key in serial_metrics:
        assert parallel_metrics[key] == serial_metrics[key]


@settings(max_examples=8, deadline=None)
@given(studies())
def test_killed_worker_with_retry_is_bit_identical_to_serial(study):
    (_, factory), arrivals, jam, horizon, trials, seed, shard = study
    serial = _run(factory, arrivals, jam, horizon, trials, seed)
    with faults.injected(
        {"rules": [{"site": "worker-crash", "shard": shard, "attempt": 0}]}
    ):
        parallel = _run(
            factory, arrivals, jam, horizon, trials, seed, workers=4
        )
    _assert_identical(serial, parallel)
    assert parallel.health.retries == 1
    assert parallel.health.shard_failures == 1


@settings(max_examples=6, deadline=None)
@given(studies())
def test_shm_attach_failure_is_bit_identical_to_serial(study):
    (_, factory), arrivals, jam, horizon, trials, seed, shard = study
    serial = _run(factory, arrivals, jam, horizon, trials, seed)
    with faults.injected(
        {"rules": [{"site": "shm-attach", "shard": shard, "attempt": 0}]}
    ):
        parallel = _run(
            factory, arrivals, jam, horizon, trials, seed, workers=4
        )
    _assert_identical(serial, parallel)
    assert parallel.health.retries == 1


@settings(max_examples=6, deadline=None)
@given(studies())
def test_shm_export_fallback_is_bit_identical_to_serial(study):
    (_, factory), arrivals, jam, horizon, trials, seed, _ = study
    serial = _run(factory, arrivals, jam, horizon, trials, seed)
    with faults.injected({"rules": [{"site": "shm-export"}]}):
        parallel = _run(
            factory, arrivals, jam, horizon, trials, seed, workers=4
        )
    _assert_identical(serial, parallel)
    # The worker recovers on its own; no shard is ever re-dispatched.
    assert parallel.health.retries == 0
