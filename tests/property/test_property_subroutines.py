"""Property-based tests for the h-backoff / h-batch subroutines and the protocol."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AlgorithmParameters, ChenJiangZhengProtocol, Phase
from repro.core.subroutines import HBackoff, HBatch
from repro.functions import constant_g
from repro.types import Feedback


class TestHBackoffProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           budget=st.integers(min_value=1, max_value=8))
    def test_sends_per_stage_never_exceed_budget(self, seed, budget):
        backoff = HBackoff(lambda length: budget, np.random.default_rng(seed))
        for stage in range(0, 8):
            start, end = 2**stage, 2 ** (stage + 1)
            sends = sum(1 for i in range(start, end) if backoff.should_send(i))
            assert 0 < sends <= min(budget, end - start)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_total_sends_logarithmic_for_cjz_budget(self, seed):
        params = AlgorithmParameters.from_g(constant_g(4.0))
        backoff = HBackoff(params.backoff_budget, np.random.default_rng(seed))
        horizon = 2**12
        sends = sum(1 for i in range(1, horizon + 1) if backoff.should_send(i))
        # 13 stages, each sending at most ceil(f(stage)) <= 4 times at this scale.
        assert sends <= 13 * 4


class TestHBatchProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           index=st.integers(min_value=1, max_value=2**20))
    def test_probability_matches_rate_capped(self, seed, index):
        batch = HBatch(lambda x: 3.0 / x, np.random.default_rng(seed))
        assert batch.probability(index) == min(1.0, 3.0 / index)


class TestProtocolStateMachineProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        arrival=st.integers(min_value=1, max_value=200),
        events=st.lists(
            st.tuples(st.integers(min_value=1, max_value=50), st.booleans()),
            max_size=20,
        ),
    )
    def test_phase_never_regresses_and_decisions_are_boolean(self, seed, arrival, events):
        """Feed an arbitrary feedback sequence; the phase order 1 -> 2 -> 3 is monotone."""
        protocol = ChenJiangZhengProtocol(AlgorithmParameters.from_g(constant_g(4.0)))
        protocol.on_arrival(arrival, np.random.default_rng(seed))
        slot = arrival
        seen_order = [protocol.phase.value]
        for gap, success in events:
            slot += gap
            decision = protocol.wants_to_broadcast(slot)
            assert isinstance(decision, bool)
            feedback = Feedback.SUCCESS if success else Feedback.NO_SUCCESS
            protocol.on_feedback(slot, feedback, broadcast=decision, success_was_own=False)
            seen_order.append(protocol.phase.value)
        assert all(b >= a for a, b in zip(seen_order, seen_order[1:]))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           arrival=st.integers(min_value=1, max_value=200))
    def test_phase1_broadcasts_only_on_arrival_parity(self, seed, arrival):
        protocol = ChenJiangZhengProtocol(AlgorithmParameters.from_g(constant_g(4.0)))
        protocol.on_arrival(arrival, np.random.default_rng(seed))
        for slot in range(arrival, arrival + 40):
            decision = protocol.wants_to_broadcast(slot)
            if (slot - arrival) % 2 == 1:
                assert decision is False
        assert protocol.phase is Phase.SYNCHRONIZE

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           success_slot=st.integers(min_value=2, max_value=400))
    def test_phase3_channels_are_disjoint(self, seed, success_slot):
        """After reaching Phase 3 the control and data views never both claim a slot."""
        protocol = ChenJiangZhengProtocol(AlgorithmParameters.from_g(constant_g(4.0)))
        protocol.on_arrival(1, np.random.default_rng(seed))
        protocol.on_feedback(success_slot, Feedback.SUCCESS, False, False)
        control_success = success_slot + 1 + (success_slot % 2)
        # Deliver a success on the Phase-2 control channel to enter Phase 3.
        protocol.on_feedback(control_success, Feedback.SUCCESS, False, False)
        if protocol.phase is Phase.BATCH:
            ctrl, data = protocol._ctrl_view, protocol._data_view
            for slot in range(control_success + 1, control_success + 60):
                assert not (ctrl.contains(slot) and data.contains(slot))
