"""Property-based tests for the channel substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import MultipleAccessChannel, NoCollisionDetection, VirtualChannelView, WithCollisionDetection
from repro.types import Feedback, SlotOutcome

node_ids = st.lists(st.integers(min_value=0, max_value=10_000), max_size=20)


class TestChannelProperties:
    @given(broadcasters=node_ids, jammed=st.booleans())
    def test_success_iff_single_sender_and_not_jammed(self, broadcasters, jammed):
        channel = MultipleAccessChannel()
        outcome, winner, feedback = channel.resolve(broadcasters, jammed=jammed)
        if len(broadcasters) == 1 and not jammed:
            assert outcome is SlotOutcome.SUCCESS
            assert winner == broadcasters[0]
            assert feedback is Feedback.SUCCESS
        else:
            assert outcome is not SlotOutcome.SUCCESS
            assert winner is None
            assert feedback is not Feedback.SUCCESS

    @given(broadcasters=node_ids, jammed=st.booleans())
    def test_no_cd_feedback_is_binary(self, broadcasters, jammed):
        channel = MultipleAccessChannel(NoCollisionDetection())
        _, _, feedback = channel.resolve(broadcasters, jammed=jammed)
        assert feedback in (Feedback.SUCCESS, Feedback.NO_SUCCESS)

    @given(broadcasters=node_ids, jammed=st.booleans())
    def test_cd_feedback_matches_outcome(self, broadcasters, jammed):
        channel = MultipleAccessChannel(WithCollisionDetection())
        outcome, _, feedback = channel.resolve(broadcasters, jammed=jammed)
        mapping = {
            SlotOutcome.SUCCESS: Feedback.SUCCESS,
            SlotOutcome.SILENCE: Feedback.SILENCE,
            SlotOutcome.COLLISION: Feedback.COLLISION,
        }
        assert feedback is mapping[outcome]

    @given(slots=st.lists(st.tuples(node_ids, st.booleans()), max_size=30))
    def test_counters_are_consistent(self, slots):
        channel = MultipleAccessChannel()
        for broadcasters, jammed in slots:
            channel.resolve(broadcasters, jammed=jammed)
        assert channel.slots_resolved == len(slots)
        assert channel.successes <= channel.slots_resolved
        assert channel.jammed_slots == sum(1 for _, jammed in slots if jammed)


class TestVirtualChannelProperties:
    @given(anchor=st.integers(min_value=1, max_value=10_000), same=st.booleans(),
           offset=st.integers(min_value=0, max_value=2_000))
    def test_local_index_round_trip(self, anchor, same, offset):
        view = VirtualChannelView(anchor_slot=anchor, same_parity=same)
        slot = view.first_slot() + 2 * offset
        assert view.contains(slot)
        assert view.local_index(slot) == offset + 1

    @given(anchor=st.integers(min_value=1, max_value=10_000), same=st.booleans(),
           slot=st.integers(min_value=1, max_value=30_000))
    def test_channel_partition(self, anchor, same, slot):
        """Every slot at or after the first slot belongs to exactly one of the two channels."""
        view = VirtualChannelView(anchor_slot=anchor, same_parity=same)
        other = view.opposite()
        if slot >= anchor + 1:
            assert view.contains(slot) != other.contains(slot)

    @given(anchor=st.integers(min_value=1, max_value=10_000), same=st.booleans())
    def test_opposite_is_involution(self, anchor, same):
        view = VirtualChannelView(anchor_slot=anchor, same_parity=same)
        assert view.opposite().opposite() == view
