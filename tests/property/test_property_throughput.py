"""Property-based tests for the (f, g)-throughput checker and smooth adversary."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import ScheduleAdversary, SmoothAdversary
from repro.core import AlgorithmParameters
from repro.functions import RateFunction, constant_g
from repro.metrics import FGThroughputChecker
from repro.protocols import SlottedAloha, make_factory
from repro.sim import Simulator, SimulatorConfig


class TestCheckerProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        arrivals=st.dictionaries(
            st.integers(min_value=1, max_value=40),
            st.integers(min_value=1, max_value=3),
            max_size=5,
        ),
        jams=st.sets(st.integers(min_value=1, max_value=40), max_size=10),
        seed=st.integers(min_value=0, max_value=2**16),
        slack=st.floats(min_value=1.0, max_value=8.0),
    )
    def test_larger_slack_never_flips_satisfied_to_violated(self, arrivals, jams, seed, slack):
        result = Simulator(
            protocol_factory=make_factory(SlottedAloha, 0.3),
            adversary=ScheduleAdversary(arrivals=arrivals, jammed_slots=jams),
            config=SimulatorConfig(horizon=60),
            seed=seed,
        ).run()
        f = RateFunction("f", lambda x: 2.0)
        g = RateFunction("g", lambda x: 2.0)
        tight = FGThroughputChecker(f, g, slack=slack, min_prefix=4).check(result)
        loose = FGThroughputChecker(f, g, slack=slack * 2, min_prefix=4).check(result)
        assert loose.violations <= tight.violations
        assert loose.worst_ratio <= tight.worst_ratio + 1e-9
        if tight.satisfied:
            assert loose.satisfied

    @settings(max_examples=20, deadline=None)
    @given(
        arrivals=st.dictionaries(
            st.integers(min_value=1, max_value=40),
            st.integers(min_value=1, max_value=3),
            max_size=5,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_bound_with_huge_f_is_always_satisfied(self, arrivals, seed):
        """If f exceeds the horizon, n_t·f(t) dominates every possible active count
        as soon as one node has arrived — the checker must report satisfaction."""
        horizon = 60
        result = Simulator(
            protocol_factory=make_factory(SlottedAloha, 0.3),
            adversary=ScheduleAdversary(arrivals=arrivals, jammed_slots=()),
            config=SimulatorConfig(horizon=horizon),
            seed=seed,
        ).run()
        f = RateFunction("huge", lambda x: float(horizon + 1))
        g = RateFunction("g", lambda x: 1.0)
        first_arrival = min(arrivals) if arrivals else horizon
        checker = FGThroughputChecker(f, g, slack=1.0, min_prefix=1, additive_grace=first_arrival)
        assert checker.check(result).satisfied


class TestSmoothAdversaryProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        horizon=st.integers(min_value=256, max_value=8192),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_generated_schedules_are_always_smooth(self, horizon, seed):
        params = AlgorithmParameters.from_g(constant_g(4.0))
        adversary = SmoothAdversary(horizon=horizon, f=params.f, g=params.g)
        adversary.setup(np.random.default_rng(seed), horizon)
        assert adversary.verify_smoothness()
        # Budgets: the global totals respect the construction constants.
        assert adversary.total_jams <= horizon / (8.0 * params.g(float(horizon))) + 1
        assert adversary.total_arrivals >= 1
