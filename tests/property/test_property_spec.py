"""Property tests: spec serialization is lossless and execution-neutral.

For any randomly drawn study configuration, the JSON round trip preserves
the spec exactly, the spec hash keys only semantic fields, and running
``from_json(to_json(spec))`` is seed-for-seed identical to handing the
spec-built factories to :func:`repro.sim.run_trials` directly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import run_trials
from repro.spec import AdversarySpec, ProtocolSpec, StudySpec

protocol_specs = st.one_of(
    st.builds(
        lambda p: ProtocolSpec(kind="slotted-aloha", params={"probability": p}),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    ),
    st.builds(
        lambda s: ProtocolSpec(kind="probability-backoff", params={"scale": s}),
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    ),
    st.builds(
        lambda w: ProtocolSpec(
            kind="binary-exponential-backoff", params={"initial_window": w}
        ),
        st.integers(min_value=1, max_value=8),
    ),
)

adversary_specs = st.one_of(
    st.builds(
        lambda count, fraction: AdversarySpec.batch(count, jam_fraction=fraction),
        st.integers(min_value=1, max_value=24),
        st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
    ),
    st.builds(
        lambda total, fraction: AdversarySpec.spread(
            total, end=96, jam_fraction=fraction
        ),
        st.integers(min_value=1, max_value=24),
        st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
    ),
    st.builds(
        lambda rate, period: AdversarySpec.composed(
            "poisson", "periodic", {"rate": rate}, {"period": period}
        ),
        st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
        st.integers(min_value=2, max_value=16),
    ),
)

study_specs = st.builds(
    lambda protocol, adversary, horizon, trials, seed: StudySpec(
        protocol=protocol,
        adversary=adversary,
        horizon=horizon,
        trials=trials,
        seed=seed,
    ),
    protocol_specs,
    adversary_specs,
    st.integers(min_value=32, max_value=256),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=2**31),
)


@settings(max_examples=25, deadline=None)
@given(study_specs)
def test_json_round_trip_is_lossless(spec):
    assert StudySpec.from_json(spec.to_json()) == spec
    assert StudySpec.from_json(spec.to_json()).spec_hash() == spec.spec_hash()


@settings(max_examples=10, deadline=None)
@given(study_specs)
def test_round_tripped_spec_runs_seed_identical_to_callable_path(spec):
    via_spec = StudySpec.from_json(spec.to_json()).run()
    via_callables = run_trials(
        protocol_factory=spec.protocol.build(),
        adversary_factory=spec.adversary.factory(spec.horizon),
        horizon=spec.horizon,
        trials=spec.trials,
        seed=spec.seed,
    )
    for a, b in zip(via_spec, via_callables):
        assert a.total_successes == b.total_successes
        assert a.total_arrivals == b.total_arrivals
        assert a.prefix_active == b.prefix_active
        assert a.prefix_jammed == b.prefix_jammed


@settings(max_examples=25, deadline=None)
@given(study_specs, st.sampled_from(["reference", "auto"]), st.integers(1, 4))
def test_hash_ignores_execution_placement(spec, backend, workers):
    moved = spec.with_execution(backend=backend, workers=workers)
    assert moved.spec_hash() == spec.spec_hash()
