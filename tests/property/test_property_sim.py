"""Property-based tests for simulator invariants.

These run full (small) simulations with randomly drawn workloads and check
structural invariants that must hold for *any* protocol and adversary:
conservation of arrivals, monotone prefix counters, the success/active-slot
accounting of the throughput definition, and determinism under a fixed seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import ScheduleAdversary
from repro.core import cjz_factory
from repro.protocols import ProbabilityBackoff, SlottedAloha, make_factory
from repro.sim import Simulator, SimulatorConfig

protocol_factories = st.sampled_from(
    [
        ("cjz", cjz_factory()),
        ("prob-backoff", make_factory(ProbabilityBackoff, 1.0)),
        ("aloha", make_factory(SlottedAloha, 0.2)),
    ]
)

arrival_schedules = st.dictionaries(
    keys=st.integers(min_value=1, max_value=60),
    values=st.integers(min_value=1, max_value=4),
    max_size=6,
)

jam_sets = st.sets(st.integers(min_value=1, max_value=60), max_size=15)


@st.composite
def workloads(draw):
    return (
        draw(arrival_schedules),
        draw(jam_sets),
        draw(st.integers(min_value=60, max_value=120)),
        draw(st.integers(min_value=0, max_value=2**16)),
    )


def run(protocol_factory, arrivals, jams, horizon, seed):
    simulator = Simulator(
        protocol_factory=protocol_factory,
        adversary=ScheduleAdversary(arrivals=arrivals, jammed_slots=jams),
        config=SimulatorConfig(horizon=horizon),
        seed=seed,
    )
    return simulator.run()


class TestSimulationInvariants:
    @settings(max_examples=25, deadline=None)
    @given(named_factory=protocol_factories, workload=workloads())
    def test_conservation_and_monotonicity(self, named_factory, workload):
        _, factory = named_factory
        arrivals, jams, horizon, seed = workload
        result = run(factory, arrivals, jams, horizon, seed)

        total_arrivals = sum(arrivals.values())
        # Conservation: every arrival either succeeded or is still unfinished.
        assert result.total_successes + result.unfinished_nodes == total_arrivals
        # Successes never exceed arrivals; every success slot is active.
        assert result.total_successes <= total_arrivals
        assert result.total_successes <= result.total_active_slots or total_arrivals == 0
        # Jammed slots recorded exactly as scheduled (within the horizon).
        assert result.total_jammed_slots == len([s for s in jams if s <= horizon])
        # Prefix arrays are monotone and end at the totals.
        for arr, total in (
            (result.prefix_active, result.total_active_slots),
            (result.prefix_arrivals, result.total_arrivals),
            (result.prefix_jammed, result.total_jammed_slots),
            (result.prefix_successes, result.total_successes),
        ):
            assert len(arr) == result.horizon + 1
            assert all(b >= a for a, b in zip(arr, arr[1:]))
            assert arr[-1] == total

    @settings(max_examples=25, deadline=None)
    @given(named_factory=protocol_factories, workload=workloads())
    def test_per_node_stats_consistent(self, named_factory, workload):
        _, factory = named_factory
        arrivals, jams, horizon, seed = workload
        result = run(factory, arrivals, jams, horizon, seed)
        for stats in result.node_stats.values():
            assert 1 <= stats.arrival_slot <= horizon
            if stats.finished:
                assert stats.arrival_slot <= stats.success_slot <= horizon
                assert stats.latency >= 1
            assert stats.broadcast_count >= 0
        # No two nodes succeed in the same slot.
        success_slots = [
            s.success_slot for s in result.node_stats.values() if s.finished
        ]
        assert len(success_slots) == len(set(success_slots))

    @settings(max_examples=10, deadline=None)
    @given(workload=workloads())
    def test_determinism_under_fixed_seed(self, workload):
        arrivals, jams, horizon, seed = workload
        first = run(cjz_factory(), arrivals, jams, horizon, seed)
        second = run(cjz_factory(), arrivals, jams, horizon, seed)
        assert first.prefix_successes == second.prefix_successes
        assert first.summary.total_broadcasts == second.summary.total_broadcasts

    @settings(max_examples=10, deadline=None)
    @given(workload=workloads())
    def test_jamming_only_reduces_successes_for_oblivious_protocols(self, workload):
        """With an oblivious non-adaptive protocol and the same seed, adding jamming
        never increases the number of successful slots."""
        arrivals, jams, horizon, seed = workload
        factory = make_factory(SlottedAloha, 0.2)
        with_jam = run(factory, arrivals, jams, horizon, seed)
        without_jam = run(factory, arrivals, set(), horizon, seed)
        # Not a strict slot-by-slot domination (node populations diverge after
        # the first divergent success), so compare the first prefix where the
        # executions are still coupled: up to the first jammed slot.
        first_jam = min([s for s in jams if s <= horizon], default=None)
        if first_jam is not None:
            assert (
                with_jam.prefix_successes[first_jam]
                <= without_jam.prefix_successes[first_jam]
            )
