"""Property tests: the lockstep study kernel is seed-for-seed identical to reference.

For every protocol implementing the columnar lockstep program (the paper's
CJZ algorithm, its global-clock ablation, windowed binary-exponential,
sawtooth and polynomial backoff), any workload — batch / spread / bursty
arrivals under no / random / reactive jamming, plus the fully adaptive
success chaser — and any seed, a ``backend="lockstep"`` study must reproduce
the serial reference study exactly: identical summaries, prefix arrays,
per-node statistics and early-stop slots, and the same holds for
``workers=4`` shard merges.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    AdaptiveSuccessChaser,
    BatchArrivals,
    BurstyArrivals,
    ComposedAdversary,
    NoJamming,
    RandomFractionJamming,
    ReactiveJamming,
    UniformRandomArrivals,
)
from repro.core import cjz_factory
from repro.protocols import (
    PolynomialBackoff,
    SawtoothBackoff,
    WindowedBinaryExponentialBackoff,
    make_factory,
)
from repro.sim import run_trials

lockstep_factories = st.sampled_from(
    [
        ("cjz", cjz_factory()),
        ("cjz-global-clock", cjz_factory(global_clock=True)),
        ("wbeb", make_factory(WindowedBinaryExponentialBackoff, 2)),
        ("sawtooth", make_factory(SawtoothBackoff, 4)),
        ("polynomial", make_factory(PolynomialBackoff, 2.0, 2)),
    ]
)


@st.composite
def adversary_builders(draw):
    """A named adversary factory covering the arrival × jamming grid."""
    count = draw(st.integers(min_value=1, max_value=10))
    arrivals_kind = draw(st.sampled_from(["batch", "spread", "bursty"]))
    jamming_kind = draw(st.sampled_from(["none", "random", "reactive"]))
    adaptive_chaser = draw(st.booleans())
    if adaptive_chaser:
        budget = draw(st.one_of(st.none(), st.integers(8, 24)))
        return (
            "chaser",
            lambda: AdaptiveSuccessChaser(
                jam_fraction=0.2,
                arrival_budget_per_success=2,
                total_arrival_budget=budget,
                jam_burst=4,
                seed_arrivals=2,
            ),
        )

    def build():
        if arrivals_kind == "batch":
            arrivals = BatchArrivals(count)
        elif arrivals_kind == "spread":
            arrivals = UniformRandomArrivals(count + 4, (1, 80))
        else:
            arrivals = BurstyArrivals(count, 30)
        if jamming_kind == "none":
            jamming = NoJamming()
        elif jamming_kind == "random":
            jamming = RandomFractionJamming(0.25)
        else:
            jamming = ReactiveJamming(0.2, burst=5)
        return ComposedAdversary(arrivals, jamming)

    return (f"{arrivals_kind}+{jamming_kind}", build)


def assert_studies_identical(reference_study, lockstep_study):
    assert len(reference_study) == len(lockstep_study)
    for reference, lockstep in zip(reference_study, lockstep_study):
        assert reference.summary == lockstep.summary
        assert reference.horizon == lockstep.horizon
        assert reference.prefix_active == lockstep.prefix_active
        assert reference.prefix_arrivals == lockstep.prefix_arrivals
        assert reference.prefix_jammed == lockstep.prefix_jammed
        assert reference.prefix_successes == lockstep.prefix_successes
        assert reference.node_stats == lockstep.node_stats


class TestLockstepEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        named_factory=lockstep_factories,
        named_adversary=adversary_builders(),
        horizon=st.integers(min_value=60, max_value=160),
        trials=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_studies_identical(
        self, named_factory, named_adversary, horizon, trials, seed
    ):
        _, factory = named_factory
        _, adversary_factory = named_adversary

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=adversary_factory,
                horizon=horizon,
                trials=trials,
                seed=seed,
                backend=backend,
            )

        reference, lockstep = study("reference"), study("lockstep")
        assert all(r.backend == "reference" for r in reference)
        assert all(r.backend == "lockstep" for r in lockstep)
        assert_studies_identical(reference, lockstep)

    @settings(max_examples=10, deadline=None)
    @given(
        named_factory=lockstep_factories,
        named_adversary=adversary_builders(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_stop_when_drained_identical(
        self, named_factory, named_adversary, seed
    ):
        _, factory = named_factory
        _, adversary_factory = named_adversary

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=adversary_factory,
                horizon=300,
                trials=3,
                seed=seed,
                backend=backend,
                stop_when_drained=True,
            )

        assert_studies_identical(study("reference"), study("lockstep"))

    @settings(max_examples=8, deadline=None)
    @given(
        named_adversary=adversary_builders(),
        seed=st.integers(min_value=0, max_value=2**16),
        trials=st.integers(min_value=4, max_value=7),
    )
    def test_workers_shard_merge_identical(self, named_adversary, seed, trials):
        """workers=4 lockstep shards merge back seed-for-seed with serial."""
        _, adversary_factory = named_adversary

        def study(workers, backend):
            return run_trials(
                protocol_factory=cjz_factory(),
                adversary_factory=adversary_factory,
                horizon=120,
                trials=trials,
                seed=seed,
                backend=backend,
                workers=workers,
            )

        serial_reference = study(1, "reference")
        parallel_lockstep = study(4, "lockstep")
        assert parallel_lockstep.effective_workers == 4
        assert_studies_identical(serial_reference, parallel_lockstep)

    @settings(max_examples=8, deadline=None)
    @given(
        named_factory=lockstep_factories,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_auto_selects_lockstep_for_feedback_protocols(
        self, named_factory, seed
    ):
        """``auto`` escalates feedback-driven protocols to the lockstep tier."""
        _, factory = named_factory

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(12), RandomFractionJamming(0.3)
                ),
                horizon=140,
                trials=3,
                seed=seed,
                backend=backend,
            )

        auto = study("auto")
        # The compiled tier serves the same rung when it can run (numba or
        # the pure-python interpreter); both names are the lockstep tier.
        assert all(r.backend in ("lockstep", "lockstep-jit") for r in auto)
        assert_studies_identical(study("reference"), auto)
