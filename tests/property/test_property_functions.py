"""Property-based tests for the rate-function families and derived budgets."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core import AlgorithmParameters
from repro.functions import constant_g, derive_f, exp_sqrt_log_g, h_ctrl, h_data, log_g

positive_x = st.floats(min_value=2.0, max_value=1e12, allow_nan=False, allow_infinity=False)
g_values = st.floats(min_value=1.5, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestFunctionProperties:
    @given(x=positive_x, value=g_values)
    def test_constant_g_is_constant(self, x, value):
        assert constant_g(value)(x) == value

    @given(x=positive_x)
    def test_log_g_non_decreasing(self, x):
        g = log_g()
        assert g(2 * x) >= g(x)

    @given(x=positive_x)
    def test_derived_f_positive_and_at_most_log(self, x):
        for g in (constant_g(4.0), log_g(), exp_sqrt_log_g()):
            f = derive_f(g)
            assert f(x) > 0
            assert f(x) <= max(1.0, math.log2(x))

    @given(x=positive_x, big=g_values, small=g_values)
    def test_f_monotone_in_g(self, x, big, small):
        lo, hi = sorted((1.0 + small, 1.0 + small + big))
        f_lo = derive_f(constant_g(lo))
        f_hi = derive_f(constant_g(hi))
        assert f_hi(x) <= f_lo(x) + 1e-9

    @given(x=positive_x)
    def test_sending_rates_are_probability_like_for_large_x(self, x):
        assert 0.0 < h_data()(x) <= 1.0
        if x >= 64:
            assert 0.0 < h_ctrl(4.0)(x) <= 1.0

    @given(x=st.integers(min_value=1, max_value=2**30))
    def test_h_data_inverse(self, x):
        assert h_data()(x) == min(1.0, 1.0 / x)


class TestParameterProperties:
    @given(stage=st.integers(min_value=1, max_value=2**24))
    def test_backoff_budget_bounds(self, stage):
        params = AlgorithmParameters.from_g(constant_g(4.0))
        budget = params.backoff_budget(stage)
        assert 1 <= budget <= stage
        # Budget never exceeds the (ceiling of the) arrival budget function.
        assert budget <= math.ceil(params.f(float(max(stage, 2)))) or budget == 1

    @given(index=st.integers(min_value=1, max_value=2**24))
    def test_probabilities_in_unit_interval(self, index):
        params = AlgorithmParameters.from_g(constant_g(4.0))
        assert 0.0 < params.ctrl_probability(index) <= 1.0
        assert 0.0 < params.data_probability(index) <= 1.0

    @given(index=st.integers(min_value=2, max_value=2**20))
    def test_data_rate_decreasing(self, index):
        params = AlgorithmParameters.from_g(constant_g(4.0))
        assert params.data_probability(index) <= params.data_probability(index - 1)
