"""Property tests: the compiled study tier is seed-for-seed identical to reference.

The ``lockstep-jit`` backend lowers the lockstep program interpreter into a
single fused slot loop.  Its contract is the same as every other tier's:
bit-identical results for every program protocol (the paper's CJZ algorithm,
its global-clock ablation, windowed binary-exponential, sawtooth and
polynomial backoff) against the full arrival × jamming grid plus the
adaptive success chaser — including early stops and ``workers=4``
shared-memory shard merges.

numba is an optional dependency, so the suite pins the interpreter to its
pure-python mode (``REPRO_COMPILED_FORCE_PYTHON=1``): the same source
functions numba would compile run uncompiled, which keeps the equivalence
guarantee under test on machines without numba.  When numba *is* installed
the identical functions are exercised through the JIT by simply running this
suite without the pin (the CI numba leg does exactly that by also running
the compiled benchmarks).  A separate test proves ``REPRO_DISABLE_NUMBA=1``
demotes gracefully to the numpy lockstep kernel with identical results.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import BatchArrivals, ComposedAdversary, RandomFractionJamming
from repro.core import cjz_factory
from repro.sim import run_trials
from repro.sim.backends.compiled import compiled_streams_ok, interpreter_mode
from test_property_lockstep import (
    adversary_builders,
    assert_studies_identical,
    lockstep_factories,
)


@pytest.fixture(autouse=True, scope="module")
def force_python_interpreter():
    """Pin the interpreter to pure-python mode unless numba is importable.

    With numba installed the suite runs through the real JIT (the stronger
    check); without it the pin keeps the interpreter path under test instead
    of demoting every study to the numpy lockstep kernel.
    """
    if interpreter_mode() == "numba":
        yield
        return
    previous = os.environ.get("REPRO_COMPILED_FORCE_PYTHON")
    os.environ["REPRO_COMPILED_FORCE_PYTHON"] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_COMPILED_FORCE_PYTHON", None)
        else:
            os.environ["REPRO_COMPILED_FORCE_PYTHON"] = previous


def _expected_backend() -> str:
    """What a ``lockstep-jit`` request reports: itself, or its demotion.

    ``REPRO_DISABLE_NUMBA=1`` in the surrounding environment (the CI
    fallback leg runs the whole suite under it) turns the interpreter off,
    so every request demotes to the numpy lockstep kernel — the equivalence
    assertions below then exercise the demotion path instead.
    """
    return "lockstep-jit" if interpreter_mode() != "off" else "lockstep"


class TestCompiledEquivalence:
    def test_stream_selftest_passes(self):
        """The interpreter's PCG64 port replays numpy's streams exactly."""
        if interpreter_mode() == "off":
            pytest.skip("interpreter disabled via REPRO_DISABLE_NUMBA")
        assert compiled_streams_ok() is True

    @settings(max_examples=12, deadline=None)
    @given(
        named_factory=lockstep_factories,
        named_adversary=adversary_builders(),
        horizon=st.integers(min_value=50, max_value=110),
        trials=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_studies_identical(
        self, named_factory, named_adversary, horizon, trials, seed
    ):
        _, factory = named_factory
        _, adversary_factory = named_adversary

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=adversary_factory,
                horizon=horizon,
                trials=trials,
                seed=seed,
                backend=backend,
            )

        reference, compiled = study("reference"), study("lockstep-jit")
        assert all(r.backend == "reference" for r in reference)
        assert all(r.backend == _expected_backend() for r in compiled)
        assert_studies_identical(reference, compiled)

    @settings(max_examples=8, deadline=None)
    @given(
        named_factory=lockstep_factories,
        named_adversary=adversary_builders(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_stop_when_drained_identical(
        self, named_factory, named_adversary, seed
    ):
        _, factory = named_factory
        _, adversary_factory = named_adversary

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=adversary_factory,
                horizon=220,
                trials=3,
                seed=seed,
                backend=backend,
                stop_when_drained=True,
            )

        assert_studies_identical(study("reference"), study("lockstep-jit"))

    @settings(max_examples=6, deadline=None)
    @given(
        named_adversary=adversary_builders(),
        seed=st.integers(min_value=0, max_value=2**16),
        trials=st.integers(min_value=4, max_value=7),
    )
    def test_workers_shard_merge_identical(self, named_adversary, seed, trials):
        """workers=4 compiled shards (shared-memory transport) match serial."""
        _, adversary_factory = named_adversary

        def study(workers, backend):
            return run_trials(
                protocol_factory=cjz_factory(),
                adversary_factory=adversary_factory,
                horizon=100,
                trials=trials,
                seed=seed,
                backend=backend,
                workers=workers,
            )

        serial_reference = study(1, "reference")
        parallel_compiled = study(4, "lockstep-jit")
        assert parallel_compiled.effective_workers == 4
        assert_studies_identical(serial_reference, parallel_compiled)

    @settings(max_examples=6, deadline=None)
    @given(
        named_factory=lockstep_factories,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_auto_selects_compiled_tier(self, named_factory, seed):
        """``auto`` routes eligible feedback studies through the compiled tier."""
        _, factory = named_factory

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(10), RandomFractionJamming(0.3)
                ),
                horizon=90,
                trials=8,
                seed=seed,
                backend=backend,
            )

        auto = study("auto")
        assert all(r.backend == _expected_backend() for r in auto)
        assert_studies_identical(study("reference"), auto)


class TestNumbaDisabledFallback:
    @pytest.fixture(autouse=True, scope="class")
    def disable_numba(self):
        """``REPRO_DISABLE_NUMBA`` wins over everything, numba installed or not."""
        previous = os.environ.get("REPRO_DISABLE_NUMBA")
        os.environ["REPRO_DISABLE_NUMBA"] = "1"
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop("REPRO_DISABLE_NUMBA", None)
            else:
                os.environ["REPRO_DISABLE_NUMBA"] = previous

    def test_kill_switch_turns_interpreter_off(self):
        assert interpreter_mode() == "off"

    @settings(max_examples=6, deadline=None)
    @given(
        named_factory=lockstep_factories,
        named_adversary=adversary_builders(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_demotes_to_numpy_lockstep_with_identical_results(
        self, named_factory, named_adversary, seed
    ):
        """A ``lockstep-jit`` request still runs — on the numpy kernel."""
        _, factory = named_factory
        _, adversary_factory = named_adversary

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=adversary_factory,
                horizon=90,
                trials=2,
                seed=seed,
                backend=backend,
            )

        demoted = study("lockstep-jit")
        assert all(r.backend == "lockstep" for r in demoted)
        assert_studies_identical(study("reference"), demoted)
        assert_studies_identical(study("lockstep"), demoted)
