"""Property tests: fused multi-study dispatch is invisible in the results.

The fusion contract: for any grid of compatible (or incompatible — the
planner simply declines those) StudySpecs, running the plan with
``fuse=True`` produces studies bit-identical to strict per-point dispatch —
same summaries, same per-node statistics, same per-slot counters — through
the local plan loop, through a multi-worker :class:`SweepServer`, and for
specs that would use the sharded parallel runner on their own.  Injected
``fused-group`` faults must degrade every member to per-point dispatch
without corrupting or losing a sibling point.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.spec import StudyPlan, StudySpec, Sweep, sweep_rows
from repro.spec.store import result_record

#: Row fields that legitimately differ between dispatch modes (timing only).
TIMING_FIELDS = {
    "mean_wall_time_s",
    "mean_slots_per_s",
    "dispatch_seconds",
    "run_seconds",
}

PROTOCOLS = {
    "cjz": lambda value: {
        "kind": "cjz",
        "params": {"g": {"kind": "constant", "value": float(value)}},
    },
    "windowed": lambda value: {
        "kind": "binary-exponential-backoff",
        "params": {"initial_window": 2 ** (1 + int(value) % 3)},
    },
    "sawtooth": lambda value: {
        "kind": "sawtooth-backoff",
        "params": {"initial_window": 2 ** (2 + int(value) % 2)},
    },
}

ARRIVALS = {
    "batch": {"kind": "batch", "params": {"count": 8}},
    "bursty": {"kind": "bursty", "params": {"burst_size": 5, "period": 30}},
}

JAMMING = {
    "none": {"kind": "no-jamming", "params": {}},
    "reactive": {"kind": "reactive", "params": {"fraction": 0.25, "burst": 2}},
}


def _spec(protocol, param, arrivals, jamming, horizon, trials, seed, **extra):
    data = {
        "protocol": PROTOCOLS[protocol](param),
        "adversary": {
            "kind": "composed",
            "arrivals": ARRIVALS[arrivals],
            "jamming": JAMMING[jamming],
        },
        "horizon": horizon,
        "trials": trials,
        "seed": seed,
        "backend": "lockstep",
    }
    data.update(extra)
    return StudySpec.from_dict(data)


def _assert_studies_identical(fused_results, serial_results):
    assert len(fused_results) == len(serial_results)
    for fused, serial in zip(fused_results, serial_results):
        assert fused.failed == serial.failed
        if fused.failed:
            continue
        for x, y in zip(fused.study.results, serial.study.results):
            assert x.summary == y.summary
            assert x.node_stats == y.node_stats
            assert np.array_equal(x.counters.active, y.counters.active)
            assert np.array_equal(x.counters.arrivals, y.counters.arrivals)
            assert np.array_equal(x.counters.jammed, y.counters.jammed)
            assert np.array_equal(x.counters.successes, y.counters.successes)


@st.composite
def mixed_grids(draw):
    """A plan mixing protocol families, params, seeds and adversaries."""
    horizon = draw(st.integers(min_value=80, max_value=220))
    trials = draw(st.integers(min_value=2, max_value=4))
    arrivals = draw(st.sampled_from(sorted(ARRIVALS)))
    jamming = draw(st.sampled_from(sorted(JAMMING)))
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**16),
            min_size=2,
            max_size=4,
            unique=True,
        )
    )
    specs = []
    for protocol in draw(
        st.lists(st.sampled_from(sorted(PROTOCOLS)), min_size=1, max_size=3, unique=True)
    ):
        for param in draw(
            st.lists(
                st.integers(min_value=2, max_value=6),
                min_size=1,
                max_size=2,
                unique=True,
            )
        ):
            for seed in seeds:
                specs.append(
                    _spec(protocol, param, arrivals, jamming, horizon, trials, seed)
                )
    return specs


@given(mixed_grids())
@settings(max_examples=8, deadline=None)
def test_fused_plan_identical_to_per_point(specs):
    fused = StudyPlan(specs).run(fuse=True)
    serial = StudyPlan(specs).run(fuse=False)
    _assert_studies_identical(fused, serial)


@given(
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=80, max_value=200),
)
@settings(max_examples=6, deadline=None)
def test_fused_plan_identical_for_parallel_worker_specs(seed, horizon):
    """Specs that would run through the workers=4 sharded pool on their own
    still fuse (fusion replaces the whole dispatch), with identical results
    and identical sweep rows apart from timing and worker provenance."""
    specs = [
        _spec("cjz", 4, "batch", "none", horizon, 4, seed + i, workers=4)
        for i in range(4)
    ]
    fused = StudyPlan(specs).run(fuse=True)
    serial = StudyPlan(specs).run(fuse=False)
    _assert_studies_identical(fused, serial)
    drop = TIMING_FIELDS | {"workers"}  # fused runs execute single-process
    fused_rows = [
        {k: v for k, v in row.items() if k not in drop}
        for row in sweep_rows(fused)
    ]
    serial_rows = [
        {k: v for k, v in row.items() if k not in drop}
        for row in sweep_rows(serial)
    ]
    assert fused_rows == serial_rows


@given(
    st.integers(min_value=0, max_value=2**16),
    st.sampled_from(sorted(JAMMING)),
)
@settings(max_examples=4, deadline=None)
def test_fused_grid_through_sweep_server(seed, jamming):
    """An 8-point grid served by a 2-worker fused server returns payloads
    identical to a local per-point run (and stores every point under its
    own spec hash)."""
    from repro.serve import BackgroundServer, ServeClient

    specs = [
        _spec("cjz", 4, "batch", jamming, 160, 2, seed + i) for i in range(8)
    ]
    serial = StudyPlan(specs).run(fuse=False)

    def wire(result):
        record = result_record(result)
        record.pop("wall_time_seconds", None)
        return record

    with tempfile.TemporaryDirectory(prefix="repro-fused-serve-") as root:
        with BackgroundServer(Path(root), shards=2, workers=2) as server:
            client = ServeClient(*server.address)
            outcomes = {o.hash: o for o in client.submit(specs, wait=True)}
            assert server.server.stats.executed == len(specs)
            for spec, res in zip(specs, serial):
                outcome = outcomes[spec.spec_hash()]
                assert outcome.ok, outcome.error
                assert [wire(x) for x in res.study.results] == [
                    wire(y) for y in outcome.study.results
                ]


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=6, deadline=None)
def test_fused_group_fault_degrades_without_corrupting_siblings(seed):
    """A crash inside the fused group leaves every member to run per-point;
    results still come out identical to the unfused plan."""
    specs = [
        _spec("cjz", 4, "batch", "none", 120, 2, seed + i) for i in range(4)
    ]
    serial = StudyPlan(specs).run(fuse=False)
    with faults.injected({"rules": [{"site": "fused-group"}]}):
        fused = StudyPlan(specs).run(fuse=True)
    _assert_studies_identical(fused, serial)
    assert not any(r.failed for r in fused)


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=6, deadline=None)
def test_sweep_point_faults_with_fusion_on(seed):
    """Per-point sweep faults keep their exact semantics under fusion: the
    faulted point fails (its prefused study is discarded unstored), the
    siblings keep their fused results, and a retry succeeds."""
    specs = [
        _spec("cjz", 4, "batch", "none", 120, 2, seed + i) for i in range(4)
    ]
    serial = StudyPlan(specs).run(fuse=False)
    plan = {"rules": [{"site": "sweep-point", "point": 1, "attempt": 0}]}
    with faults.injected(plan):
        skipped = StudyPlan(specs).run(fuse=True, on_error="skip")
        retried = StudyPlan(specs).run(fuse=True, on_error="retry", retries=1)
    assert skipped[1].failed and "FaultInjected" in skipped[1].error
    for index in (0, 2, 3):
        assert not skipped[index].failed
    _assert_studies_identical(
        [r for i, r in enumerate(skipped) if i != 1],
        [r for i, r in enumerate(serial) if i != 1],
    )
    _assert_studies_identical(retried, serial)
