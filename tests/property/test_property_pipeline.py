"""Property tests: metric pipelines are backend- and shard-invariant.

The pipeline contract: for any study, the finalized reducer values are
identical (1) across the reference / vectorized / batched-study backends,
(2) between ``workers=1`` and ``workers=4`` shard merges, and (3) against
the slot-by-slot collector path the reducers replace — seed for seed.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    RandomFractionJamming,
    ScheduleAdversary,
)
from repro.metrics import (
    MetricPipeline,
    ScalarSummaryReducer,
    SuccessTimeline,
    SuccessTimelineReducer,
    WindowedRateReducer,
    WindowedSuccessCounter,
)
from repro.protocols import ProbabilityBackoff, SlottedAloha, make_factory
from repro.sim import Simulator, SimulatorConfig, run_trials

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

eligible_factories = st.sampled_from(
    [
        ("aloha", make_factory(SlottedAloha, 0.2)),
        ("prob-backoff", make_factory(ProbabilityBackoff, 1.0)),
    ]
)

arrival_schedules = st.dictionaries(
    keys=st.integers(min_value=1, max_value=60),
    values=st.integers(min_value=1, max_value=4),
    min_size=1,
    max_size=6,
)

jam_sets = st.sets(st.integers(min_value=1, max_value=60), max_size=15)


@st.composite
def workloads(draw):
    return (
        draw(arrival_schedules),
        draw(jam_sets),
        draw(st.integers(min_value=60, max_value=150)),
        draw(st.integers(min_value=0, max_value=2**16)),
    )


def make_pipeline(window=16):
    return MetricPipeline(
        [
            SuccessTimelineReducer(),
            WindowedRateReducer(window),
            ScalarSummaryReducer("successes"),
            ScalarSummaryReducer("active_slots"),
        ]
    )


class TestBackendInvariance:
    @settings(max_examples=15, deadline=None)
    @given(
        named_factory=eligible_factories,
        workload=workloads(),
        trials=st.integers(min_value=1, max_value=5),
    )
    def test_pipeline_identical_across_backends(
        self, named_factory, workload, trials
    ):
        _, factory = named_factory
        arrivals, jams, horizon, seed = workload

        def metrics(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=lambda: ScheduleAdversary(
                    arrivals=arrivals, jammed_slots=jams
                ),
                horizon=horizon,
                trials=trials,
                seed=seed,
                backend=backend,
                pipeline=make_pipeline(),
            ).metrics()

        reference = metrics("reference")
        assert metrics("vectorized") == reference
        assert metrics("batched-study") == reference

    @settings(max_examples=10, deadline=None)
    @given(workload=workloads(), trials=st.integers(min_value=1, max_value=4))
    def test_streaming_does_not_change_metrics(self, workload, trials):
        arrivals, jams, horizon, seed = workload

        def metrics(streaming):
            return run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.3),
                adversary_factory=lambda: ScheduleAdversary(
                    arrivals=arrivals, jammed_slots=jams
                ),
                horizon=horizon,
                trials=trials,
                seed=seed,
                pipeline=make_pipeline(),
                streaming=streaming,
            ).metrics()

        assert metrics(True) == metrics(False)


@pytest.mark.skipif(not HAS_FORK, reason="workers>1 requires fork")
class TestShardInvariance:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        trials=st.integers(min_value=4, max_value=8),
    )
    def test_workers4_batched_equals_serial_reference(self, seed, trials):
        """The acceptance-criterion scenario: the batched-study backend with
        workers=4 matches the serial reference pipeline seed for seed."""

        def study(backend, workers):
            return run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.25),
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(6), RandomFractionJamming(0.3)
                ),
                horizon=160,
                trials=trials,
                seed=seed,
                backend=backend,
                workers=workers,
                pipeline=make_pipeline(),
            )

        serial = study("reference", 1)
        sharded = study("batched-study", 4)
        assert sharded.effective_workers == min(4, trials)
        assert sharded.metrics() == serial.metrics()
        assert sharded.pipeline.trials == serial.pipeline.trials == trials

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_streaming_sharded_matches_serial(self, seed):
        def metrics(workers):
            return run_trials(
                protocol_factory=make_factory(ProbabilityBackoff, 1.0),
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(8), RandomFractionJamming(0.2)
                ),
                horizon=150,
                trials=6,
                seed=seed,
                workers=workers,
                pipeline=make_pipeline(),
                streaming=True,
            ).metrics()

        assert metrics(4) == metrics(1)


class TestCollectorParity:
    @settings(max_examples=10, deadline=None)
    @given(workload=workloads(), window=st.integers(min_value=1, max_value=40))
    def test_reducers_match_slot_by_slot_collectors(self, workload, window):
        """Reducers reproduce the legacy per-slot collector outputs exactly,
        even when the study itself ran on the batched kernel (which never
        materializes a single SlotRecord)."""
        arrivals, jams, horizon, seed = workload
        factory = make_factory(SlottedAloha, 0.3)

        study = run_trials(
            protocol_factory=factory,
            adversary_factory=lambda: ScheduleAdversary(
                arrivals=arrivals, jammed_slots=jams
            ),
            horizon=horizon,
            trials=3,
            seed=seed,
            backend="batched-study",
            pipeline=MetricPipeline(
                [SuccessTimelineReducer(), WindowedRateReducer(window)]
            ),
        )
        assert all(r.backend == "batched-study" for r in study)

        timeline_reducer = study.pipeline["success-timeline"]
        windowed_reducer = study.pipeline["windowed-rate"]
        # Re-run each trial serially with the collectors attached.
        from repro.rng import TrialSeedBatch

        for index, tree in enumerate(TrialSeedBatch(seed, 3).trees):
            timeline = SuccessTimeline()
            counter = WindowedSuccessCounter(window)
            Simulator(
                protocol_factory=factory,
                adversary=ScheduleAdversary(arrivals=arrivals, jammed_slots=jams),
                config=SimulatorConfig(horizon=horizon),
                collectors=[timeline, counter],
                seed=tree,
            ).run()
            assert timeline_reducer.timelines[index] == timeline.success_slots
            assert windowed_reducer.counts[index] == counter.counts
