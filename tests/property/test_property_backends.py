"""Property tests: the vectorized backend is bit-for-bit equal to the reference.

For every vector-eligible protocol, any precompilable workload and any seed,
the vectorized kernel must reproduce the reference kernel exactly: identical
summaries, prefix arrays, per-node statistics, traces and early-stop slots.
The same holds one level up: a ``workers=N`` trial study must be seed-for-seed
identical to its serial counterpart.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    PeriodicJamming,
    PoissonArrivals,
    RandomFractionJamming,
    ScheduleAdversary,
)
from repro.protocols import (
    LogUniformFixedProtocol,
    ProbabilityBackoff,
    SlottedAloha,
    make_factory,
)
from repro.sim import Simulator, SimulatorConfig, run_trials

eligible_factories = st.sampled_from(
    [
        ("aloha", make_factory(SlottedAloha, 0.2)),
        ("prob-backoff", make_factory(ProbabilityBackoff, 1.0)),
        ("log-uniform", make_factory(LogUniformFixedProtocol, 1.0)),
    ]
)

arrival_schedules = st.dictionaries(
    keys=st.integers(min_value=1, max_value=60),
    values=st.integers(min_value=1, max_value=4),
    min_size=1,
    max_size=6,
)

jam_sets = st.sets(st.integers(min_value=1, max_value=60), max_size=15)


@st.composite
def workloads(draw):
    return (
        draw(arrival_schedules),
        draw(jam_sets),
        draw(st.integers(min_value=60, max_value=150)),
        draw(st.integers(min_value=0, max_value=2**16)),
    )


def run_both(factory, adversary_factory, horizon, seed, **config_kwargs):
    results = []
    for backend in ("reference", "vectorized"):
        simulator = Simulator(
            protocol_factory=factory,
            adversary=adversary_factory(),
            config=SimulatorConfig(horizon=horizon, **config_kwargs),
            seed=seed,
            backend=backend,
        )
        results.append(simulator.run())
    return results


def assert_identical(reference, vectorized):
    assert vectorized.backend == "vectorized"
    assert reference.backend == "reference"
    assert reference.summary == vectorized.summary
    assert reference.horizon == vectorized.horizon
    assert reference.prefix_active == vectorized.prefix_active
    assert reference.prefix_arrivals == vectorized.prefix_arrivals
    assert reference.prefix_jammed == vectorized.prefix_jammed
    assert reference.prefix_successes == vectorized.prefix_successes
    assert reference.node_stats == vectorized.node_stats


class TestBackendEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(named_factory=eligible_factories, workload=workloads())
    def test_scheduled_workloads_identical(self, named_factory, workload):
        _, factory = named_factory
        arrivals, jams, horizon, seed = workload
        reference, vectorized = run_both(
            factory,
            lambda: ScheduleAdversary(arrivals=arrivals, jammed_slots=jams),
            horizon,
            seed,
        )
        assert_identical(reference, vectorized)

    @settings(max_examples=15, deadline=None)
    @given(
        named_factory=eligible_factories,
        count=st.integers(min_value=1, max_value=24),
        fraction=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_jamming_identical(self, named_factory, count, fraction, seed):
        _, factory = named_factory
        reference, vectorized = run_both(
            factory,
            lambda: ComposedAdversary(
                BatchArrivals(count), RandomFractionJamming(fraction)
            ),
            200,
            seed,
        )
        assert_identical(reference, vectorized)

    @settings(max_examples=15, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_poisson_arrivals_identical(self, rate, seed):
        reference, vectorized = run_both(
            make_factory(ProbabilityBackoff, 1.0),
            lambda: ComposedAdversary(PoissonArrivals(rate), PeriodicJamming(7)),
            150,
            seed,
        )
        assert_identical(reference, vectorized)

    @settings(max_examples=15, deadline=None)
    @given(workload=workloads())
    def test_traces_identical(self, workload):
        arrivals, jams, horizon, seed = workload
        reference, vectorized = run_both(
            make_factory(SlottedAloha, 0.3),
            lambda: ScheduleAdversary(arrivals=arrivals, jammed_slots=jams),
            horizon,
            seed,
            keep_trace=True,
        )
        assert_identical(reference, vectorized)
        assert list(reference.trace.records) == list(vectorized.trace.records)

    @settings(max_examples=15, deadline=None)
    @given(workload=workloads())
    def test_stop_when_drained_identical(self, workload):
        arrivals, jams, horizon, seed = workload
        reference, vectorized = run_both(
            make_factory(SlottedAloha, 0.4),
            lambda: ScheduleAdversary(arrivals=arrivals, jammed_slots=jams),
            horizon,
            seed,
            stop_when_drained=True,
        )
        assert_identical(reference, vectorized)


class TestParallelTrialEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        trials=st.integers(min_value=2, max_value=5),
    )
    def test_workers_seed_for_seed_identical(self, seed, trials):
        def study(workers):
            return run_trials(
                protocol_factory=make_factory(ProbabilityBackoff, 1.0),
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(8), RandomFractionJamming(0.2)
                ),
                horizon=150,
                trials=trials,
                seed=seed,
                workers=workers,
            )

        serial, parallel = study(1), study(2)
        assert [r.prefix_successes for r in serial] == [
            r.prefix_successes for r in parallel
        ]
        assert [r.summary for r in serial] == [r.summary for r in parallel]
        assert [sorted(r.node_stats) for r in serial] == [
            sorted(r.node_stats) for r in parallel
        ]


def assert_studies_identical(reference_study, batched_study):
    """Full seed-for-seed equality between two studies of the same seeds."""
    assert len(reference_study) == len(batched_study)
    for reference, batched in zip(reference_study, batched_study):
        assert reference.summary == batched.summary
        assert reference.horizon == batched.horizon
        assert reference.prefix_active == batched.prefix_active
        assert reference.prefix_arrivals == batched.prefix_arrivals
        assert reference.prefix_jammed == batched.prefix_jammed
        assert reference.prefix_successes == batched.prefix_successes
        assert reference.node_stats == batched.node_stats


class TestBatchedStudyEquivalence:
    """backend="batched-study" is seed-for-seed identical to serial reference."""

    @settings(max_examples=20, deadline=None)
    @given(
        named_factory=eligible_factories,
        workload=workloads(),
        trials=st.integers(min_value=1, max_value=6),
    )
    def test_scheduled_studies_identical(self, named_factory, workload, trials):
        _, factory = named_factory
        arrivals, jams, horizon, seed = workload

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=lambda: ScheduleAdversary(
                    arrivals=arrivals, jammed_slots=jams
                ),
                horizon=horizon,
                trials=trials,
                seed=seed,
                backend=backend,
            )

        reference, batched = study("reference"), study("batched-study")
        assert all(r.backend == "reference" for r in reference)
        assert all(r.backend == "batched-study" for r in batched)
        assert_studies_identical(reference, batched)

    @settings(max_examples=12, deadline=None)
    @given(
        named_factory=eligible_factories,
        count=st.integers(min_value=0, max_value=16),
        fraction=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**16),
        trials=st.integers(min_value=2, max_value=5),
    )
    def test_random_jamming_studies_identical(
        self, named_factory, count, fraction, seed, trials
    ):
        _, factory = named_factory

        def study(backend):
            return run_trials(
                protocol_factory=factory,
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(count), RandomFractionJamming(fraction)
                ),
                horizon=180,
                trials=trials,
                seed=seed,
                backend=backend,
            )

        assert_studies_identical(study("reference"), study("batched-study"))

    @settings(max_examples=10, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=0.2),
        seed=st.integers(min_value=0, max_value=2**16),
        trials=st.integers(min_value=2, max_value=4),
    )
    def test_poisson_studies_identical(self, rate, seed, trials):
        def study(backend):
            return run_trials(
                protocol_factory=make_factory(ProbabilityBackoff, 1.0),
                adversary_factory=lambda: ComposedAdversary(
                    PoissonArrivals(rate), PeriodicJamming(5)
                ),
                horizon=150,
                trials=trials,
                seed=seed,
                backend=backend,
            )

        assert_studies_identical(study("reference"), study("batched-study"))

    @settings(max_examples=10, deadline=None)
    @given(workload=workloads(), trials=st.integers(min_value=2, max_value=4))
    def test_stop_when_drained_studies_identical(self, workload, trials):
        arrivals, jams, horizon, seed = workload

        def study(backend):
            return run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.4),
                adversary_factory=lambda: ScheduleAdversary(
                    arrivals=arrivals, jammed_slots=jams
                ),
                horizon=horizon,
                trials=trials,
                seed=seed,
                backend=backend,
                stop_when_drained=True,
            )

        assert_studies_identical(study("reference"), study("batched-study"))

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        trials=st.integers(min_value=2, max_value=6),
    )
    def test_auto_equals_explicit_backends(self, seed, trials):
        def study(backend):
            return run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.25),
                adversary_factory=lambda: ComposedAdversary(
                    BatchArrivals(6), RandomFractionJamming(0.3)
                ),
                horizon=160,
                trials=trials,
                seed=seed,
                backend=backend,
            )

        auto, batched, vectorized = (
            study("auto"),
            study("batched-study"),
            study("vectorized"),
        )
        assert all(r.backend == "batched-study" for r in auto)
        assert_studies_identical(vectorized, auto)
        assert_studies_identical(vectorized, batched)
