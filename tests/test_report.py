"""Tests for the experiment report writer."""

from repro.analysis.tables import Table
from repro.experiments import ExperimentConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.report import render_report, write_report


def make_result(experiment_id="E1", consistent=True):
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"title of {experiment_id}",
        paper_claim="some claim",
    )
    table = Table(title="numbers", columns=["x", "y"])
    table.add_row(1, 2.0)
    result.tables.append(table)
    result.findings["metric"] = 3.14
    result.conclusion = "matches"
    result.consistent_with_paper = consistent
    return result


class TestRenderReport:
    def test_header_and_summary(self):
        report = render_report([make_result()], ExperimentConfig(trials=2))
        assert report.startswith("# EXPERIMENTS")
        assert "| Experiment | Claim | Verdict |" in report
        assert "| E1 | title of E1 | consistent |" in report
        assert "trials=2" in report

    def test_inconsistent_verdict_rendered(self):
        report = render_report([make_result(consistent=False)])
        assert "| E1 | title of E1 | inconsistent |" in report

    def test_unknown_verdict_rendered_as_na(self):
        result = make_result()
        result.consistent_with_paper = None
        report = render_report([result])
        assert "| E1 | title of E1 | n/a |" in report

    def test_tables_rendered_as_markdown(self):
        report = render_report([make_result()])
        assert "| x | y |" in report
        assert "`metric` = 3.14" in report

    def test_multiple_results_ordered_as_given(self):
        report = render_report([make_result("E2"), make_result("E1")])
        assert report.index("### E2") < report.index("### E1")


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(tmp_path / "out.md", [make_result()], ExperimentConfig())
        assert path.exists()
        assert "### E1" in path.read_text(encoding="utf-8")
