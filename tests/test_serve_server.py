"""Tests for the sweep service: server, client, dedupe, faults, identity."""

import json
import socket
import time

import pytest

from repro import faults
from repro.errors import ServeError
from repro.serve import BackgroundServer, ServeClient, decode_line, encode_message
from repro.spec import (
    AdversarySpec,
    ProtocolSpec,
    StudyPlan,
    StudySpec,
    StudyStore,
    Sweep,
)
from repro.spec.store import result_record

SEED = 31


def aloha_spec(seed=SEED, horizon=512, trials=2) -> StudySpec:
    return StudySpec(
        protocol=ProtocolSpec(kind="slotted-aloha", params={"probability": 0.05}),
        adversary=AdversarySpec.batch(8, jam_fraction=0.25),
        horizon=horizon,
        trials=trials,
        seed=seed,
    )


def cjz_spec(seed=SEED, horizon=256, trials=1) -> StudySpec:
    return StudySpec(
        protocol=ProtocolSpec(kind="cjz"),
        adversary=AdversarySpec.batch(8, jam_fraction=0.25),
        horizon=horizon,
        trials=trials,
        seed=seed,
    )


def semantic_records(study):
    """Per-trial summary records minus the fields that legitimately vary
    between runs (wall time and the executing backend)."""
    records = []
    for result in study.results:
        record = result_record(result)
        record.pop("wall_time_seconds")
        record.pop("backend")
        records.append(record)
    return records


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(tmp_path / "store", shards=2, workers=2) as bg:
        yield bg


@pytest.fixture
def client(server):
    return ServeClient(*server.address, timeout=60.0)


class TestSubmitRoundTrip:
    def test_served_study_matches_local_run(self, client):
        spec = aloha_spec()
        outcome = client.submit(spec)[0]
        assert outcome.ok
        assert outcome.status == "done"
        assert not outcome.cached
        assert outcome.attempts == 1
        assert semantic_records(outcome.study) == semantic_records(spec.run())

    def test_fresh_server_serves_store_hit_as_cached(self, tmp_path):
        spec = aloha_spec()
        root = tmp_path / "store"
        with BackgroundServer(root, shards=2, workers=2) as bg:
            ServeClient(*bg.address).submit(spec)
        # New server over the same store: the entry must be served from
        # disk, never enqueued or executed.
        with BackgroundServer(root, workers=2) as bg:
            client = ServeClient(*bg.address)
            outcome = client.submit(spec)[0]
            assert outcome.status == "cached"
            assert outcome.cached
            assert outcome.attempts == 0
            stats = client.stats()
            assert stats["executed"] == 0
            assert stats["cache_hits"] == 1
            assert semantic_records(outcome.study) == semantic_records(spec.run())

    def test_resubmit_same_server_is_a_cache_hit(self, client):
        spec = aloha_spec()
        first = client.submit(spec)[0]
        second = client.submit(spec)[0]
        assert semantic_records(first.study) == semantic_records(second.study)
        stats = client.stats()
        assert stats["executed"] == 1
        assert stats["cache_hits"] == 1

    def test_submit_many_returns_spec_order(self, client):
        specs = [aloha_spec(seed=SEED + i) for i in range(5)]
        outcomes = client.submit(specs)
        assert [o.hash for o in outcomes] == [s.spec_hash() for s in specs]
        assert all(o.ok for o in outcomes)

    def test_no_wait_submission_then_results(self, client):
        specs = [aloha_spec(seed=SEED + i) for i in range(3)]
        submitted = client.submit(specs, wait=False)
        assert {o.status for o in submitted} <= {"queued", "running"}
        outcomes = client.results([s.spec_hash() for s in specs])
        assert all(o.ok for o in outcomes)

    def test_status_reports_jobs_and_unknown_hashes(self, client):
        spec = aloha_spec()
        client.submit(spec)
        rows = client.status()
        assert any(r["hash"] == spec.spec_hash() for r in rows)
        missing = client.status(["beef" * 16])
        assert missing == [{"hash": "beef" * 16, "status": "unknown"}]


class TestDedupe:
    def test_concurrent_submits_execute_once(self, tmp_path):
        """Two submitters of the same spec attach to one execution.

        A single-worker server is first occupied by a blocker job, so the
        target spec is deterministically still queued when the second
        submission arrives and must attach rather than enqueue again.
        """
        with BackgroundServer(tmp_path / "store", workers=1) as bg:
            client = ServeClient(*bg.address, timeout=60.0)
            blocker = aloha_spec(seed=9000, horizon=4096, trials=6)
            target = aloha_spec(seed=9001)
            client.submit(blocker, wait=False)
            client.submit(target, wait=False)
            client.submit(target, wait=False)  # attaches to the queued job
            stats = client.stats()
            assert stats["deduped"] == 1
            first, second = (
                client.results([target.spec_hash()])[0],
                client.results([target.spec_hash()])[0],
            )
            assert first.ok and second.ok
            assert semantic_records(first.study) == semantic_records(second.study)
            stats = client.stats()
            assert stats["executed"] == 2  # blocker + target, not 3
            row = client.status([target.spec_hash()])[0]
            assert row["submitters"] == 2

    def test_cached_spec_never_enqueued(self, tmp_path):
        spec = aloha_spec()
        root = tmp_path / "store"
        with BackgroundServer(root, workers=2) as bg:
            ServeClient(*bg.address).submit(spec)
        with BackgroundServer(root, workers=2) as bg:
            client = ServeClient(*bg.address)
            ack_row = client.submit(spec, wait=False)[0]
            assert ack_row.status == "cached"
            stats = client.stats()
            assert stats["queue_depth"] == 0
            assert stats["jobs"]["queued"] == 0
            assert stats["executed"] == 0


class TestFailures:
    def test_injected_job_failure_surfaces_and_resubmit_recovers(self, client):
        spec = aloha_spec(seed=4242)
        with faults.injected(
            {
                "rules": [
                    {
                        "site": "serve-job",
                        "hash": spec.spec_hash(),
                        "times": 1,
                    }
                ]
            }
        ):
            outcome = client.submit(spec)[0]
            assert outcome.status == "failed"
            assert not outcome.ok
            assert "FaultInjected" in outcome.error
            assert outcome.study is None
            # Resubmission re-queues the failed job; the fault budget is
            # spent, so this attempt succeeds.
            retried = client.submit(spec)[0]
            assert retried.ok
            assert retried.attempts == 2
            assert semantic_records(retried.study) == semantic_records(spec.run())
        stats = client.stats()
        assert stats["failed"] == 1
        assert stats["executed"] == 1

    def test_worker_crash_health_surfaces_in_job_status(self, client):
        """A FaultPlan worker crash inside a served job must show up as
        health_retries in the job's status row while the delivered results
        stay correct (the supervised pool retried the shard)."""
        spec = aloha_spec(seed=777).with_execution(workers=2)
        with faults.injected(
            {"rules": [{"site": "worker-crash", "shard": 1, "attempt": 0}]}
        ):
            outcome = client.submit(spec)[0]
        assert outcome.ok
        assert outcome.health["health_retries"] >= 1
        row = client.status([spec.spec_hash()])[0]
        assert row["health_retries"] >= 1
        assert row["health_failures"] >= 1
        serial = aloha_spec(seed=777)
        assert semantic_records(outcome.study) == semantic_records(serial.run())


class TestEndToEndIdentity:
    def test_served_cjz_sweep_matches_serial_plan(self, tmp_path):
        """The acceptance criterion: a 32-point CJZ sweep through a
        3-worker / 3-shard server is point-for-point identical to the same
        plan run serially with a plain StudyStore."""
        sweep = Sweep(
            cjz_spec(),
            {
                "seed": [SEED + i for i in range(8)],
                "adversary.jamming.params.fraction": [0.0, 0.1, 0.25, 0.4],
            },
        )
        plan = StudyPlan.from_sweep(sweep)
        assert len(plan) == 32
        serial = plan.run(store=StudyStore(tmp_path / "local-store"))
        with BackgroundServer(tmp_path / "served-store", shards=3, workers=3) as bg:
            client = ServeClient(*bg.address, timeout=120.0)
            served = client.run_plan(plan.specs, overrides=sweep.points())
        assert len(served) == 32
        for local, remote in zip(serial, served):
            assert not remote.failed
            assert remote.spec.spec_hash() == local.spec.spec_hash()
            assert semantic_records(remote.study) == semantic_records(local.study)

    def test_sweep_rows_render_identically(self, tmp_path):
        from repro.spec import sweep_rows

        sweep = Sweep(aloha_spec(), {"horizon": [256, 512]})
        plan = StudyPlan.from_sweep(sweep)
        serial_rows = sweep_rows(plan.run())
        with BackgroundServer(tmp_path / "store") as bg:
            client = ServeClient(*bg.address)
            served_rows = sweep_rows(
                client.run_plan(plan.specs, overrides=sweep.points())
            )
        assert [set(r) for r in served_rows] == [set(r) for r in serial_rows]
        skip = {"mean_wall_time_s", "mean_slots_per_s", "dispatch_seconds",
                "run_seconds"}
        for local, remote in zip(serial_rows, served_rows):
            for key in local:
                if key in skip:
                    continue
                assert remote[key] == local[key], key


class TestProtocol:
    def _raw(self, server, payload: bytes) -> list:
        conn = socket.create_connection(server.address, timeout=30.0)
        try:
            conn.sendall(payload)
            conn.shutdown(socket.SHUT_WR)
            reader = conn.makefile("rb")
            return [decode_line(line) for line in reader if line.strip()]
        finally:
            conn.close()

    def test_invalid_json_line_answers_error(self, server):
        replies = self._raw(server, b"{not json}\n")
        assert replies[0]["ok"] is False
        assert "protocol line" in replies[0]["error"]

    def test_unknown_op_answers_error(self, server):
        replies = self._raw(server, encode_message({"op": "explode"}))
        assert replies[0]["ok"] is False
        assert "unknown op" in replies[0]["error"]

    def test_submit_without_specs_answers_error(self, server):
        replies = self._raw(server, encode_message({"op": "submit"}))
        assert replies[0]["ok"] is False

    def test_bad_spec_payload_answers_error(self, server):
        replies = self._raw(
            server, encode_message({"op": "submit", "spec": {"horizon": -1}})
        )
        assert replies[0]["ok"] is False

    def test_error_leaves_connection_usable(self, server):
        payload = encode_message({"op": "explode"}) + encode_message({"op": "stats"})
        replies = self._raw(server, payload)
        assert replies[0]["ok"] is False
        assert replies[1]["ok"] is True
        assert replies[1]["op"] == "stats"

    def test_sweep_submission_expands_server_side(self, client, server):
        base = aloha_spec()
        outcomes = client.submit_sweep(
            Sweep(base, {"horizon": [256, 512]})
        )
        assert len(outcomes) == 2
        assert all(o.ok for o in outcomes)

    def test_stats_include_store_breakdown(self, client):
        client.submit(aloha_spec())
        stats = client.stats()
        assert stats["store"]["entries"] == 1
        assert set(stats["store"]["shards"]) == {"shard-00", "shard-01"}


class TestClientErrors:
    def test_from_address_rejects_garbage(self):
        with pytest.raises(ServeError, match="host:port"):
            ServeClient.from_address("nonsense")
        client = ServeClient.from_address(":7421")
        assert client.address == ("127.0.0.1", 7421)

    def test_unreachable_server_raises_serve_error(self):
        client = ServeClient("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(ServeError, match="cannot reach"):
            client.stats()
        assert client.ping() is False

    def test_ping_true_against_live_server(self, client):
        assert client.ping() is True


class TestShutdown:
    def test_shutdown_request_stops_the_server(self, tmp_path):
        with BackgroundServer(tmp_path / "store") as bg:
            client = ServeClient(*bg.address, timeout=10.0)
            client.shutdown()
            deadline = time.monotonic() + 10.0
            while client.ping() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not client.ping()
