"""Unit tests for the metrics package."""

import pytest

from repro.adversary import BatchArrivals, ComposedAdversary, NoJamming, RandomFractionJamming, ScheduleAdversary
from repro.core import AlgorithmParameters, cjz_factory
from repro.errors import AnalysisError
from repro.functions import RateFunction, constant_g
from repro.metrics import (
    FGThroughputChecker,
    SuccessTimeline,
    WindowedSuccessCounter,
    check_fg_throughput,
    classical_throughput_series,
    summarize_energy,
    summarize_latencies,
)
from repro.protocols import ProbabilityBackoff, make_factory
from repro.sim import Simulator, SimulatorConfig
from repro.types import SlotOutcome, SlotRecord


def run_batch(n=16, horizon=512, jam=0.0, seed=3, protocol=None):
    jamming = RandomFractionJamming(jam) if jam else NoJamming()
    return Simulator(
        protocol_factory=protocol or cjz_factory(),
        adversary=ComposedAdversary(BatchArrivals(n), jamming),
        config=SimulatorConfig(horizon=horizon),
        seed=seed,
    ).run()


class TestFGThroughputChecker:
    def test_bound_formula(self):
        f = RateFunction("f", lambda x: 2.0)
        g = RateFunction("g", lambda x: 3.0)
        checker = FGThroughputChecker(f, g, slack=1.0, additive_grace=5.0)
        assert checker.bound(t=100, arrivals=4, jammed=2) == pytest.approx(4 * 2 + 2 * 3 + 5)

    def test_satisfied_run_passes(self):
        result = run_batch(n=12, horizon=1024)
        params = AlgorithmParameters.from_g(constant_g(4.0))
        report = check_fg_throughput(
            result, params.f, params.g, slack=8.0, min_prefix=64, additive_grace=128.0
        )
        assert report.satisfied
        assert report.violations == 0
        assert report.worst_ratio <= 1.0

    def test_tight_bound_detects_violations(self):
        result = run_batch(n=12, horizon=1024)
        # A vanishing bound must be violated by any active run.
        tiny_f = RateFunction("tiny", lambda x: 1e-6)
        tiny_g = RateFunction("tiny", lambda x: 1e-6)
        report = check_fg_throughput(result, tiny_f, tiny_g, slack=1.0, min_prefix=1)
        assert not report.satisfied
        assert report.violations > 0

    def test_invalid_slack(self):
        with pytest.raises(AnalysisError):
            FGThroughputChecker(RateFunction("f", lambda x: 1.0), RateFunction("g", lambda x: 1.0), slack=0)

    def test_report_bool(self):
        result = run_batch(n=4, horizon=256)
        params = AlgorithmParameters.from_g(constant_g(4.0))
        report = check_fg_throughput(result, params.f, params.g, slack=16.0, additive_grace=256.0)
        assert bool(report) is report.satisfied


class TestClassicalThroughputSeries:
    def test_default_checkpoints_are_powers_of_two(self):
        result = run_batch(n=8, horizon=100)
        series = classical_throughput_series(result)
        assert len(series) >= 5

    def test_explicit_checkpoints(self):
        result = run_batch(n=8, horizon=100)
        series = classical_throughput_series(result, checkpoints=[10, 100])
        assert len(series) == 2

    def test_out_of_range_checkpoint_rejected(self):
        result = run_batch(n=8, horizon=100)
        with pytest.raises(AnalysisError):
            classical_throughput_series(result, checkpoints=[1000])


class TestLatencyAndEnergy:
    def test_latency_summary(self):
        result = run_batch(n=16, horizon=2048)
        summary = summarize_latencies([result])
        assert summary.count == 16
        assert summary.unfinished == 0
        assert summary.mean > 0
        assert summary.maximum >= summary.median
        assert summary.completion_rate == 1.0

    def test_latency_summary_empty(self):
        summary = summarize_latencies([])
        assert summary.count == 0

    def test_energy_summary(self):
        result = run_batch(n=16, horizon=2048)
        summary = summarize_energy([result])
        assert summary.nodes == 16
        assert summary.total_broadcasts > 0
        assert summary.maximum >= summary.mean
        assert summary.scaled_by_log2(16) == pytest.approx(summary.mean / 16.0)

    def test_energy_summary_empty(self):
        summary = summarize_energy([])
        assert summary.nodes == 0


class TestCollectors:
    def make_record(self, slot, success=False):
        return SlotRecord(
            slot=slot,
            broadcasters=(0,) if success else (),
            jammed=False,
            outcome=SlotOutcome.SUCCESS if success else SlotOutcome.SILENCE,
            successful_node=0 if success else None,
            active_nodes=1,
            arrivals=0,
        )

    def test_success_timeline(self):
        timeline = SuccessTimeline()
        timeline.on_run_start(10)
        timeline.on_slot(self.make_record(1))
        timeline.on_slot(self.make_record(2, success=True))
        timeline.on_slot(self.make_record(3, success=True))
        assert timeline.success_slots == [2, 3]
        assert timeline.successes_before(2) == 1
        assert timeline.first_success() == 2

    def test_windowed_counter(self):
        counter = WindowedSuccessCounter(window=2)
        counter.on_run_start(10)
        for slot in range(1, 6):
            counter.on_slot(self.make_record(slot, success=slot % 2 == 0))
        counter.on_run_end(None)
        assert sum(counter.counts) == 2
        assert len(counter.counts) == 3
        assert counter.rates()[0] == pytest.approx(0.5)

    def test_windowed_counter_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedSuccessCounter(window=0)
