"""Concurrency regression tests for the content-addressed study store.

Two races the store must survive:

* two processes quarantining the same corrupt entry — the second mover must
  neither raise nor clobber the evidence the first one saved;
* N processes writing the same spec hash at once — the atomic-rename
  publish must resolve to a complete entry, never a torn one.
"""

import json
import multiprocessing
import warnings

import pytest

from repro.spec import AdversarySpec, ProtocolSpec, StudySpec, StudyStore


def aloha_spec(seed=5, horizon=512) -> StudySpec:
    return StudySpec(
        protocol=ProtocolSpec(kind="slotted-aloha", params={"probability": 0.05}),
        adversary=AdversarySpec.batch(8, jam_fraction=0.25),
        horizon=horizon,
        trials=1,
        seed=seed,
    )


class TestConcurrentQuarantine:
    def test_second_mover_with_occupied_target_does_not_raise(self, tmp_path):
        """Regression: the quarantine destination already exists because a
        concurrent process quarantined the same entry first.  The second
        mover must pick a fresh name and keep both evidence files."""
        store = StudyStore(tmp_path)
        spec = aloha_spec()
        path = store.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text("{torn")
        # Pre-create the quarantine target, as the first mover would have.
        corrupt_dir = tmp_path / "corrupt"
        corrupt_dir.mkdir()
        (corrupt_dir / path.name).write_text("first mover's evidence")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert store.get(spec) is None  # quarantines, must not raise
        assert not path.exists()
        assert (corrupt_dir / path.name).read_text() == "first mover's evidence"
        assert (corrupt_dir / f"{path.name}.1").read_text() == "{torn"

    def test_source_already_moved_is_silent(self, tmp_path):
        """The other process won the race outright: by the time we try to
        move the corrupt entry, it is gone.  No exception, no warning."""
        store = StudyStore(tmp_path)
        spec = aloha_spec()
        path = store.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text("{torn")

        import os as _os

        real_replace = _os.replace

        def racing_replace(src, dst, **kwargs):
            # Simulate the concurrent mover finishing between the exists()
            # scan and our own rename.
            if str(src) == str(path):
                real_replace(src, tmp_path / "corrupt" / path.name)
                raise FileNotFoundError(src)
            return real_replace(src, dst, **kwargs)

        from repro.spec import store as store_module

        original = store_module.os.replace
        store_module.os.replace = racing_replace
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # any warning fails the test
                assert store.get(spec) is None
        finally:
            store_module.os.replace = original
        assert (tmp_path / "corrupt" / path.name).exists()

    def test_repeated_quarantines_accumulate_suffixes(self, tmp_path):
        store = StudyStore(tmp_path)
        spec = aloha_spec()
        path = store.path_for(spec)
        path.parent.mkdir(parents=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for _ in range(3):
                path.write_text("{torn")
                assert store.get(spec) is None
        names = store.corrupt_entries()
        assert path.name in names
        assert len([n for n in names if n.startswith(path.name)]) >= 1
        corrupt = tmp_path / "corrupt"
        assert (corrupt / f"{path.name}.1").exists()
        assert (corrupt / f"{path.name}.2").exists()


def _write_same_entry(root, seed, barrier, failures):
    """Worker: run the shared spec and race everyone else to publish it."""
    try:
        store = StudyStore(root)
        spec = aloha_spec(seed=100)
        study = spec.run()
        barrier.wait(timeout=60)
        for _ in range(5):
            store.put(spec, study)
    except BaseException as exc:  # pragma: no cover - failure reporting
        failures.put(repr(exc))


class TestConcurrentPut:
    def test_same_hash_writers_never_tear_the_entry(self, tmp_path):
        """N processes publish the identical spec simultaneously; the entry
        must always parse and the store must read it back clean."""
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(4)
        failures = context.Queue()
        workers = [
            context.Process(
                target=_write_same_entry, args=(tmp_path, i, barrier, failures)
            )
            for i in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert failures.empty()
        store = StudyStore(tmp_path)
        spec = aloha_spec(seed=100)
        path = store.path_for(spec)
        payload = json.loads(path.read_text())  # parses → not torn
        assert payload["hash"] == spec.spec_hash()
        cached = store.get(spec)
        assert cached is not None
        assert cached.from_cache
        # No stray mkstemp staging files left behind.
        assert list(path.parent.glob("*.tmp")) == []
        assert store.corrupt_entries() == []
