"""Unit tests for the baseline protocols."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols import (
    BackonBackoffCD,
    FixedProbabilityProtocol,
    LogUniformFixedProtocol,
    PolynomialBackoff,
    ProbabilityBackoff,
    SawtoothBackoff,
    SlottedAloha,
    TwoChannelNoJamming,
    WindowedBinaryExponentialBackoff,
    make_factory,
)
from repro.types import Feedback


def arrived(protocol, slot=1, seed=0):
    protocol.on_arrival(slot, np.random.default_rng(seed))
    return protocol


class TestWindowedBEB:
    def test_schedules_attempt_within_initial_window(self):
        protocol = arrived(WindowedBinaryExponentialBackoff(initial_window=2))
        attempts = [slot for slot in range(1, 4) if protocol.wants_to_broadcast(slot)]
        assert len(attempts) >= 0  # may or may not attempt in the first window slot
        # The first attempt must fall within [arrival, arrival + window).
        protocol2 = arrived(WindowedBinaryExponentialBackoff(initial_window=4), seed=3)
        first = next(s for s in range(1, 10) if protocol2.wants_to_broadcast(s))
        assert first <= 4

    def test_window_doubles_after_failure(self):
        protocol = arrived(WindowedBinaryExponentialBackoff(initial_window=2))
        slot = next(s for s in range(1, 10) if protocol.wants_to_broadcast(s))
        protocol.on_feedback(slot, Feedback.NO_SUCCESS, broadcast=True, success_was_own=False)
        assert protocol._window == 4

    def test_window_capped_at_max(self):
        protocol = arrived(
            WindowedBinaryExponentialBackoff(initial_window=2, max_window=4)
        )
        for _ in range(5):
            slot = protocol._next_attempt_slot
            protocol.on_feedback(slot, Feedback.NO_SUCCESS, broadcast=True, success_was_own=False)
        assert protocol._window == 4

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            WindowedBinaryExponentialBackoff(initial_window=0)
        with pytest.raises(ConfigurationError):
            WindowedBinaryExponentialBackoff(initial_window=4, max_window=2)


class TestProbabilityBackoff:
    def test_first_slot_sends_with_probability_one(self):
        protocol = arrived(ProbabilityBackoff(1.0))
        assert protocol.wants_to_broadcast(1) is True

    def test_probability_decays_with_age(self):
        protocol = arrived(ProbabilityBackoff(1.0), slot=10)
        assert protocol._probability(10) == 1.0
        assert protocol._probability(19) == pytest.approx(0.1)

    def test_scale_raises_probability(self):
        protocol = arrived(ProbabilityBackoff(4.0), slot=1)
        assert protocol._probability(2) == 1.0
        assert protocol._probability(16) == pytest.approx(0.25)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            ProbabilityBackoff(0.0)


class TestPolynomialBackoff:
    def test_window_grows_polynomially_with_failures(self):
        protocol = arrived(PolynomialBackoff(degree=2.0, initial_window=2))
        assert protocol._current_window() == 2
        protocol._failures = 3
        assert protocol._current_window() == 16

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            PolynomialBackoff(degree=0.0)

    def test_broadcasts_only_on_scheduled_slot(self):
        protocol = arrived(PolynomialBackoff())
        scheduled = protocol._next_attempt_slot
        for slot in range(1, scheduled + 3):
            assert protocol.wants_to_broadcast(slot) is (slot == scheduled)
            if slot == scheduled:
                break


class TestSawtoothBackoff:
    def test_run_ramps_up_probability(self):
        protocol = arrived(SawtoothBackoff(initial_window=8))
        probabilities = [p for _, _, p in protocol._phases]
        assert probabilities[0] == pytest.approx(1.0 / 8)
        assert max(probabilities) == pytest.approx(0.5)
        # Monotone non-decreasing within a run.
        assert all(b >= a - 1e-12 for a, b in zip(probabilities, probabilities[1:]))

    def test_phase_schedule_is_logarithmic(self):
        # The per-run schedule stores one entry per phase (O(log window)),
        # not one per slot; each phase spans its probability's slot count.
        protocol = arrived(SawtoothBackoff(initial_window=64))
        assert len(protocol._phases) == 6  # 1/64 .. 1/2
        for first, end, probability in protocol._phases:
            assert end - first == max(1, int(round(1.0 / probability)))

    def test_window_doubles_between_runs(self):
        protocol = arrived(SawtoothBackoff(initial_window=4))
        first_run_end = protocol._phases[-1][1] - 1
        protocol._probability_for(first_run_end + 1)
        assert protocol._window == 8

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SawtoothBackoff(initial_window=1)


class TestFixedProbability:
    def test_sequence_is_respected(self):
        protocol = arrived(FixedProbabilityProtocol(lambda i: 0.5 if i == 1 else 0.0))
        assert protocol.probability(1) == 0.5
        assert protocol.probability(7) == 0.0

    def test_invalid_probability_detected(self):
        protocol = arrived(FixedProbabilityProtocol(lambda i: 2.0))
        with pytest.raises(ConfigurationError):
            protocol.probability(1)

    def test_log_uniform_shape(self):
        protocol = arrived(LogUniformFixedProtocol(1.0))
        assert protocol.probability(1) == pytest.approx(0.5)
        assert protocol.probability(1023) == pytest.approx(
            np.log2(1024) / 1024, rel=1e-6
        )

    def test_feedback_does_not_change_probabilities(self):
        protocol = arrived(LogUniformFixedProtocol(1.0))
        before = protocol.probability(50)
        protocol.on_feedback(3, Feedback.NO_SUCCESS, broadcast=True, success_was_own=False)
        assert protocol.probability(50) == before


class TestSlottedAloha:
    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            SlottedAloha(0.0)
        with pytest.raises(ConfigurationError):
            SlottedAloha(1.5)

    def test_empirical_rate(self):
        protocol = arrived(SlottedAloha(0.3), seed=9)
        sends = sum(1 for slot in range(1, 3001) if protocol.wants_to_broadcast(slot))
        assert 0.25 < sends / 3000 < 0.35


class TestBackonBackoffCD:
    def test_collision_backs_off(self):
        protocol = arrived(BackonBackoffCD(initial_probability=0.5))
        protocol.on_feedback(1, Feedback.COLLISION, broadcast=True, success_was_own=False)
        assert protocol.probability == pytest.approx(0.25)

    def test_silence_backs_on(self):
        protocol = arrived(BackonBackoffCD(initial_probability=0.5, backon_factor=1.2))
        protocol.on_feedback(1, Feedback.SILENCE, broadcast=False, success_was_own=False)
        assert protocol.probability == pytest.approx(0.6)

    def test_no_success_without_cd_backs_off(self):
        protocol = arrived(BackonBackoffCD(initial_probability=0.5))
        protocol.on_feedback(1, Feedback.NO_SUCCESS, broadcast=False, success_was_own=False)
        assert protocol.probability == pytest.approx(0.25)

    def test_probability_clamped(self):
        protocol = arrived(BackonBackoffCD(initial_probability=1.0, backon_factor=2.0))
        protocol.on_feedback(1, Feedback.SILENCE, broadcast=False, success_was_own=False)
        assert protocol.probability <= 1.0

    def test_invalid_factors(self):
        with pytest.raises(ConfigurationError):
            BackonBackoffCD(backoff_factor=1.5)
        with pytest.raises(ConfigurationError):
            BackonBackoffCD(backon_factor=0.9)


class TestTwoChannelNoJamming:
    def test_is_a_cjz_variant_with_constant_budget(self):
        protocol = TwoChannelNoJamming(backoff_sends_per_stage=2.0)
        assert protocol.parameters.f(10**9) == 2.0
        assert protocol.name == "two-channel-no-jamming"


class TestMakeFactory:
    def test_factory_name_defaults_to_class_attribute(self):
        factory = make_factory(SlottedAloha, 0.1)
        assert "aloha" in factory.protocol_name

    def test_factory_builds_independent_instances(self):
        factory = make_factory(ProbabilityBackoff, 1.0)
        assert factory() is not factory()
