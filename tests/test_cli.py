"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_run_command_parsing(self):
        args = build_parser().parse_args(["run", "E3", "--trials", "2", "--scale", "smoke"])
        assert args.experiment_id == "E3"
        assert args.trials == 2
        assert args.scale == "smoke"

    def test_report_command_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.output == "EXPERIMENTS.md"
        assert args.only is None


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--arrivals", "8", "--horizon", "256", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chen-jiang-zheng" in out
        assert "throughput" in out

    def test_run_command_smoke(self, capsys):
        code = main(["run", "E5", "--trials", "2", "--scale", "smoke", "--seed", "7"])
        out = capsys.readouterr().out
        assert "E5" in out
        assert code in (0, 1)

    def test_report_command_writes_file(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        code = main(
            [
                "report",
                "--only",
                "E5",
                "--trials",
                "2",
                "--scale",
                "smoke",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        assert "E5" in output.read_text()


class TestBenchCommand:
    def test_bench_writes_json_and_compares_clean(self, tmp_path, capsys):
        output = tmp_path / "BENCH_ci.json"
        code = main(
            [
                "bench",
                "--scale",
                "smoke",
                "--no-experiments",
                "--repeats",
                "1",
                "--backends",
                "vectorized",
                "batched-study",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slots/s" in out and output.exists()

        code = main(["bench", "--compare", str(output), str(output)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_compare_fails_on_regression(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_base.json"
        main(
            [
                "bench",
                "--scale",
                "smoke",
                "--no-experiments",
                "--repeats",
                "1",
                "--backends",
                "vectorized",
                "batched-study",
                "--output",
                str(output),
            ]
        )
        capsys.readouterr()
        data = json.loads(output.read_text())
        for record in data["benchmarks"]:
            if "speedup_vs_vectorized" in record:
                record["speedup_vs_vectorized"] *= 0.3
        worse = tmp_path / "BENCH_worse.json"
        worse.write_text(json.dumps(data))
        code = main(["bench", "--compare", str(output), str(worse)])
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_run_parses_batched_study_backend(self):
        args = build_parser().parse_args(
            ["run", "E5", "--backend", "batched-study"]
        )
        assert args.backend == "batched-study"

    def test_run_explicit_batched_study_errors_for_ineligible_protocol(
        self, capsys
    ):
        # The paper's algorithm is feedback-adaptive, so naming the batched
        # backend explicitly fails fast (same contract as explicit
        # "vectorized"); "auto" falls back instead.
        code = main(
            [
                "run",
                "E5",
                "--trials",
                "2",
                "--scale",
                "smoke",
                "--seed",
                "7",
                "--backend",
                "batched-study",
            ]
        )
        assert code == 2
        assert "not vector-eligible" in capsys.readouterr().err
