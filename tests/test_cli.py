"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_run_command_parsing(self):
        args = build_parser().parse_args(["run", "E3", "--trials", "2", "--scale", "smoke"])
        assert args.experiment_id == "E3"
        assert args.trials == 2
        assert args.scale == "smoke"

    def test_report_command_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.output == "EXPERIMENTS.md"
        assert args.only is None


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--arrivals", "8", "--horizon", "256", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chen-jiang-zheng" in out
        assert "throughput" in out

    def test_run_command_smoke(self, capsys):
        code = main(["run", "E5", "--trials", "2", "--scale", "smoke", "--seed", "7"])
        out = capsys.readouterr().out
        assert "E5" in out
        assert code in (0, 1)

    def test_report_command_writes_file(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        code = main(
            [
                "report",
                "--only",
                "E5",
                "--trials",
                "2",
                "--scale",
                "smoke",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        assert "E5" in output.read_text()
