"""Unit tests for the lockstep study kernel and its columnar machinery."""

import numpy as np
import pytest

from repro.adversary import (
    AdaptiveSuccessChaser,
    BatchArrivals,
    ComposedAdversary,
    RandomFractionJamming,
    ReactiveJamming,
    UniformRandomArrivals,
)
from repro.core import ChenJiangZhengProtocol, GlobalClockVariant, cjz_factory
from repro.errors import ConfigurationError
from repro.protocols import (
    PolynomialBackoff,
    SawtoothBackoff,
    SlottedAloha,
    WindowedBinaryExponentialBackoff,
    make_factory,
)
from repro.protocols.base import grow_flat_column
from repro.rng import NodeStreamPool, lockstep_streams_ok
from repro.sim import SimulatorConfig, TrialRunner, run_trials
from repro.sim.backends import LockstepStudyKernel


class TestNodeStreamPool:
    """The pool replays default_rng streams bit for bit."""

    def _pool_and_references(self, count=3):
        sequences = [
            np.random.SeedSequence(99, spawn_key=(i, 0)) for i in range(count)
        ]
        pool = NodeStreamPool(count)
        pool.seed_rows(
            np.arange(count),
            np.stack([s.generate_state(4, np.uint64) for s in sequences]),
        )
        return pool, [np.random.default_rng(s) for s in sequences]

    def test_streams_verified_on_this_numpy(self):
        assert lockstep_streams_ok()

    def test_doubles_match_generator_random(self):
        pool, refs = self._pool_and_references()
        rows = np.arange(3)
        for _ in range(50):
            assert np.array_equal(
                pool.doubles(rows), np.array([g.random() for g in refs])
            )

    def test_pow2_batch_matches_bounded_integers(self):
        pool, refs = self._pool_and_references()
        rows = np.arange(3)
        for k, count in [(1, 2), (3, 5), (7, 4), (20, 3)]:
            mine = pool.pow2_batch(rows, k, count)
            theirs = np.stack(
                [g.integers(1 << k, 2 << k, size=count) for g in refs], axis=1
            )
            assert np.array_equal(mine, theirs)

    def test_bounded_u32_matches_integers(self):
        pool, refs = self._pool_and_references()
        rows = np.arange(3)
        for bound in [1, 2, 3, 10, 1000, 1 << 30]:
            mine = pool.bounded_u32(rows, np.uint64(bound - 1))
            theirs = np.array([g.integers(0, bound) for g in refs])
            assert np.array_equal(mine.astype(np.int64), theirs)

    def test_interleaved_kinds_share_the_buffer_correctly(self):
        pool, refs = self._pool_and_references()
        rows = np.arange(3)
        # bounded (buffers the high half) -> double (skips the buffer) ->
        # bounded (consumes the buffered half).
        assert np.array_equal(
            pool.bounded_u32(rows, np.uint64(6)).astype(np.int64),
            np.array([g.integers(0, 7) for g in refs]),
        )
        assert np.array_equal(
            pool.doubles(rows), np.array([g.random() for g in refs])
        )
        assert np.array_equal(
            pool.bounded_u32(rows, np.uint64(12)).astype(np.int64),
            np.array([g.integers(0, 13) for g in refs]),
        )

    def test_bounded_scalar_wide_ranges(self):
        pool, refs = self._pool_and_references()
        for bound in [5, 1 << 32, (1 << 34) + 7, 1 << 63]:
            for row, generator in enumerate(refs):
                assert pool.bounded_scalar(row, bound - 1) == int(
                    generator.integers(0, bound)
                )

    def test_zero_range_consumes_nothing(self):
        pool, refs = self._pool_and_references()
        rows = np.arange(3)
        assert np.array_equal(
            pool.bounded_u32(rows, np.uint64(0)), np.zeros(3, dtype=np.uint64)
        )
        assert np.array_equal(
            pool.doubles(rows), np.array([g.random() for g in refs])
        )


class TestGrowFlatColumn:
    def test_preserves_trial_blocks(self):
        column = np.arange(6, dtype=np.int64)  # 2 trials x capacity 3
        grown = grow_flat_column(column, trials=2, old_capacity=3, new_capacity=5, fill=-1)
        assert grown.tolist() == [0, 1, 2, -1, -1, 3, 4, 5, -1, -1]

    def test_two_dimensional_columns(self):
        column = np.arange(8, dtype=np.int64).reshape(4, 2)  # 2 trials x cap 2
        grown = grow_flat_column(column, trials=2, old_capacity=2, new_capacity=3, fill=0)
        assert grown.shape == (6, 2)
        assert grown[2].tolist() == [0, 0]
        assert grown[3].tolist() == [4, 5]


def batch_jam_factory():
    return ComposedAdversary(BatchArrivals(6), RandomFractionJamming(0.25))


class TestEligibility:
    def test_program_less_protocol_rejected_explicitly(self):
        with pytest.raises(ConfigurationError, match="lockstep"):
            run_trials(
                protocol_factory=make_factory(SlottedAloha, 0.2),
                adversary_factory=batch_jam_factory,
                horizon=50,
                trials=2,
                seed=1,
                backend="lockstep",
            )

    def test_keep_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="keep_trace"):
            run_trials(
                protocol_factory=cjz_factory(),
                adversary_factory=batch_jam_factory,
                horizon=50,
                trials=2,
                seed=1,
                backend="lockstep",
                keep_trace=True,
            )

    def test_subclass_opts_out_of_the_program(self):
        class Variant(ChenJiangZhengProtocol):
            pass

        assert Variant().lockstep_program() is None
        assert ChenJiangZhengProtocol().lockstep_program() is not None
        assert GlobalClockVariant().lockstep_program() is not None

    def test_windowed_family_programs_exist(self):
        assert WindowedBinaryExponentialBackoff().lockstep_program() is not None
        assert SawtoothBackoff().lockstep_program() is not None
        assert PolynomialBackoff().lockstep_program() is not None
        assert SlottedAloha(0.2).lockstep_program() is None

    def test_kernel_reports_reason(self):
        kernel = LockstepStudyKernel()
        reason = kernel.unsupported_reason(
            make_factory(SlottedAloha, 0.2),
            batch_jam_factory,
            SimulatorConfig(horizon=10),
        )
        assert "lockstep program" in reason
        assert kernel.supports_study(
            cjz_factory(), batch_jam_factory, SimulatorConfig(horizon=10)
        )


class TestAutoLadder:
    def test_auto_prefers_lockstep_for_feedback_protocols(self):
        study = run_trials(
            protocol_factory=cjz_factory(),
            adversary_factory=lambda: ComposedAdversary(
                BatchArrivals(12), RandomFractionJamming(0.25)
            ),
            horizon=80,
            trials=3,
            seed=5,
            backend="auto",
        )
        assert all(r.backend == "lockstep" for r in study)

    def test_auto_keeps_batched_study_for_vector_protocols(self):
        study = run_trials(
            protocol_factory=make_factory(SlottedAloha, 0.2),
            adversary_factory=batch_jam_factory,
            horizon=80,
            trials=3,
            seed=5,
            backend="auto",
        )
        assert all(r.backend == "batched-study" for r in study)

    def test_auto_serves_adaptive_adversaries_via_lockstep(self):
        # Adaptive adversaries hide their arrival shape, so auto escalates
        # on the trial count alone.
        study = run_trials(
            protocol_factory=cjz_factory(),
            adversary_factory=lambda: AdaptiveSuccessChaser(
                jam_fraction=0.2, total_arrival_budget=12
            ),
            horizon=120,
            trials=8,
            seed=5,
            backend="auto",
        )
        assert all(r.backend == "lockstep" for r in study)

    def test_auto_keeps_small_sparse_studies_per_trial(self):
        # Two trials of a thin spread workload carry too little concurrent
        # population for the lockstep tier to pay off.
        study = run_trials(
            protocol_factory=cjz_factory(),
            adversary_factory=lambda: ComposedAdversary(
                UniformRandomArrivals(10, (1, 60)), RandomFractionJamming(0.2)
            ),
            horizon=120,
            trials=2,
            seed=5,
            backend="auto",
        )
        assert all(r.backend == "reference" for r in study)
        # An explicit request still runs lockstep.
        explicit = run_trials(
            protocol_factory=cjz_factory(),
            adversary_factory=lambda: ComposedAdversary(
                UniformRandomArrivals(10, (1, 60)), RandomFractionJamming(0.2)
            ),
            horizon=120,
            trials=2,
            seed=5,
            backend="lockstep",
        )
        assert all(r.backend == "lockstep" for r in explicit)


class TestKernelBehaviour:
    def test_dynamic_capacity_growth_stays_identical(self):
        # The chaser's arrivals are revealed slot by slot; a budget well past
        # the initial per-trial capacity forces the rectangular layout to
        # grow and re-map mid-run.
        def adversary():
            return AdaptiveSuccessChaser(
                jam_fraction=0.1,
                arrival_budget_per_success=3,
                total_arrival_budget=60,
                jam_burst=2,
                seed_arrivals=4,
            )

        kwargs = dict(
            protocol_factory=cjz_factory(),
            adversary_factory=adversary,
            horizon=500,
            trials=3,
            seed=11,
        )
        reference = run_trials(backend="reference", **kwargs)
        lockstep = run_trials(backend="lockstep", **kwargs)
        assert max(r.total_arrivals for r in lockstep) > 16
        for a, b in zip(reference, lockstep):
            assert a.summary == b.summary
            assert a.node_stats == b.node_stats

    def test_max_nodes_enforced_like_reference(self):
        config = SimulatorConfig(horizon=40, max_nodes=10)

        def runner(backend):
            return TrialRunner(
                cjz_factory(),
                lambda: ComposedAdversary(
                    BatchArrivals(30), RandomFractionJamming(0.0)
                ),
                config,
                backend=backend,
            )

        with pytest.raises(ConfigurationError, match="max_nodes=10 at slot 1"):
            runner("reference").run(trials=2, seed=3)
        with pytest.raises(ConfigurationError, match="max_nodes=10 at slot 1"):
            runner("lockstep").run(trials=2, seed=3)

    def test_max_nodes_enforced_on_the_dynamic_path(self):
        config = SimulatorConfig(horizon=200, max_nodes=12)
        runner = TrialRunner(
            cjz_factory(),
            lambda: AdaptiveSuccessChaser(
                jam_fraction=0.0,
                arrival_budget_per_success=4,
                seed_arrivals=6,
            ),
            config,
            backend="lockstep",
        )
        with pytest.raises(ConfigurationError, match="max_nodes=12"):
            runner.run(trials=2, seed=3)

    def test_results_report_lockstep_backend_and_adversary_names(self):
        study = run_trials(
            protocol_factory=cjz_factory(),
            adversary_factory=lambda: ComposedAdversary(
                UniformRandomArrivals(8, (1, 40)), ReactiveJamming(0.2, burst=4)
            ),
            horizon=90,
            trials=2,
            seed=9,
            backend="lockstep",
        )
        for result in study:
            assert result.backend == "lockstep"
            assert "reactive-jam" in result.adversary_name
            assert result.protocol_name == "chen-jiang-zheng"

    def test_consumed_strategies_are_rebuilt_for_the_generic_driver(self):
        # An arrival strategy that consumes randomness inside precompile()
        # and then bails leaves the reactive builder's instances consumed;
        # the generic per-slot fallback must rebuild fresh adversaries (the
        # rebuild is stream-identical) instead of reusing them.
        from repro.adversary.base import ArrivalStrategy

        class HalfBakedArrivals(ArrivalStrategy):
            name = "half-baked"
            adaptive = False

            def setup(self, rng, horizon=None):
                self._rng = rng

            def arrivals_for_slot(self, slot):
                return int(self._rng.random() < 0.08)

            def precompile(self, horizon):
                self._rng.random()  # consumes, then gives up
                return None

        def adversary():
            return ComposedAdversary(
                HalfBakedArrivals(), ReactiveJamming(0.2, burst=3)
            )

        kwargs = dict(
            protocol_factory=cjz_factory(),
            adversary_factory=adversary,
            horizon=120,
            trials=3,
            seed=3,
        )
        reference = run_trials(backend="reference", **kwargs)
        lockstep = run_trials(backend="lockstep", **kwargs)
        for a, b in zip(reference, lockstep):
            assert a.summary == b.summary
            assert a.node_stats == b.node_stats

    def test_trial_blocking_stays_identical(self, monkeypatch):
        # Oversized studies run in contiguous trial blocks (bounded peak
        # memory); force two-trial blocks and require bit-identity.
        import repro.sim.backends.lockstep as lockstep_module

        monkeypatch.setattr(lockstep_module, "_BLOCK_TRIAL_SLOTS", 302)
        kwargs = dict(
            protocol_factory=cjz_factory(),
            adversary_factory=batch_jam_factory,
            horizon=150,
            trials=7,
            seed=5,
        )
        lockstep = run_trials(backend="lockstep", **kwargs)
        reference = run_trials(backend="reference", **kwargs)
        assert all(r.backend == "lockstep" for r in lockstep)
        for a, b in zip(reference, lockstep):
            assert a.summary == b.summary
            assert a.node_stats == b.node_stats
            assert a.prefix_successes == b.prefix_successes

    def test_pipeline_reduction_runs_on_lockstep(self):
        from repro.metrics.pipeline import MetricPipeline, SuccessTimelineReducer

        def study(backend):
            return run_trials(
                protocol_factory=cjz_factory(),
                adversary_factory=batch_jam_factory,
                horizon=100,
                trials=3,
                seed=4,
                backend=backend,
                pipeline=MetricPipeline([SuccessTimelineReducer()]),
            )

        assert study("lockstep").metrics() == study("reference").metrics()
