"""Tests for the experiment framework and smoke runs of the cheap experiments."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    all_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.report import render_report, run_all, write_report
from repro.errors import ConfigurationError, ExperimentError


SMOKE = ExperimentConfig(trials=2, seed=99, scale="smoke")


class TestConfig:
    def test_scale_presets(self):
        assert ExperimentConfig(scale="smoke").scale_factor < 1.0
        assert ExperimentConfig(scale="full").scale_factor > 1.0

    def test_horizon_and_count_scaling(self):
        config = ExperimentConfig(scale="full")
        assert config.horizon(1024) == 4096
        assert config.count(16) == 64

    def test_minimums_respected(self):
        config = ExperimentConfig(scale="smoke")
        assert config.horizon(100, minimum=256) == 256
        assert config.count(4, minimum=8) == 8

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(trials=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scale="huge")

    def test_with_scale(self):
        config = ExperimentConfig(trials=3, scale="quick").with_scale("smoke")
        assert config.scale == "smoke"
        assert config.trials == 3


class TestRegistry:
    def test_all_ten_experiments_registered(self):
        ids = all_experiments()
        assert ids == sorted(ids)
        assert {f"E{i}" for i in range(1, 11)} <= set(ids)

    def test_get_experiment_returns_instances(self):
        experiment = get_experiment("E1")
        assert isinstance(experiment, Experiment)
        assert experiment.experiment_id == "E1"
        assert experiment.paper_claim

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("E99")

    def test_every_experiment_has_unique_title(self):
        titles = [get_experiment(eid).title for eid in all_experiments()]
        assert len(titles) == len(set(titles))


class TestResultRendering:
    def make_result(self):
        result = ExperimentResult(
            experiment_id="EX", title="demo", paper_claim="claim"
        )
        result.findings["value"] = 1.5
        result.conclusion = "conclusion text"
        result.consistent_with_paper = True
        return result

    def test_render_text(self):
        text = self.make_result().render_text()
        assert "EX" in text and "conclusion text" in text and "CONSISTENT" in text

    def test_render_markdown(self):
        md = self.make_result().render_markdown()
        assert md.startswith("### EX")
        assert "`value` = 1.5" in md

    def test_render_report_summary_table(self):
        report = render_report([self.make_result()], ExperimentConfig())
        assert "| EX | demo | consistent |" in report


class TestSmokeRuns:
    """Run the cheapest experiments end-to-end at the smoke scale."""

    @pytest.mark.parametrize("experiment_id", ["E1", "E5", "E6", "E10"])
    def test_experiment_produces_tables_and_findings(self, experiment_id):
        result = run_experiment(experiment_id, SMOKE)
        assert result.experiment_id == experiment_id
        assert result.tables, "experiment produced no tables"
        assert result.findings, "experiment produced no findings"
        assert result.conclusion
        assert result.consistent_with_paper is not None

    def test_run_all_subset_and_write_report(self, tmp_path):
        results = run_all(SMOKE, experiment_ids=["E5"])
        path = write_report(tmp_path / "report.md", results, SMOKE)
        content = path.read_text()
        assert "E5" in content
        assert "measured vs paper" in content.lower()
