"""Unit tests for the analysis utilities."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ComparisonRow,
    Table,
    bootstrap_confidence_interval,
    compare_protocols,
    empirical_probability,
    fit_shape,
    format_table,
    growth_exponent,
    summarize,
)
from repro.analysis.comparison import comparison_table
from repro.analysis.fitting import best_fit
from repro.errors import AnalysisError


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_single_sample_has_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize([])

    def test_as_dict_keys(self):
        stats = summarize([1.0, 2.0])
        assert set(stats.as_dict()) == {"count", "mean", "std", "median", "min", "max", "p05", "p95"}


class TestBootstrap:
    def test_interval_contains_mean_for_tight_sample(self):
        low, high = bootstrap_confidence_interval([10.0] * 20, seed=0)
        assert low == pytest.approx(10.0)
        assert high == pytest.approx(10.0)

    def test_interval_ordering(self):
        values = list(np.random.default_rng(0).normal(5, 1, size=40))
        low, high = bootstrap_confidence_interval(values, seed=1)
        assert low < np.mean(values) < high

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            bootstrap_confidence_interval([])
        with pytest.raises(AnalysisError):
            bootstrap_confidence_interval([1.0], confidence=1.5)


class TestEmpiricalProbability:
    def test_basic(self):
        assert empirical_probability(3, 4) == 0.75

    def test_validation(self):
        with pytest.raises(AnalysisError):
            empirical_probability(5, 4)
        with pytest.raises(AnalysisError):
            empirical_probability(1, 0)


class TestFitShape:
    def test_recovers_linear_scale(self):
        xs = [2**k for k in range(4, 12)]
        ys = [3.0 * x for x in xs]
        fits = fit_shape(xs, ys, models=["linear", "log"])
        assert fits["linear"].scale == pytest.approx(3.0, rel=1e-6)
        assert fits["linear"].relative_error < 1e-9
        assert fits["log"].relative_error > fits["linear"].relative_error

    def test_x_over_log_identified(self):
        xs = [2**k for k in range(6, 16)]
        ys = [5.0 * x / math.log2(x) for x in xs]
        fits = fit_shape(xs, ys, models=["linear", "x_over_log"])
        assert fits["x_over_log"].relative_error < fits["linear"].relative_error

    def test_best_fit_picks_minimum_error(self):
        xs = [2**k for k in range(6, 14)]
        ys = [7.0 * math.log2(x) for x in xs]
        fits = fit_shape(xs, ys)
        assert best_fit(fits).model == "log"

    def test_predict(self):
        xs = [10, 20, 40, 80]
        ys = [2 * x for x in xs]
        fits = fit_shape(xs, ys, models=["linear"])
        assert fits["linear"].predict(100) == pytest.approx(200.0, rel=1e-6)

    def test_unknown_model_rejected(self):
        with pytest.raises(AnalysisError):
            fit_shape([1, 2], [1, 2], models=["cubic"])

    def test_too_few_points_rejected(self):
        with pytest.raises(AnalysisError):
            fit_shape([1], [1])


class TestGrowthExponent:
    def test_linear_data(self):
        xs = [2**k for k in range(4, 10)]
        assert growth_exponent(xs, [2.0 * x for x in xs]) == pytest.approx(1.0, abs=1e-6)

    def test_constant_data(self):
        xs = [2**k for k in range(4, 10)]
        assert growth_exponent(xs, [5.0] * len(xs)) == pytest.approx(0.0, abs=1e-6)

    def test_sqrt_data(self):
        xs = [2**k for k in range(4, 12)]
        assert growth_exponent(xs, [math.sqrt(x) for x in xs]) == pytest.approx(0.5, abs=1e-6)

    def test_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            growth_exponent([1, 2], [0, 1])


class TestTables:
    def test_add_row_validates_width(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(AnalysisError):
            table.add_row(1)

    def test_render_contains_title_and_cells(self):
        table = Table(title="My table", columns=["name", "value"])
        table.add_row("x", 1.5)
        text = table.render()
        assert "My table" in text
        assert "name" in text and "1.500" in text

    def test_add_dict_row(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_dict_row({"a": 1, "b": 2, "ignored": 3})
        assert table.rows[0] == (1, 2)

    def test_markdown_rendering(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(True, float("nan"))
        md = table.to_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert "yes" in md and "nan" in md

    def test_format_table_mismatched_row(self):
        with pytest.raises(AnalysisError):
            format_table("t", ["a"], [[1, 2]])


class TestComparison:
    def test_compare_requires_studies(self):
        with pytest.raises(AnalysisError):
            compare_protocols({})

    def test_comparison_table_rendering(self):
        row = ComparisonRow(
            protocol="p",
            workload="w",
            trials=2,
            mean_successes=1.0,
            mean_unfinished=0.0,
            mean_latency=3.0,
            p95_latency=5.0,
            mean_broadcasts_per_node=2.0,
        )
        table = comparison_table([row], title="cmp")
        assert "cmp" in table.render()
        assert table.rows[0][0] == "p"
