"""Unit tests for the h-backoff and h-batch subroutines."""

import numpy as np
import pytest

from repro.core.subroutines import HBackoff, HBatch
from repro.errors import ConfigurationError


def constant_budget(value):
    return lambda stage_length: value


class TestHBackoff:
    def test_sends_exactly_in_selected_slots_of_stage(self, rng):
        backoff = HBackoff(budget=constant_budget(1), rng=rng)
        # Stage 0 is the single local index 1 and the budget is 1, so the node
        # must send there.
        assert backoff.should_send(1) is True

    def test_number_of_sends_per_stage_bounded_by_budget(self, rng):
        budget_value = 3
        backoff = HBackoff(budget=constant_budget(budget_value), rng=rng)
        # Stage 4 covers local indices [16, 32).
        sends = sum(1 for i in range(16, 32) if backoff.should_send(i))
        assert 1 <= sends <= budget_value

    def test_budget_capped_by_stage_length(self, rng):
        backoff = HBackoff(budget=constant_budget(100), rng=rng)
        # Stage 1 covers [2, 4): only 2 slots exist.
        sends = sum(1 for i in range(2, 4) if backoff.should_send(i))
        assert sends <= 2

    def test_rejects_decreasing_indices(self, rng):
        backoff = HBackoff(budget=constant_budget(1), rng=rng)
        backoff.should_send(20)
        with pytest.raises(ConfigurationError):
            backoff.should_send(3)

    def test_rejects_non_positive_index(self, rng):
        backoff = HBackoff(budget=constant_budget(1), rng=rng)
        with pytest.raises(ConfigurationError):
            backoff.should_send(0)

    def test_stage_number_tracks_indices(self, rng):
        backoff = HBackoff(budget=constant_budget(1), rng=rng)
        backoff.should_send(1)
        assert backoff.current_stage == 0
        backoff.should_send(2)
        assert backoff.current_stage == 1
        backoff.should_send(9)
        assert backoff.current_stage == 3

    def test_expected_sends_up_to_accumulates_budgets(self, rng):
        backoff = HBackoff(budget=constant_budget(2), rng=rng)
        # Stages 0..3 cover local indices up to 15: four stages of budget 2.
        assert backoff.expected_sends_up_to(15) == 8

    def test_total_sends_are_logarithmic_with_constant_budget(self, rng):
        budget_value = 2
        backoff = HBackoff(budget=constant_budget(budget_value), rng=rng)
        horizon = 2**10
        sends = sum(1 for i in range(1, horizon + 1) if backoff.should_send(i))
        # At most budget per stage, ~log2(horizon)+1 stages.
        assert sends <= budget_value * (11)

    def test_deterministic_given_seed(self):
        a = HBackoff(constant_budget(2), np.random.default_rng(5))
        b = HBackoff(constant_budget(2), np.random.default_rng(5))
        pattern_a = [a.should_send(i) for i in range(1, 200)]
        pattern_b = [b.should_send(i) for i in range(1, 200)]
        assert pattern_a == pattern_b


class TestHBatch:
    def test_probability_capped_at_one(self, rng):
        batch = HBatch(rate=lambda x: 5.0, rng=rng)
        assert batch.probability(1) == 1.0

    def test_probability_follows_rate(self, rng):
        batch = HBatch(rate=lambda x: 1.0 / x, rng=rng)
        assert batch.probability(4) == pytest.approx(0.25)

    def test_rejects_non_positive_index(self, rng):
        batch = HBatch(rate=lambda x: 1.0 / x, rng=rng)
        with pytest.raises(ConfigurationError):
            batch.probability(0)

    def test_always_sends_with_probability_one(self, rng):
        batch = HBatch(rate=lambda x: 1.0, rng=rng)
        assert all(batch.should_send(i) for i in range(1, 50))

    def test_never_sends_with_tiny_probability(self, rng):
        batch = HBatch(rate=lambda x: 1e-12, rng=rng)
        assert not any(batch.should_send(i) for i in range(1, 200))

    def test_empirical_rate_matches_probability(self):
        rng = np.random.default_rng(7)
        batch = HBatch(rate=lambda x: 0.3, rng=rng)
        draws = sum(1 for _ in range(5000) if batch.should_send(10))
        assert 0.25 < draws / 5000 < 0.35
