"""Unit tests for workload specs and named scenarios."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    STANDARD_SCENARIOS,
    WorkloadSpec,
    build_adversary_factory,
    get_scenario,
)


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec(horizon=100)
        assert spec.arrival_kind == "batch"
        assert spec.jamming_kind == "none"
        assert spec.name == "batch+none"

    def test_label_overrides_name(self):
        spec = WorkloadSpec(horizon=100, label="my-load")
        assert spec.name == "my-load"

    def test_invalid_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(horizon=100, arrival_kind="magic")
        with pytest.raises(ConfigurationError):
            WorkloadSpec(horizon=100, jamming_kind="magic")
        with pytest.raises(ConfigurationError):
            WorkloadSpec(horizon=0)


class TestBuildAdversaryFactory:
    def drive(self, spec, slots=None):
        adversary = build_adversary_factory(spec)()
        adversary.setup(np.random.default_rng(0), spec.horizon)
        slots = slots or spec.horizon
        actions = [adversary.action_for_slot(s) for s in range(1, slots + 1)]
        return adversary, actions

    def test_batch_spec(self):
        spec = WorkloadSpec(
            horizon=64, arrival_kind="batch", arrival_params={"count": 5, "slot": 3}
        )
        _, actions = self.drive(spec)
        assert actions[2].arrivals == 5
        assert sum(a.arrivals for a in actions) == 5

    def test_poisson_spec(self):
        spec = WorkloadSpec(
            horizon=2000, arrival_kind="poisson", arrival_params={"rate": 0.1}
        )
        _, actions = self.drive(spec)
        total = sum(a.arrivals for a in actions)
        assert 100 < total < 320

    def test_uniform_spec(self):
        spec = WorkloadSpec(
            horizon=256,
            arrival_kind="uniform",
            arrival_params={"total": 30, "start": 1, "end": 128},
        )
        _, actions = self.drive(spec)
        assert sum(a.arrivals for a in actions) == 30
        assert sum(a.arrivals for a in actions[128:]) == 0

    def test_bursty_spec(self):
        spec = WorkloadSpec(
            horizon=512,
            arrival_kind="bursty",
            arrival_params={"burst_size": 4, "period": 128},
        )
        _, actions = self.drive(spec)
        assert sum(a.arrivals for a in actions) >= 4

    def test_random_jamming_spec(self):
        spec = WorkloadSpec(
            horizon=2000,
            arrival_kind="none",
            jamming_kind="random",
            jamming_params={"fraction": 0.5},
        )
        _, actions = self.drive(spec)
        jams = sum(1 for a in actions if a.jam)
        assert 800 < jams < 1200

    def test_periodic_jamming_spec(self):
        spec = WorkloadSpec(
            horizon=100,
            arrival_kind="none",
            jamming_kind="periodic",
            jamming_params={"period": 10},
        )
        _, actions = self.drive(spec)
        assert sum(1 for a in actions if a.jam) == 10

    def test_factory_produces_fresh_instances(self):
        spec = WorkloadSpec(horizon=64)
        factory = build_adversary_factory(spec)
        assert factory() is not factory()
        assert factory().name == spec.name


class TestScenarios:
    def test_standard_scenarios_present(self):
        assert {"ethernet-burst", "wireless-interference", "lock-convoy", "adversarial-jam"} <= set(
            STANDARD_SCENARIOS
        )

    def test_get_scenario(self):
        scenario = get_scenario("lock-convoy")
        assert scenario.spec.arrival_kind == "batch"
        assert scenario.description

    def test_get_scenario_unknown(self):
        with pytest.raises(ConfigurationError):
            get_scenario("does-not-exist")

    def test_all_scenario_specs_buildable(self):
        for scenario in STANDARD_SCENARIOS.values():
            adversary = build_adversary_factory(scenario.spec)()
            adversary.setup(np.random.default_rng(0), scenario.spec.horizon)
            action = adversary.action_for_slot(1)
            assert action.arrivals >= 0
