"""Unit and integration tests for the simulation engine, node wrapper and runner."""

import numpy as np
import pytest

from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    FrontLoadedJamming,
    NoJamming,
    ScheduleAdversary,
)
from repro.core import cjz_factory
from repro.errors import ConfigurationError
from repro.metrics import SuccessTimeline, WindowedSuccessCounter
from repro.protocols import ProbabilityBackoff, SlottedAloha, make_factory
from repro.protocols.base import Protocol
from repro.sim import Simulator, SimulatorConfig, TrialRunner, run_trials
from repro.sim.events import EventTrace
from repro.sim.node import Node
from repro.types import Feedback, SlotOutcome, SlotRecord


class AlwaysSend(Protocol):
    """Test protocol that broadcasts in every slot."""

    name = "always-send"

    def on_arrival(self, slot, rng):
        self.arrival = slot

    def wants_to_broadcast(self, slot):
        return True

    def on_feedback(self, slot, feedback, broadcast, success_was_own):
        pass


class NeverSend(Protocol):
    """Test protocol that never broadcasts."""

    name = "never-send"

    def on_arrival(self, slot, rng):
        pass

    def wants_to_broadcast(self, slot):
        return False

    def on_feedback(self, slot, feedback, broadcast, success_was_own):
        pass


class TestNode:
    def test_node_counts_broadcasts(self, rng):
        node = Node(0, 1, AlwaysSend(), rng)
        assert node.decide_broadcast(1)
        assert node.decide_broadcast(2)
        assert node.stats.broadcast_count == 2

    def test_node_deactivates_on_own_success(self, rng):
        node = Node(3, 1, AlwaysSend(), rng)
        node.decide_broadcast(1)
        node.deliver_feedback(1, Feedback.SUCCESS, broadcast=True, successful_node=3)
        assert not node.active
        assert node.stats.success_slot == 1
        assert node.decide_broadcast(2) is False

    def test_other_nodes_success_keeps_node_active(self, rng):
        node = Node(3, 1, AlwaysSend(), rng)
        node.deliver_feedback(1, Feedback.SUCCESS, broadcast=False, successful_node=9)
        assert node.active


class TestEventTrace:
    def make_record(self, slot, outcome=SlotOutcome.SILENCE, jammed=False, arrivals=0,
                    active=0, winner=None, broadcasters=()):
        return SlotRecord(
            slot=slot,
            broadcasters=broadcasters,
            jammed=jammed,
            outcome=outcome,
            successful_node=winner,
            active_nodes=active,
            arrivals=arrivals,
        )

    def test_append_enforces_order(self):
        trace = EventTrace()
        trace.append(self.make_record(1))
        with pytest.raises(ValueError):
            trace.append(self.make_record(3))

    def test_queries(self):
        trace = EventTrace()
        trace.append(self.make_record(1, outcome=SlotOutcome.SUCCESS, winner=0, active=2,
                                      arrivals=2, broadcasters=(0,)))
        trace.append(self.make_record(2, jammed=True, outcome=SlotOutcome.COLLISION, active=1))
        trace.append(self.make_record(3))
        assert trace.success_slots() == [1]
        assert trace.jammed_slots() == [2]
        assert trace.active_slot_count() == 2
        assert trace.arrivals_count() == 2
        assert trace.first_success_slot() == 1
        assert trace.successes_in_window(1, 3) == 1
        assert trace.record_for_slot(2).jammed


class TestSimulatorBasics:
    def test_single_node_succeeds_immediately(self):
        simulator = Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=ScheduleAdversary.single_batch(1, slot=1),
            config=SimulatorConfig(horizon=10),
            seed=1,
        )
        result = simulator.run()
        assert result.total_successes == 1
        assert result.node_stats[0].success_slot == 1
        assert result.total_active_slots == 1

    def test_two_always_senders_never_succeed(self):
        simulator = Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=ScheduleAdversary.single_batch(2, slot=1),
            config=SimulatorConfig(horizon=20),
            seed=1,
        )
        result = simulator.run()
        assert result.total_successes == 0
        assert result.summary.collisions == 20
        assert result.unfinished_nodes == 2

    def test_never_senders_produce_silent_active_slots(self):
        simulator = Simulator(
            protocol_factory=make_factory(NeverSend),
            adversary=ScheduleAdversary.single_batch(3, slot=5),
            config=SimulatorConfig(horizon=10),
            seed=1,
        )
        result = simulator.run()
        assert result.total_successes == 0
        assert result.total_active_slots == 6  # slots 5..10
        assert result.summary.silent_slots == 10

    def test_jammed_slot_blocks_lone_sender(self):
        adversary = ScheduleAdversary(arrivals={1: 1}, jammed_slots=[1, 2, 3])
        simulator = Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=adversary,
            config=SimulatorConfig(horizon=5),
            seed=1,
        )
        result = simulator.run()
        assert result.node_stats[0].success_slot == 4
        assert result.total_jammed_slots == 3

    def test_prefix_arrays_lengths_and_monotonicity(self):
        result = Simulator(
            protocol_factory=make_factory(SlottedAloha, 0.2),
            adversary=ScheduleAdversary.single_batch(4, slot=1),
            config=SimulatorConfig(horizon=50),
            seed=3,
        ).run()
        assert len(result.prefix_active) == result.horizon + 1
        for arr in (result.prefix_active, result.prefix_arrivals,
                    result.prefix_jammed, result.prefix_successes):
            assert all(b >= a for a, b in zip(arr, arr[1:]))
        assert result.prefix_arrivals[-1] == 4

    def test_stop_when_drained(self):
        result = Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=ScheduleAdversary.single_batch(1, slot=1),
            config=SimulatorConfig(horizon=1000, stop_when_drained=True),
            seed=1,
        ).run()
        assert result.horizon == 1
        assert result.total_successes == 1

    def test_stop_when_drained_waits_for_future_arrivals(self):
        # A momentarily empty system must not stop the run while the
        # adversary can still inject (the docstring's promise): the second
        # arrival at slot 50 must still be served.
        result = Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=ScheduleAdversary(arrivals={1: 1, 50: 1}),
            config=SimulatorConfig(horizon=1000, stop_when_drained=True),
            seed=1,
        ).run()
        assert result.horizon == 50
        assert result.total_successes == 2

    def test_stop_when_drained_conservative_for_open_ended_arrivals(self):
        from repro.adversary.base import ArrivalStrategy
        from repro.adversary import ComposedAdversary as Composed, NoJamming as NoJam

        class OpenEnded(ArrivalStrategy):
            name = "open-ended"

            def arrivals_for_slot(self, slot):
                return 1 if slot == 1 else 0

            # exhausted() deliberately left at the conservative default False

        result = Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=Composed(OpenEnded(), NoJam()),
            config=SimulatorConfig(horizon=40, stop_when_drained=True),
            seed=1,
        ).run()
        # The strategy never declares exhaustion, so the run must go the
        # full horizon even though the system drained in slot 1.
        assert result.horizon == 40
        assert result.total_successes == 1

    def test_keep_trace(self):
        result = Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=ScheduleAdversary.single_batch(1, slot=1),
            config=SimulatorConfig(horizon=5, keep_trace=True),
            seed=1,
        ).run()
        assert result.trace is not None
        assert len(result.trace) == 5

    def test_max_nodes_guard(self):
        with pytest.raises(ConfigurationError):
            Simulator(
                protocol_factory=make_factory(AlwaysSend),
                adversary=ScheduleAdversary.single_batch(100, slot=1),
                config=SimulatorConfig(horizon=5, max_nodes=10),
                seed=1,
            ).run()

    def test_same_seed_reproducible(self):
        def run_once():
            return Simulator(
                protocol_factory=make_factory(ProbabilityBackoff, 1.0),
                adversary=ComposedAdversary(BatchArrivals(16), NoJamming()),
                config=SimulatorConfig(horizon=300),
                seed=42,
            ).run()

        first, second = run_once(), run_once()
        assert first.total_successes == second.total_successes
        assert first.prefix_successes == second.prefix_successes

    def test_different_seeds_differ(self):
        def run_once(seed):
            return Simulator(
                protocol_factory=make_factory(ProbabilityBackoff, 1.0),
                adversary=ComposedAdversary(BatchArrivals(16), NoJamming()),
                config=SimulatorConfig(horizon=300),
                seed=seed,
            ).run()

        assert run_once(1).prefix_successes != run_once(2).prefix_successes

    def test_collectors_receive_slots(self):
        timeline = SuccessTimeline()
        window = WindowedSuccessCounter(window=5)
        result = Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=ScheduleAdversary.single_batch(1, slot=3),
            config=SimulatorConfig(horizon=10),
            collectors=[timeline, window],
            seed=1,
        ).run()
        assert timeline.success_slots == [3]
        assert sum(window.counts) == 1
        assert result.total_successes == 1

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SimulatorConfig(horizon=0)


class TestResultHelpers:
    def make_result(self):
        return Simulator(
            protocol_factory=make_factory(AlwaysSend),
            adversary=ScheduleAdversary.single_batch(1, slot=2),
            config=SimulatorConfig(horizon=10),
            seed=1,
        ).run()

    def test_classical_throughput(self):
        result = self.make_result()
        # One arrival, one active slot -> throughput 1 at the horizon.
        assert result.classical_throughput() == pytest.approx(1.0)

    def test_classical_throughput_inactive_prefix_is_inf(self):
        result = self.make_result()
        assert result.classical_throughput(1) == float("inf")

    def test_latencies_and_describe(self):
        result = self.make_result()
        assert result.latencies() == [1]
        assert result.mean_latency() == 1.0
        assert "always-send" in result.describe()

    def test_broadcast_counts(self):
        result = self.make_result()
        assert result.broadcast_counts() == [1]


class TestTrialRunner:
    def test_run_trials_returns_requested_count(self):
        study = run_trials(
            protocol_factory=make_factory(ProbabilityBackoff, 1.0),
            adversary_factory=lambda: ComposedAdversary(BatchArrivals(8), NoJamming()),
            horizon=200,
            trials=4,
            seed=7,
        )
        assert study.trials == 4

    def test_study_metrics(self):
        study = run_trials(
            protocol_factory=make_factory(AlwaysSend),
            adversary_factory=lambda: ScheduleAdversary.single_batch(1, slot=1),
            horizon=10,
            trials=3,
            seed=7,
        )
        assert study.mean(lambda r: r.total_successes) == 1.0
        assert study.std(lambda r: r.total_successes) == 0.0
        assert study.fraction_satisfying(lambda r: r.total_successes == 1) == 1.0
        row = study.summary_row()
        assert row["trials"] == 3.0

    def test_trials_must_be_positive(self):
        runner = TrialRunner(
            make_factory(AlwaysSend),
            lambda: ScheduleAdversary.single_batch(1),
            SimulatorConfig(horizon=5),
        )
        with pytest.raises(ConfigurationError):
            runner.run(trials=0)

    def test_trials_are_reproducible_with_same_seed(self):
        def study(seed):
            return run_trials(
                protocol_factory=make_factory(ProbabilityBackoff, 1.0),
                adversary_factory=lambda: ComposedAdversary(BatchArrivals(8), NoJamming()),
                horizon=200,
                trials=2,
                seed=seed,
            )

        a, b = study(5), study(5)
        assert [r.total_successes for r in a] == [r.total_successes for r in b]


class TestEndToEndProtocols:
    def test_cjz_batch_drains_without_jamming(self):
        study = run_trials(
            protocol_factory=cjz_factory(),
            adversary_factory=lambda: ComposedAdversary(BatchArrivals(24), NoJamming()),
            horizon=2048,
            trials=2,
            seed=11,
        )
        assert study.mean(lambda r: r.unfinished_nodes) == 0.0
        assert study.mean(lambda r: r.total_successes) == 24.0

    def test_cjz_survives_front_loaded_jamming(self):
        study = run_trials(
            protocol_factory=cjz_factory(),
            adversary_factory=lambda: ComposedAdversary(
                BatchArrivals(8), FrontLoadedJamming(64)
            ),
            horizon=2048,
            trials=2,
            seed=11,
        )
        assert study.mean(lambda r: r.unfinished_nodes) == 0.0
