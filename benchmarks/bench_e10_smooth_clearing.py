"""Benchmark E10: clearing under a smooth adversary (Corollary 3.6).

Regenerates experiment E10 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e10_smooth_clearing(benchmark):
    run_and_record(benchmark, "E10")
