"""Benchmark E2: throughput vs jamming-severity trade-off (Theorems 1.2 + 1.3).

Regenerates experiment E2 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e02_tradeoff_curve(benchmark):
    run_and_record(benchmark, "E2")
