"""Benchmark E8: baseline comparison on motivating scenarios.

Regenerates experiment E8 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e08_baselines(benchmark):
    run_and_record(benchmark, "E8")
