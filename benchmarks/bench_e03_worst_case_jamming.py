"""Benchmark E3: Θ(t/log t) deliveries under constant-fraction jamming.

Regenerates experiment E3 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e03_worst_case_jamming(benchmark):
    run_and_record(benchmark, "E3")
