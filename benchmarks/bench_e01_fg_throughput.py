"""Benchmark E1: (f,g)-throughput verification (Theorem 1.2 / Definition 1.1).

Regenerates experiment E1 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e01_fg_throughput(benchmark):
    run_and_record(benchmark, "E1")
