"""Benchmark E9: energy complexity (channel accesses per node).

Regenerates experiment E9 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e09_energy(benchmark):
    run_and_record(benchmark, "E9")
