"""Micro-benchmarks of the study-level backends.

Tracks the cost of whole multi-trial studies across the backend ladder
(reference → vectorized → batched-study) so study-level regressions are
visible independently of the per-experiment benchmarks.  The speedup floors
asserted here are deliberately looser than the figures recorded in the
committed ``BENCH_*.json`` (generated via ``python -m repro.cli bench``) to
stay robust on noisy shared runners.
"""

from __future__ import annotations

import time

from repro.adversary import BatchArrivals, ComposedAdversary, RandomFractionJamming
from repro.protocols import SlottedAloha, make_factory
from repro.sim import run_trials

TRIALS = 300
HORIZON = 192
NODES = 3


def _study(backend: str, trials: int = TRIALS):
    return run_trials(
        protocol_factory=make_factory(SlottedAloha, 0.05),
        adversary_factory=lambda: ComposedAdversary(
            BatchArrivals(NODES), RandomFractionJamming(0.25)
        ),
        horizon=HORIZON,
        trials=trials,
        seed=1,
        backend=backend,
    )


def test_study_vectorized_backend(benchmark):
    study = benchmark(lambda: _study("vectorized"))
    assert all(result.backend == "vectorized" for result in study)


def test_study_batched_backend(benchmark):
    study = benchmark(lambda: _study("batched-study"))
    assert all(result.backend == "batched-study" for result in study)


def test_batched_study_speedup_floor():
    """The batched study kernel must beat the per-trial vectorized path by a
    comfortable margin on an e01-style study (the committed bench records the
    full figure; this floor only guards against collapses)."""

    def best_of(backend: str, repeats: int = 3) -> float:
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            _study(backend)
            timings.append(time.perf_counter() - start)
        return min(timings)

    _study("batched-study", trials=8)  # warm-up (seed-path self checks)
    _study("vectorized", trials=8)
    vectorized_time = best_of("vectorized")
    batched_time = best_of("batched-study")
    speedup = vectorized_time / batched_time
    assert speedup >= 3.0, (
        f"batched-study speedup {speedup:.1f}x below the 3x regression floor"
    )


def test_batched_study_matches_vectorized_results():
    vectorized = _study("vectorized", trials=12)
    batched = _study("batched-study", trials=12)
    assert [r.summary for r in vectorized] == [r.summary for r in batched]
    assert [r.node_stats for r in vectorized] == [r.node_stats for r in batched]
