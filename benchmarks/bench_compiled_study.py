"""Micro-benchmarks of the compiled (``lockstep-jit``) study tier.

Equality against the reference and numpy-lockstep tiers is asserted
unconditionally — the compiled interpreter must be seed-for-seed identical
whether it runs through numba or its pure-python source form.  The ≥10x
speedup floors over the numpy lockstep kernel only apply when numba is
actually installed (the CI numba leg); without it the tier demotes to the
numpy kernel and the floors are skipped.

The committed ``BENCH_*.json`` records the full figures; the floors here
only guard against collapses on noisy runners.
"""

from __future__ import annotations

import time

import pytest

from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    RandomFractionJamming,
    ReactiveJamming,
    UniformRandomArrivals,
)
from repro.core import cjz_factory
from repro.sim import run_trials
from repro.sim.backends.compiled import interpreter_mode

TRIALS = 40
HORIZON = 256
NODES = 32

HAVE_NUMBA = interpreter_mode() == "numba"
numba_only = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba not installed; compiled tier demotes to numpy"
)


def _batch_jam_study(backend: str, trials: int = TRIALS):
    """e01 miniature: batch arrivals under 25% random jamming."""
    return run_trials(
        protocol_factory=cjz_factory(),
        adversary_factory=lambda: ComposedAdversary(
            BatchArrivals(NODES), RandomFractionJamming(0.25)
        ),
        horizon=HORIZON,
        trials=trials,
        seed=1,
        backend=backend,
    )


def _reactive_study(backend: str, trials: int = TRIALS):
    """e03 miniature: spread arrivals against the adaptive reactive jammer."""
    return run_trials(
        protocol_factory=cjz_factory(),
        adversary_factory=lambda: ComposedAdversary(
            UniformRandomArrivals(NODES, (1, HORIZON // 4)),
            ReactiveJamming(0.25, burst=8),
        ),
        horizon=HORIZON,
        trials=trials,
        seed=1,
        backend=backend,
    )


def test_study_compiled_backend(benchmark):
    expected = "lockstep-jit" if interpreter_mode() != "off" else "lockstep"
    _batch_jam_study("lockstep-jit", trials=4)  # warm-up: JIT compile
    study = benchmark(lambda: _batch_jam_study("lockstep-jit"))
    assert all(result.backend == expected for result in study)


def test_study_compiled_reactive_backend(benchmark):
    expected = "lockstep-jit" if interpreter_mode() != "off" else "lockstep"
    _reactive_study("lockstep-jit", trials=4)
    study = benchmark(lambda: _reactive_study("lockstep-jit"))
    assert all(result.backend == expected for result in study)


def _per_trial_best(run, backend: str, trials: int, repeats: int = 3) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        run(backend, trials=trials)
        timings.append(time.perf_counter() - start)
    return min(timings) / trials


@numba_only
def test_compiled_speedup_floor_batch_jam():
    """Acceptance: the JIT runs e01's CJZ study ≥10x faster than numpy lockstep."""
    _batch_jam_study("lockstep-jit", trials=4)  # warm-up: compile + self-checks
    _batch_jam_study("lockstep", trials=4)
    lockstep = _per_trial_best(_batch_jam_study, "lockstep", trials=TRIALS)
    compiled = _per_trial_best(_batch_jam_study, "lockstep-jit", trials=TRIALS)
    speedup = lockstep / compiled
    assert speedup >= 10.0, (
        f"compiled speedup {speedup:.1f}x over lockstep below the 10x floor"
    )


@numba_only
def test_compiled_speedup_floor_reactive():
    """The adaptive-jammer path must also clear the 10x floor."""
    _reactive_study("lockstep-jit", trials=4)
    _reactive_study("lockstep", trials=4)
    lockstep = _per_trial_best(_reactive_study, "lockstep", trials=TRIALS)
    compiled = _per_trial_best(_reactive_study, "lockstep-jit", trials=TRIALS)
    speedup = lockstep / compiled
    assert speedup >= 10.0, (
        f"compiled reactive speedup {speedup:.1f}x below the 10x floor"
    )


def test_compiled_matches_reference_results():
    reference = _batch_jam_study("reference", trials=6)
    compiled = _batch_jam_study("lockstep-jit", trials=6)
    assert [r.summary for r in reference] == [r.summary for r in compiled]
    assert [r.node_stats for r in reference] == [r.node_stats for r in compiled]


def test_compiled_matches_lockstep_reactive_results():
    lockstep = _reactive_study("lockstep", trials=6)
    compiled = _reactive_study("lockstep-jit", trials=6)
    assert [r.summary for r in lockstep] == [r.summary for r in compiled]
    assert [r.node_stats for r in lockstep] == [r.node_stats for r in compiled]
