"""Benchmark E4: constant throughput without jamming (Bender et al. regime).

Regenerates experiment E4 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e04_no_jamming(benchmark):
    run_and_record(benchmark, "E4")
