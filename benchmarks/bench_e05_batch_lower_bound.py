"""Benchmark E5: Claim 3.5.1 — 1/i-batch needs ω(n) slots.

Regenerates experiment E5 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e05_batch_lower_bound(benchmark):
    run_and_record(benchmark, "E5")
