"""Benchmark E6: truncated batch robustness under jamming.

Regenerates experiment E6 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e06_batch_robustness(benchmark):
    run_and_record(benchmark, "E6")
