"""Shared helpers for the benchmark harness.

Each ``bench_eXX_*.py`` file regenerates one experiment of the per-experiment
index in DESIGN.md (the paper is theory-only, so experiments stand in for its
tables and figures).  The benchmark fixture measures the wall-clock cost of
regenerating the experiment at the ``smoke`` scale (so the whole harness runs
in minutes); the experiment's verdict and headline findings are attached to
``benchmark.extra_info`` so the bench output doubles as a miniature
reproduction report.  The full-scale numbers quoted in EXPERIMENTS.md are
produced by ``python -m repro.cli report --scale full``.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_experiment


BENCH_CONFIG = ExperimentConfig(trials=2, seed=20210219, scale="smoke")


def run_and_record(benchmark, experiment_id: str, trials: int = 2) -> None:
    """Run one experiment under the benchmark timer and record its findings."""
    config = ExperimentConfig(trials=trials, seed=BENCH_CONFIG.seed, scale="smoke")
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, config), rounds=1, iterations=1
    )
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["title"] = result.title
    benchmark.extra_info["consistent_with_paper"] = result.consistent_with_paper
    for key, value in list(result.findings.items())[:8]:
        benchmark.extra_info[f"finding:{key}"] = value


@pytest.fixture
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG
