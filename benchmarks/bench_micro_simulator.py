"""Micro-benchmarks of the simulation substrate itself.

These do not correspond to a paper claim; they track the cost of the building
blocks (channel resolution, a full protocol slot loop, subroutine decisions) so
performance regressions in the substrate are visible independently of the
experiment-level benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.adversary import BatchArrivals, ComposedAdversary, RandomFractionJamming
from repro.channel import MultipleAccessChannel
from repro.core import AlgorithmParameters, cjz_factory
from repro.core.subroutines import HBackoff
from repro.functions import constant_g
from repro.protocols import WindowedBinaryExponentialBackoff, make_factory
from repro.sim import Simulator, SimulatorConfig


def test_channel_resolution(benchmark):
    channel = MultipleAccessChannel()

    def resolve_many():
        for i in range(1000):
            channel.resolve([1, 2] if i % 3 == 0 else [i], jammed=i % 7 == 0)

    benchmark(resolve_many)


def test_cjz_batch_simulation(benchmark):
    def run():
        return Simulator(
            protocol_factory=cjz_factory(AlgorithmParameters.from_g(constant_g(4.0))),
            adversary=ComposedAdversary(BatchArrivals(32), RandomFractionJamming(0.25)),
            config=SimulatorConfig(horizon=2048),
            seed=1,
        ).run()

    result = benchmark(run)
    assert result.total_successes == 32


def test_beb_batch_simulation(benchmark):
    def run():
        return Simulator(
            protocol_factory=make_factory(WindowedBinaryExponentialBackoff),
            adversary=ComposedAdversary(BatchArrivals(32), RandomFractionJamming(0.25)),
            config=SimulatorConfig(horizon=2048),
            seed=1,
        ).run()

    benchmark(run)


def test_backoff_subroutine_decisions(benchmark):
    params = AlgorithmParameters.from_g(constant_g(4.0))

    def decide():
        backoff = HBackoff(params.backoff_budget, np.random.default_rng(3))
        return sum(1 for i in range(1, 4096) if backoff.should_send(i))

    benchmark(decide)
