"""Micro-benchmarks of the simulation substrate itself.

These do not correspond to a paper claim; they track the cost of the building
blocks (channel resolution, a full protocol slot loop, subroutine decisions) so
performance regressions in the substrate are visible independently of the
experiment-level benchmarks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.adversary import BatchArrivals, ComposedAdversary, RandomFractionJamming
from repro.channel import MultipleAccessChannel
from repro.core import AlgorithmParameters, cjz_factory
from repro.core.subroutines import HBackoff
from repro.functions import constant_g
from repro.protocols import SlottedAloha, WindowedBinaryExponentialBackoff, make_factory
from repro.sim import Simulator, SimulatorConfig


def test_channel_resolution(benchmark):
    channel = MultipleAccessChannel()

    def resolve_many():
        for i in range(1000):
            channel.resolve([1, 2] if i % 3 == 0 else [i], jammed=i % 7 == 0)

    benchmark(resolve_many)


def test_cjz_batch_simulation(benchmark):
    def run():
        return Simulator(
            protocol_factory=cjz_factory(AlgorithmParameters.from_g(constant_g(4.0))),
            adversary=ComposedAdversary(BatchArrivals(32), RandomFractionJamming(0.25)),
            config=SimulatorConfig(horizon=2048),
            seed=1,
        ).run()

    result = benchmark(run)
    assert result.total_successes == 32


def test_beb_batch_simulation(benchmark):
    def run():
        return Simulator(
            protocol_factory=make_factory(WindowedBinaryExponentialBackoff),
            adversary=ComposedAdversary(BatchArrivals(32), RandomFractionJamming(0.25)),
            config=SimulatorConfig(horizon=2048),
            seed=1,
        ).run()

    benchmark(run)


def _aloha_run(backend: str, horizon: int = 4096, count: int = 64):
    return Simulator(
        protocol_factory=make_factory(SlottedAloha, 0.1),
        adversary=ComposedAdversary(BatchArrivals(count), RandomFractionJamming(0.25)),
        config=SimulatorConfig(horizon=horizon),
        seed=1,
        backend=backend,
    ).run()


def test_aloha_batch_reference_backend(benchmark):
    result = benchmark(lambda: _aloha_run("reference"))
    assert result.backend == "reference"


def test_aloha_batch_vectorized_backend(benchmark):
    result = benchmark(lambda: _aloha_run("vectorized"))
    assert result.backend == "vectorized"


def test_vectorized_speedup_floor():
    """The vectorized kernel must beat the reference by >= 5x on an eligible
    protocol at horizon >= 2048 (the acceptance floor for the backend split)."""

    def best_of(backend: str, repeats: int = 3) -> float:
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            _aloha_run(backend, horizon=8192)
            timings.append(time.perf_counter() - start)
        return min(timings)

    reference_time = best_of("reference")
    vectorized_time = best_of("vectorized")
    speedup = reference_time / vectorized_time
    assert _aloha_run("reference", horizon=8192).summary == _aloha_run(
        "vectorized", horizon=8192
    ).summary
    assert speedup >= 5.0, f"vectorized speedup {speedup:.1f}x below the 5x floor"


def test_backoff_subroutine_decisions(benchmark):
    params = AlgorithmParameters.from_g(constant_g(4.0))

    def decide():
        backoff = HBackoff(params.backoff_budget, np.random.default_rng(3))
        return sum(1 for i in range(1, 4096) if backoff.should_send(i))

    benchmark(decide)
