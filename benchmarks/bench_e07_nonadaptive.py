"""Benchmark E7: necessity of adaptive backoff (Theorem 4.2 / Lemma 4.1).

Regenerates experiment E7 from the DESIGN.md per-experiment index at the
smoke scale and records its headline findings in the benchmark's extra info.
"""

from .conftest import run_and_record


def test_e07_nonadaptive(benchmark):
    run_and_record(benchmark, "E7")
