"""Micro-benchmarks of fused multi-study sweep dispatch.

Equality against per-point dispatch is asserted unconditionally — a fused
sweep must be seed-for-seed identical to running every point on its own,
whatever speedup it buys.  The ≥3x speedup floor is measured on a smaller
grid than the committed ``BENCH_*.json``'s ``sweep-fused-grid`` record (64
points) to keep CI fast; as everywhere in this suite the floor only guards
against collapses on noisy runners, the committed bench records the full
figure.
"""

from __future__ import annotations

import time

from repro.spec import StudyPlan, StudySpec, Sweep, sweep_rows

POINTS_AXES = {
    "adversary.jamming.params.fraction": [0.0, 0.15, 0.3],
    "seed": [101, 102, 103, 104, 105, 106, 107, 108],
}

TIMING_FIELDS = {
    "mean_wall_time_s",
    "mean_slots_per_s",
    "dispatch_seconds",
    "run_seconds",
}


def _sweep() -> Sweep:
    base = StudySpec.from_dict(
        {
            "protocol": {
                "kind": "cjz",
                "params": {"g": {"kind": "constant", "value": 4.0}},
            },
            "adversary": {
                "kind": "composed",
                "arrivals": {"kind": "batch", "params": {"count": 12}},
                "jamming": {
                    "kind": "random-fraction",
                    "params": {"fraction": 0.0},
                },
            },
            "horizon": 192,
            "trials": 2,
            "seed": 101,
            "backend": "lockstep",
        }
    )
    return Sweep(base, POINTS_AXES)


def _strip_timing(rows):
    return [
        {key: value for key, value in row.items() if key not in TIMING_FIELDS}
        for row in rows
    ]


def test_fused_rows_equal_per_point_rows():
    sweep = _sweep()
    fused = StudyPlan.from_sweep(sweep).run(fuse=True)
    serial = StudyPlan.from_sweep(sweep).run(fuse=False)
    assert _strip_timing(sweep_rows(fused)) == _strip_timing(sweep_rows(serial))


def test_fused_sweep_speedup_floor():
    """Fused dispatch must beat per-point dispatch by at least 3x on a
    small-trial grid (the regime it exists for: fixed per-point costs
    dominating the simulation)."""
    sweep = _sweep()
    StudyPlan.from_sweep(sweep).run(fuse=True)  # warm-up (seed self checks)

    def best_of(fuse: bool, repeats: int = 3) -> float:
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            StudyPlan.from_sweep(sweep).run(fuse=fuse)
            timings.append(time.perf_counter() - start)
        return min(timings)

    fused_s = best_of(True)
    serial_s = best_of(False)
    speedup = serial_s / fused_s
    assert speedup >= 3.0, (
        f"fused sweep dispatch speedup collapsed: {speedup:.2f}x "
        f"(fused {fused_s:.3f}s vs per-point {serial_s:.3f}s)"
    )
