"""Micro-benchmarks of the lockstep study kernel on the paper's own protocol.

The CJZ protocol is feedback-driven, so the batched/vectorized array kernels
cannot run it — before the lockstep kernel its studies were stuck on the
per-node reference loop.  These benchmarks track the lockstep tier on
e01/e03-style CJZ studies and assert the ≥5x speedup floor the issue's
acceptance criterion requires (the committed ``BENCH_*.json`` records the
full figure; the floor only guards against collapses on noisy runners).
"""

from __future__ import annotations

import time

from repro.adversary import (
    BatchArrivals,
    ComposedAdversary,
    RandomFractionJamming,
    ReactiveJamming,
    UniformRandomArrivals,
)
from repro.core import cjz_factory
from repro.sim import run_trials

TRIALS = 40
HORIZON = 256
NODES = 32


def _batch_jam_study(backend: str, trials: int = TRIALS):
    """e01 miniature: batch arrivals under 25% random jamming."""
    return run_trials(
        protocol_factory=cjz_factory(),
        adversary_factory=lambda: ComposedAdversary(
            BatchArrivals(NODES), RandomFractionJamming(0.25)
        ),
        horizon=HORIZON,
        trials=trials,
        seed=1,
        backend=backend,
    )


def _reactive_study(backend: str, trials: int = TRIALS):
    """e03 miniature: spread arrivals against the adaptive reactive jammer."""
    return run_trials(
        protocol_factory=cjz_factory(),
        adversary_factory=lambda: ComposedAdversary(
            UniformRandomArrivals(NODES, (1, HORIZON // 4)),
            ReactiveJamming(0.25, burst=8),
        ),
        horizon=HORIZON,
        trials=trials,
        seed=1,
        backend=backend,
    )


def test_study_lockstep_backend(benchmark):
    study = benchmark(lambda: _batch_jam_study("lockstep"))
    assert all(result.backend == "lockstep" for result in study)


def test_study_lockstep_reactive_backend(benchmark):
    study = benchmark(lambda: _reactive_study("lockstep"))
    assert all(result.backend == "lockstep" for result in study)


def _per_trial_best(run, backend: str, trials: int, repeats: int = 3) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        run(backend, trials=trials)
        timings.append(time.perf_counter() - start)
    return min(timings) / trials


def test_lockstep_speedup_floor_batch_jam():
    """Acceptance: lockstep runs e01's CJZ study ≥5x faster than reference."""
    _batch_jam_study("lockstep", trials=4)  # warm-up (RNG self-checks)
    _batch_jam_study("reference", trials=2)
    reference = _per_trial_best(_batch_jam_study, "reference", trials=4)
    lockstep = _per_trial_best(_batch_jam_study, "lockstep", trials=TRIALS)
    speedup = reference / lockstep
    assert speedup >= 5.0, (
        f"lockstep speedup {speedup:.1f}x below the 5x acceptance floor"
    )


def test_lockstep_speedup_floor_reactive():
    """The adaptive-jammer path must also clear the 5x floor."""
    _reactive_study("lockstep", trials=4)
    _reactive_study("reference", trials=2)
    reference = _per_trial_best(_reactive_study, "reference", trials=4)
    lockstep = _per_trial_best(_reactive_study, "lockstep", trials=TRIALS)
    speedup = reference / lockstep
    assert speedup >= 5.0, (
        f"lockstep reactive speedup {speedup:.1f}x below the 5x floor"
    )


def test_lockstep_matches_reference_results():
    reference = _batch_jam_study("reference", trials=6)
    lockstep = _batch_jam_study("lockstep", trials=6)
    assert [r.summary for r in reference] == [r.summary for r in lockstep]
    assert [r.node_stats for r in reference] == [r.node_stats for r in lockstep]
