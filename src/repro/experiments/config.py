"""Experiment configuration: trial counts, scale presets and seeds."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.backends import available_study_backends

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Controls how much work each experiment does.

    ``scale`` selects a preset:

    * ``"smoke"`` — minimal sizes; used by the test suite to exercise the
      experiment code paths in seconds.
    * ``"quick"`` — small sizes; used by the pytest-benchmark harness.
    * ``"full"``  — the sizes recorded in EXPERIMENTS.md (minutes).

    Experiments read :attr:`scale_factor` and the helpers below rather than
    interpreting the preset name directly, so custom scales remain possible.

    ``backend`` selects the simulation backend (``auto`` / ``batched-study``
    / ``lockstep`` / ``reference`` / ``vectorized``) and ``workers`` the
    number of trial worker processes; both are forwarded to every
    :func:`repro.sim.run_trials` call an experiment makes.  ``auto`` runs
    each whole study through the batched study kernel when eligible, else
    the lockstep kernel (feedback-driven protocols such as the paper's own
    algorithm, adaptive adversaries included), else the per-trial ladder.

    ``streaming`` asks pipeline-based experiments to release per-slot
    prefix columns once their reducers have consumed each trial (memory
    O(1) in the horizon).  Experiments whose analysis needs full prefixes
    after the run ignore the request and keep the columns.
    """

    trials: int = 5
    seed: int = 20210219  # arXiv submission date of the paper
    scale: str = "quick"
    backend: str = "auto"
    workers: int = 1
    streaming: bool = False

    _FACTORS = {"smoke": 0.25, "quick": 1.0, "full": 4.0}

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ConfigurationError("trials must be >= 1")
        if self.scale not in self._FACTORS:
            raise ConfigurationError(
                f"scale must be one of {sorted(self._FACTORS)}, got {self.scale!r}"
            )
        if self.backend not in available_study_backends():
            raise ConfigurationError(
                f"backend must be one of {available_study_backends()}, "
                f"got {self.backend!r}"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")

    @property
    def scale_factor(self) -> float:
        return self._FACTORS[self.scale]

    def horizon(self, base: int, minimum: int = 256) -> int:
        """Scale a base horizon by the preset factor (power-of-two friendly)."""
        return max(minimum, int(base * self.scale_factor))

    def count(self, base: int, minimum: int = 8) -> int:
        """Scale a node count by the preset factor."""
        return max(minimum, int(base * self.scale_factor))

    def with_scale(self, scale: str) -> "ExperimentConfig":
        # dataclasses.replace copies every field, so new config fields can
        # never be silently dropped here.
        return dataclasses.replace(self, scale=scale)

    @property
    def execution_kwargs(self) -> dict:
        """Keyword arguments forwarded to :func:`repro.sim.run_trials`."""
        return {"backend": self.backend, "workers": self.workers}

    @property
    def streaming_kwargs(self) -> dict:
        """Execution kwargs plus the streaming request.

        Only experiments whose metrics run through a
        :class:`~repro.metrics.MetricPipeline` (reduced before columns are
        released) should forward these; prefix-consuming experiments use
        :attr:`execution_kwargs`.
        """
        return {**self.execution_kwargs, "streaming": self.streaming}
