"""E6 — the truncated batch delivers Θ(n) messages in O(n) slots despite jamming.

The remark after Claim 3.5.1 is the positive counterpart of E5: although the
``1/i``-batch cannot *finish* in ``O(n)`` slots, it does deliver a *constant
fraction* of the ``n`` messages within ``O(n)`` slots, and this remains true
even when a constant fraction of those slots is jammed.  This robustness is
why the paper's Phase 3 can afford to truncate the batch (via the control
channel's first success) and restart.

The experiment starts ``n`` nodes simultaneously, jams 25% of slots, and
counts deliveries within the first ``8·n`` slots across a sweep of ``n``: the
delivered fraction should stay bounded away from zero (roughly constant) as
``n`` grows, for both the oblivious and the reactive jammer.
"""

from __future__ import annotations

from typing import Callable, List

from ..adversary import (
    Adversary,
    BatchArrivals,
    ComposedAdversary,
    NoJamming,
    RandomFractionJamming,
    ReactiveJamming,
)
from ..analysis.tables import Table
from ..protocols import ProbabilityBackoff, make_factory
from ..sim import run_trials
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["BatchRobustnessExperiment"]

WINDOW_MULTIPLIER = 8
JAM_FRACTION = 0.25


def _adversary(n: int, jammer: str) -> Callable[[], Adversary]:
    def _factory() -> Adversary:
        if jammer == "none":
            jamming = NoJamming()
        elif jammer == "random":
            jamming = RandomFractionJamming(JAM_FRACTION)
        else:
            jamming = ReactiveJamming(JAM_FRACTION, burst=4)
        return ComposedAdversary(BatchArrivals(n), jamming)

    return _factory


@register
class BatchRobustnessExperiment(Experiment):
    """Constant fraction of a batch is delivered in O(n) slots despite jamming."""

    experiment_id = "E6"
    title = "Robustness of the truncated 1/i-batch under constant-fraction jamming"
    paper_claim = (
        "Remark after Claim 3.5.1: with n simultaneous nodes, h_data-batch delivers a "
        "constant fraction of all n messages within O(n) slots, even if a constant "
        "fraction of those slots is jammed."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        base_n = config.count(32)
        sizes = [base_n, base_n * 2, base_n * 4, base_n * 8]
        table = Table(
            title=f"Deliveries within {WINDOW_MULTIPLIER}·n slots, 25% jamming",
            columns=[
                "jammer",
                "n",
                "window",
                "delivered",
                "delivered fraction",
                "retries",
                "failures",
                "demotions",
                "health",
            ],
        )
        fractions_random: List[float] = []
        for jammer in ("none", "random", "reactive"):
            for n in sizes:
                window = WINDOW_MULTIPLIER * n
                study = run_trials(
                    protocol_factory=make_factory(ProbabilityBackoff, 1.0),
                    adversary_factory=_adversary(n, jammer),
                    horizon=window,
                    trials=config.trials,
                    seed=config.seed,
                    label=f"{jammer}-{n}",
                    **config.execution_kwargs,
                )
                delivered = study.mean(lambda r: r.total_successes)
                fraction = delivered / n
                if jammer == "random":
                    fractions_random.append(fraction)
                health = study.health
                table.add_row(
                    jammer,
                    n,
                    window,
                    delivered,
                    fraction,
                    health.retries,
                    health.shard_failures,
                    len(health.demotions),
                    "clean" if health.clean else health.describe(),
                )
        result.tables.append(table)

        min_fraction = min(fractions_random)
        spread = max(fractions_random) / max(min_fraction, 1e-9)
        result.findings["min_delivered_fraction_under_jamming"] = min_fraction
        result.findings["delivered_fraction_spread"] = spread

        consistent = min_fraction > 0.3 and spread < 2.0
        result.conclusion = (
            f"Even with 25% of slots jammed, the batch delivers at least {min_fraction:.0%} of "
            "its n messages within 8·n slots across the whole sweep, and the delivered fraction "
            f"varies by only {spread:.2f}× as n grows — a constant fraction in O(n) slots, as the "
            "paper's remark states.  The adaptive reactive jammer behaves like the oblivious one."
        )
        result.consistent_with_paper = consistent
        return result
