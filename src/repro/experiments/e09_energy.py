"""E9 — energy complexity: channel accesses per node are poly-logarithmic.

The related-work discussion notes that algorithms in this family (including
Bender et al.'s and, by construction, the paper's) make ``O(polylog n)``
channel accesses per node.  The experiment measures the mean and 95th
percentile number of broadcast attempts per node for the paper's algorithm as
the batch size ``n`` grows (with and without jamming) and checks the growth is
strongly sub-linear — the growth exponent of mean accesses versus ``n`` should
be well below 1 and the accesses normalized by ``log₂² n`` roughly flat.
"""

from __future__ import annotations

from typing import List

from ..analysis.fitting import growth_exponent
from ..analysis.tables import Table
from ..core import AlgorithmParameters, cjz_factory
from ..functions import constant_g
from ..metrics import EnergyReducer
from ..sim import run_trials
from ..spec import PipelineSpec
from ._helpers import batch_jam_adversary, log2
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["EnergyComplexityExperiment"]


@register
class EnergyComplexityExperiment(Experiment):
    """Broadcast attempts per node grow poly-logarithmically in the batch size."""

    experiment_id = "E9"
    title = "Energy complexity: channel accesses per node"
    paper_claim = (
        "Algorithms of this family use O(polylog n) channel accesses per node "
        "(the paper's energy-complexity discussion)."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        base_n = config.count(32)
        sizes = [base_n, base_n * 2, base_n * 4, base_n * 8]
        parameters = AlgorithmParameters.from_g(constant_g(4.0))

        table = Table(
            title="Broadcast attempts per node (paper's algorithm)",
            columns=["jamming", "n", "mean", "p95", "max", "mean / log²n"],
        )
        # Energy reduces through the metric pipeline, so the experiment never
        # needs the per-slot columns and honors --streaming at any horizon.
        pipeline = PipelineSpec.of(EnergyReducer())
        means_no_jam: List[float] = []
        for jam_fraction, label in ((0.0, "none"), (0.25, "25% random")):
            for n in sizes:
                horizon = max(4096, 128 * n)
                study = run_trials(
                    protocol_factory=cjz_factory(parameters),
                    adversary_factory=batch_jam_adversary(n, jam_fraction),
                    horizon=horizon,
                    trials=config.trials,
                    seed=config.seed,
                    stop_when_drained=True,
                    label=f"{label}-{n}",
                    pipeline=pipeline,
                    **config.streaming_kwargs,
                )
                energy = study.metrics()["energy"]
                if jam_fraction == 0.0:
                    means_no_jam.append(energy.mean)
                table.add_row(
                    label,
                    n,
                    energy.mean,
                    energy.p95,
                    energy.maximum,
                    energy.mean / (log2(n) ** 2),
                )
        result.tables.append(table)

        exponent = growth_exponent(sizes, means_no_jam)
        normalized = [mean / (log2(n) ** 2) for mean, n in zip(means_no_jam, sizes)]
        spread = max(normalized) / max(min(normalized), 1e-9)
        result.findings["energy_growth_exponent"] = exponent
        result.findings["energy_over_log2n_spread"] = spread

        # Broadcasts per node grow roughly like log² n (the spread check); the
        # growth exponent over one octave sweep of n sits near 0.4-0.5 at these
        # sizes because log² n itself still grows noticeably, so the sub-linear
        # threshold is set at 0.6.
        consistent = exponent < 0.6 and spread < 4.0
        result.conclusion = (
            f"Mean channel accesses per node grow with exponent {exponent:.2f} in n — far below "
            "linear — and stay within a small constant of log₂² n across the sweep, consistent "
            "with the poly-logarithmic energy complexity the paper attributes to this algorithm "
            "family.  Jamming increases the constant but not the shape."
        )
        result.consistent_with_paper = consistent
        return result
