"""E3 — worst case: Θ(t / log t) successes under constant-fraction jamming.

The paper's headline corollary: even when a constant fraction of all slots is
jammed (the worst admissible regime), the algorithm still delivers
``Θ(t / log t)`` messages within ``t`` slots.  The experiment injects
``n = t / (2·log₂ t)`` nodes, jams 25% of all slots (both obliviously at
random and reactively), and measures how many messages are delivered within
``t`` slots as ``t`` grows.  The success counts are then fitted against the
shape models ``c·t/log t`` and ``c·t``: the former should fit well and the
success/(t/log t) ratio should stay roughly flat, while a linear law
overestimates growth.
"""

from __future__ import annotations

from typing import List

from ..analysis.fitting import fit_shape, growth_exponent
from ..analysis.tables import Table
from ..functions import constant_g
from ..spec import AdversarySpec
from ._helpers import cjz_protocol_spec, log2, study_spec
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["WorstCaseJammingExperiment"]

JAM_FRACTION = 0.25


def _oblivious(total: int, horizon: int) -> AdversarySpec:
    return AdversarySpec.spread(
        total, end=max(2, horizon // 2), jam_fraction=JAM_FRACTION
    )


def _reactive(total: int, horizon: int) -> AdversarySpec:
    return AdversarySpec.composed(
        "uniform-random",
        "reactive",
        {"total": total, "start": 1, "end": max(2, horizon // 2)},
        {"fraction": JAM_FRACTION, "burst": 8},
    )


@register
class WorstCaseJammingExperiment(Experiment):
    """Success volume under constant-fraction jamming scales as t / log t."""

    experiment_id = "E3"
    title = "Θ(t / log t) successes under constant-fraction jamming"
    paper_claim = (
        "With g constant (a constant fraction of slots jammed) the best possible "
        "throughput is Θ(1/log t): Θ(t/log t) messages can be delivered in t slots, "
        "and the paper's algorithm attains it."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        base = config.horizon(2048)
        horizons = [base, base * 2, base * 4, base * 8]
        protocol = cjz_protocol_spec(constant_g(4.0))

        table = Table(
            title=f"Deliveries within t slots, {JAM_FRACTION:.0%} of slots jammed",
            columns=[
                "jammer",
                "t",
                "injected n=t/(2·log t)",
                "delivered",
                "delivered/(t/log t)",
                "completion rate",
            ],
        )
        findings_ratios: List[float] = []
        successes_by_t: List[float] = []
        for jammer_label, factory_builder in (
            ("oblivious random", _oblivious),
            ("reactive", _reactive),
        ):
            for horizon in horizons:
                injected = max(8, int(horizon / (2.0 * log2(horizon))))
                study = study_spec(
                    protocol,
                    factory_builder(injected, horizon),
                    horizon=horizon,
                    trials=config.trials,
                    seed=config.seed,
                    label=f"{jammer_label}@{horizon}",
                    **config.execution_kwargs,
                ).run()
                delivered = study.mean(lambda r: r.total_successes)
                normalizer = horizon / log2(horizon)
                ratio = delivered / normalizer
                completion = delivered / max(
                    1.0, study.mean(lambda r: r.total_arrivals)
                )
                table.add_row(
                    jammer_label, horizon, injected, delivered, ratio, completion
                )
                if jammer_label == "oblivious random":
                    findings_ratios.append(ratio)
                    successes_by_t.append(delivered)
        result.tables.append(table)

        fits = fit_shape(horizons, successes_by_t, models=["linear", "x_over_log"])
        exponent = growth_exponent(horizons, successes_by_t)
        result.findings["delivered_growth_exponent"] = exponent
        result.findings["fit_error_linear"] = fits["linear"].relative_error
        result.findings["fit_error_t_over_log_t"] = fits["x_over_log"].relative_error
        ratio_spread = max(findings_ratios) / max(min(findings_ratios), 1e-9)
        result.findings["ratio_spread_t_over_log_t"] = ratio_spread

        consistent = (
            fits["x_over_log"].relative_error <= fits["linear"].relative_error + 0.05
            and ratio_spread < 3.0
            and exponent < 1.02
        )
        result.conclusion = (
            f"Deliveries within t slots grow with exponent {exponent:.2f} and are fit "
            f"better (or as well) by c·t/log t (rel. err {fits['x_over_log'].relative_error:.3f}) "
            f"than by c·t (rel. err {fits['linear'].relative_error:.3f}); the ratio "
            "delivered/(t/log t) stays within a small constant band across t, matching the "
            "paper's Θ(t/log t) worst-case guarantee.  The adaptive (reactive) jammer does "
            "not qualitatively change the picture."
        )
        result.consistent_with_paper = consistent
        return result
