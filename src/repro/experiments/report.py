"""Report writer: turn experiment results into the EXPERIMENTS.md document."""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .base import ExperimentResult, all_experiments, run_experiment
from .config import ExperimentConfig

__all__ = ["render_report", "write_report", "run_all"]

_HEADER = """# EXPERIMENTS — measured vs paper

Reproduction of *Tight Trade-off in Contention Resolution without Collision
Detection* (Chen, Jiang, Zheng — PODC 2021).

The paper is theory-only (no empirical tables or figures), so each experiment
below corresponds to one theorem-level claim; the DESIGN.md per-experiment
index maps them to modules and benchmark targets.  Absolute constants are not
expected to match (the paper leaves its constants unspecified); the *shape*
of every claim — who wins, how quantities scale, where the trade-off bends —
is what each experiment verifies.
"""


def run_all(
    config: Optional[ExperimentConfig] = None,
    experiment_ids: Optional[Sequence[str]] = None,
) -> List[ExperimentResult]:
    """Run the requested experiments (default: all) and return their results."""
    config = config or ExperimentConfig()
    ids = list(experiment_ids) if experiment_ids else all_experiments()
    results = []
    for experiment_id in ids:
        results.append(run_experiment(experiment_id, config))
    return results


def render_report(
    results: Iterable[ExperimentResult],
    config: Optional[ExperimentConfig] = None,
) -> str:
    """Render a full markdown report from experiment results."""
    lines = [_HEADER]
    if config is not None:
        lines.append(
            f"_Generated on {datetime.date.today().isoformat()} with scale="
            f"'{config.scale}', trials={config.trials}, seed={config.seed}._\n"
        )
    results = list(results)
    lines.append("## Summary\n")
    lines.append("| Experiment | Claim | Verdict |")
    lines.append("|---|---|---|")
    for result in results:
        verdict = (
            "consistent"
            if result.consistent_with_paper
            else ("inconsistent" if result.consistent_with_paper is not None else "n/a")
        )
        lines.append(f"| {result.experiment_id} | {result.title} | {verdict} |")
    lines.append("")
    lines.append("## Per-experiment details\n")
    for result in results:
        lines.append(result.render_markdown())
    return "\n".join(lines)


def write_report(
    path: str | Path,
    results: Iterable[ExperimentResult],
    config: Optional[ExperimentConfig] = None,
) -> Path:
    """Write the rendered report to ``path`` and return it."""
    path = Path(path)
    path.write_text(render_report(results, config), encoding="utf-8")
    return path
