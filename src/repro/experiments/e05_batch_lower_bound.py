"""E5 — Claim 3.5.1: plain 1/i-batch backoff cannot finish n messages in O(n) slots.

Claim 3.5.1 states that ``h_data``-batch — every node broadcasts with
probability ``1/i`` in the ``i``-th slot, the textbook batch form of binary
exponential backoff — takes ``ω(n)`` slots to deliver all ``n`` messages, even
with a simultaneous start and no jamming whatsoever.  (The culprit is the long
tail: once only a few nodes remain their sending probabilities have decayed to
``Θ(1/n)``, so each remaining success takes ``Θ(n)`` slots.)

The experiment runs the batch process for several ``n``, measures the slot at
which the last message is delivered, and reports ``completion / n``: the
ratio must grow with ``n`` (super-linear completion time), and the empirical
growth exponent of the completion slot must exceed 1.  The paper's algorithm
run on the same workload completes in ``O(n)``–``O(n log n)`` slots, showing
the gap the claim is about.
"""

from __future__ import annotations

from typing import List

from ..analysis.fitting import growth_exponent
from ..analysis.tables import Table
from ..core import AlgorithmParameters, cjz_factory
from ..functions import constant_g
from ..protocols import ProbabilityBackoff, make_factory
from ..sim import run_trials
from ._helpers import batch_jam_adversary, log2
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["BatchLowerBoundExperiment"]


def _completion_slot(result) -> float:
    """Slot of the last delivery; the horizon if some node never finished."""
    slots = [s.success_slot for s in result.node_stats.values() if s.success_slot]
    if result.unfinished_nodes or not slots:
        return float(result.horizon)
    return float(max(slots))


@register
class BatchLowerBoundExperiment(Experiment):
    """Completion time of 1/i-batch grows super-linearly in the batch size."""

    experiment_id = "E5"
    title = "Claim 3.5.1: 1/i-batch needs ω(n) slots to deliver all n messages"
    paper_claim = (
        "h_data-batch (send with probability 1/i in slot i) cannot send all n messages "
        "in O(n) slots w.h.p., even with a simultaneous start and no jamming."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        base_n = config.count(32)
        sizes = [base_n, base_n * 2, base_n * 4, base_n * 8]
        table = Table(
            title="Completion slot of a batch of n nodes (no jamming)",
            columns=["protocol", "n", "completion slot", "completion / n", "completion / (n·log n)"],
        )

        completions_beb: List[float] = []
        completions_cjz: List[float] = []
        cjz_params = AlgorithmParameters.from_g(constant_g(4.0))
        for n in sizes:
            horizon = max(4096, 256 * n)
            beb_study = run_trials(
                protocol_factory=make_factory(ProbabilityBackoff, 1.0),
                adversary_factory=batch_jam_adversary(n),
                horizon=horizon,
                trials=config.trials,
                seed=config.seed,
                stop_when_drained=True,
                label=f"1/i-batch n={n}",
                **config.streaming_kwargs,
            )
            completion = beb_study.mean(_completion_slot)
            completions_beb.append(completion)
            table.add_row("1/i-batch", n, completion, completion / n, completion / (n * log2(n)))

            cjz_study_result = run_trials(
                protocol_factory=cjz_factory(cjz_params),
                adversary_factory=batch_jam_adversary(n),
                horizon=horizon,
                trials=config.trials,
                seed=config.seed,
                stop_when_drained=True,
                label=f"cjz n={n}",
                **config.streaming_kwargs,
            )
            completion_cjz = cjz_study_result.mean(_completion_slot)
            completions_cjz.append(completion_cjz)
            table.add_row(
                "chen-jiang-zheng", n, completion_cjz, completion_cjz / n,
                completion_cjz / (n * log2(n)),
            )
        result.tables.append(table)

        beb_exponent = growth_exponent(sizes, completions_beb)
        cjz_exponent = growth_exponent(sizes, completions_cjz)
        ratio_growth = (completions_beb[-1] / sizes[-1]) / (completions_beb[0] / sizes[0])
        result.findings["beb_completion_growth_exponent"] = beb_exponent
        result.findings["cjz_completion_growth_exponent"] = cjz_exponent
        result.findings["beb_completion_per_n_growth"] = ratio_growth

        consistent = beb_exponent > 1.05 and ratio_growth > 1.2 and cjz_exponent < beb_exponent
        result.conclusion = (
            f"The 1/i-batch completion slot grows with exponent {beb_exponent:.2f} > 1 and its "
            f"per-node cost completion/n increases by {ratio_growth:.2f}× over the sweep — the "
            "ω(n) behaviour Claim 3.5.1 proves.  The paper's algorithm completes the same batches "
            f"with growth exponent {cjz_exponent:.2f}, i.e. near-linearly, because its control "
            "channel terminates each truncated batch at the right time."
        )
        result.consistent_with_paper = consistent
        return result
