"""E4 — without jamming the algorithm achieves constant throughput.

With no jamming the paper's guarantee specializes (Remark 2 / Bender et al.
STOC '20): the number of active slots is at most a constant multiple of the
number of arrivals, i.e. classical throughput ``n_t / a_t`` is bounded below
by a constant, independent of the instance size.  The experiment sweeps the
batch size (and also checks a dynamic Poisson workload) and verifies the
active-slots-per-arrival ratio stays bounded as ``n`` grows, both for the
paper's algorithm and for the jamming-oblivious two-channel variant; plain
binary exponential backoff is included to show it does *not* keep the ratio
bounded (its completion time is super-linear in ``n``).
"""

from __future__ import annotations

from typing import Callable, List

from ..adversary import (
    Adversary,
    BatchArrivals,
    ComposedAdversary,
    NoJamming,
    PoissonArrivals,
)
from ..analysis.fitting import growth_exponent
from ..analysis.tables import Table
from ..core import AlgorithmParameters, cjz_factory
from ..functions import constant_g, exp_sqrt_log_g
from ..protocols import TwoChannelNoJamming, WindowedBinaryExponentialBackoff, make_factory
from ..sim import run_trials
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["NoJammingConstantThroughputExperiment"]


def _batch(count: int) -> Callable[[], Adversary]:
    def _factory() -> Adversary:
        return ComposedAdversary(BatchArrivals(count), NoJamming())

    return _factory


def _poisson(rate: float, last_slot: int) -> Callable[[], Adversary]:
    def _factory() -> Adversary:
        return ComposedAdversary(PoissonArrivals(rate, last_slot=last_slot), NoJamming())

    return _factory


@register
class NoJammingConstantThroughputExperiment(Experiment):
    """Active slots per arrival stays bounded without jamming."""

    experiment_id = "E4"
    title = "Constant throughput without jamming (Bender et al. regime)"
    paper_claim = (
        "Without jamming, constant throughput is achievable without collision "
        "detection: active slots are at most a constant multiple of arrivals."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        base_n = config.count(48)
        batch_sizes = [base_n, base_n * 2, base_n * 4]
        # Use the large-g parameterization (constant f) — the natural choice
        # when no jamming is expected — alongside the worst-case one.
        contenders = {
            "cjz (g const)": cjz_factory(AlgorithmParameters.from_g(constant_g(4.0))),
            "cjz (g = 2^√log)": cjz_factory(
                AlgorithmParameters.from_g(exp_sqrt_log_g())
            ),
            "two-channel (no-jam tuned)": make_factory(TwoChannelNoJamming),
            "binary exponential backoff": make_factory(WindowedBinaryExponentialBackoff),
        }

        table = Table(
            title="Active slots per arrival, batch workload, no jamming",
            columns=["protocol", "n", "active slots", "active/arrival", "unfinished"],
        )
        overhead_series = {name: [] for name in contenders}
        for name, factory in contenders.items():
            for n in batch_sizes:
                horizon = max(64 * n, 2048)
                study = run_trials(
                    protocol_factory=factory,
                    adversary_factory=_batch(n),
                    horizon=horizon,
                    trials=config.trials,
                    seed=config.seed,
                    stop_when_drained=True,
                    label=f"{name}@{n}",
                    **config.execution_kwargs,
                )
                active = study.mean(lambda r: r.total_active_slots)
                per_arrival = active / n
                overhead_series[name].append(per_arrival)
                table.add_row(
                    name,
                    n,
                    active,
                    per_arrival,
                    study.mean(lambda r: r.unfinished_nodes),
                )
        result.tables.append(table)

        # Dynamic workload check for the paper's algorithm only.
        dynamic_table = Table(
            title="Dynamic Poisson arrivals, no jamming (paper's algorithm)",
            columns=["rate", "horizon", "arrivals", "active/arrival", "unfinished"],
        )
        horizon = config.horizon(8192)
        for rate in (0.01, 0.03):
            study = run_trials(
                protocol_factory=contenders["cjz (g const)"],
                adversary_factory=_poisson(rate, last_slot=horizon // 2),
                horizon=horizon,
                trials=config.trials,
                seed=config.seed + 7,
                label=f"poisson {rate:g}",
                **config.execution_kwargs,
            )
            arrivals = study.mean(lambda r: r.total_arrivals)
            dynamic_table.add_row(
                rate,
                horizon,
                arrivals,
                study.mean(lambda r: r.total_active_slots) / max(arrivals, 1.0),
                study.mean(lambda r: r.unfinished_nodes),
            )
        result.tables.append(dynamic_table)

        cjz_growth = growth_exponent(batch_sizes, overhead_series["cjz (g = 2^√log)"])
        beb_growth = growth_exponent(
            batch_sizes, overhead_series["binary exponential backoff"]
        )
        result.findings["cjz_overhead_growth_exponent"] = cjz_growth
        result.findings["beb_overhead_growth_exponent"] = beb_growth
        result.findings["cjz_max_overhead"] = max(overhead_series["cjz (g = 2^√log)"])

        consistent = cjz_growth < 0.35 and beb_growth > cjz_growth
        result.conclusion = (
            "The paper's algorithm keeps active slots per arrival essentially flat as the "
            f"batch grows (growth exponent {cjz_growth:.2f}), i.e. constant throughput, "
            "recovering the Bender et al. STOC'20 result; binary exponential backoff's "
            f"overhead grows markedly faster (exponent {beb_growth:.2f}), consistent with "
            "its known lack of constant throughput."
        )
        result.consistent_with_paper = consistent
        return result
