"""E10 — Corollary 3.6: under a smooth adversary the system keeps draining.

Corollary 3.6: if the adversary is *smooth* — every suffix ``[t-j, t]``
contains only ``O(j/f(j))`` arrivals and ``O(j/g(j))`` jammed slots — then
w.h.p. in ``j`` every node that arrived before slot ``t - j`` has left the
system (delivered its message) by slot ``t``.

The experiment constructs the evenly-spread smooth adversary of
:class:`~repro.adversary.smooth.SmoothAdversary`, runs the paper's algorithm
to a horizon ``t``, and, for several suffix lengths ``j``, measures the
fraction of trials in which *all* nodes arrived before ``t - j`` were
delivered by ``t``.  That fraction should approach 1 as ``j`` grows; the
experiment also reports the maximum "age" of any undelivered node at the
horizon.
"""

from __future__ import annotations

from typing import Callable, List

from ..adversary import Adversary, SmoothAdversary
from ..analysis.tables import Table
from ..core import AlgorithmParameters, cjz_factory
from ..functions import constant_g
from ..sim import run_trials
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["SmoothClearingExperiment"]


def _smooth_adversary(horizon: int, parameters: AlgorithmParameters) -> Callable[[], Adversary]:
    def _factory() -> Adversary:
        return SmoothAdversary(horizon=horizon, f=parameters.f, g=parameters.g)

    return _factory


def _all_cleared_before(result, cutoff: int) -> bool:
    """True iff every node arrived before ``cutoff`` finished by the horizon."""
    for stats in result.node_stats.values():
        if stats.arrival_slot < cutoff and not stats.finished:
            return False
    return True


def _oldest_pending_age(result) -> float:
    ages = [
        result.horizon - stats.arrival_slot
        for stats in result.node_stats.values()
        if not stats.finished
    ]
    return float(max(ages)) if ages else 0.0


@register
class SmoothClearingExperiment(Experiment):
    """All sufficiently old nodes are delivered by the horizon under a smooth adversary."""

    experiment_id = "E10"
    title = "Clearing under a smooth adversary (Corollary 3.6)"
    paper_claim = (
        "Under any smooth adversary strategy, every node that arrived before slot t−j "
        "has left the system by slot t, w.h.p. in j."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        horizon = config.horizon(8192)
        parameters = AlgorithmParameters.from_g(constant_g(4.0))
        adversary_factory = _smooth_adversary(horizon, parameters)

        # Validate the adversary really is smooth before using it.
        import numpy as np

        probe = adversary_factory()
        probe.setup(np.random.default_rng(0), horizon)
        smooth_ok = probe.verify_smoothness()

        study = run_trials(
            protocol_factory=cjz_factory(parameters),
            adversary_factory=adversary_factory,
            horizon=horizon,
            trials=config.trials,
            seed=config.seed,
            label="smooth",
            **config.streaming_kwargs,
        )

        suffixes: List[int] = [horizon // 16, horizon // 8, horizon // 4, horizon // 2]
        table = Table(
            title=f"Fraction of trials with all pre-(t−j) nodes delivered by t (t={horizon})",
            columns=["j", "cleared fraction", "mean arrivals", "mean delivered"],
        )
        cleared_fractions = []
        for j in suffixes:
            cutoff = horizon - j
            fraction = study.fraction_satisfying(lambda r, c=cutoff: _all_cleared_before(r, c))
            cleared_fractions.append(fraction)
            table.add_row(
                j,
                fraction,
                study.mean(lambda r: r.total_arrivals),
                study.mean(lambda r: r.total_successes),
            )
        result.tables.append(table)

        max_age = study.mean(_oldest_pending_age)
        result.findings["adversary_is_smooth"] = float(smooth_ok)
        result.findings["cleared_fraction_at_largest_j"] = cleared_fractions[-1]
        result.findings["mean_oldest_pending_age"] = max_age

        consistent = bool(smooth_ok) and cleared_fractions[-1] >= 0.99
        result.conclusion = (
            "With an adversary satisfying the smoothness budgets, every trial delivered all "
            f"nodes older than t/2 by the horizon (cleared fraction {cleared_fractions[-1]:.2f}), "
            f"and the clearing probability increases with j exactly as Corollary 3.6 predicts; "
            f"the oldest undelivered node at the horizon is on average only {max_age:.0f} slots old."
        )
        result.consistent_with_paper = consistent
        return result
