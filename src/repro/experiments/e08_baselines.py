"""E8 — baseline comparison across the motivating scenarios.

The paper's introduction motivates the problem with Ethernet-style congestion,
wireless interference and lock contention; its related-work section contrasts
the algorithm with classical backoff variants.  This experiment runs the
paper's algorithm and the baseline protocols on the standard scenarios
(:mod:`repro.workloads.scenarios`) and reports deliveries, unfinished nodes,
latency and energy, giving the "who wins where" picture: the paper's algorithm
should dominate or match everywhere jamming or bursts are present, while the
simpler baselines remain competitive only on benign workloads.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.comparison import compare_protocols, comparison_table
from ..core import AlgorithmParameters, cjz_factory
from ..functions import constant_g
from ..protocols import (
    PolynomialBackoff,
    SawtoothBackoff,
    SlottedAloha,
    WindowedBinaryExponentialBackoff,
    make_factory,
)
from ..sim import run_trials
from ..workloads import STANDARD_SCENARIOS, build_adversary_factory
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["BaselineComparisonExperiment"]


@register
class BaselineComparisonExperiment(Experiment):
    """Head-to-head comparison on the motivating workload scenarios."""

    experiment_id = "E8"
    title = "Baseline comparison on the motivating scenarios"
    paper_claim = (
        "Classical backoff variants either lose throughput under adversarial arrivals "
        "or collapse under jamming; the paper's algorithm sustains the optimal trade-off."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        contenders = {
            "chen-jiang-zheng": cjz_factory(AlgorithmParameters.from_g(constant_g(4.0))),
            "binary-exponential": make_factory(WindowedBinaryExponentialBackoff),
            "polynomial": make_factory(PolynomialBackoff, 2.0),
            "sawtooth": make_factory(SawtoothBackoff),
            "aloha(0.05)": make_factory(SlottedAloha, 0.05),
        }

        # Unfinished *fraction* of arrivals, per protocol, worst over scenarios.
        worst_unfinished: Dict[str, float] = {name: 0.0 for name in contenders}
        scenario_count = 0
        for key, scenario in STANDARD_SCENARIOS.items():
            scenario_count += 1
            spec = scenario.spec
            # Scale the horizon and the arrival volume together so the offered
            # load per slot (and hence feasibility) is preserved across scales.
            factor = config.scale_factor
            horizon = max(1024, int(spec.horizon * factor))
            arrival_params = dict(spec.arrival_params)
            for volume_key in ("count", "total", "burst_size"):
                if volume_key in arrival_params:
                    arrival_params[volume_key] = max(
                        4, int(arrival_params[volume_key] * factor)
                    )
            spec_scaled = spec.__class__(
                horizon=horizon,
                arrival_kind=spec.arrival_kind,
                arrival_params=arrival_params,
                jamming_kind=spec.jamming_kind,
                jamming_params=spec.jamming_params,
                label=spec.label,
            )
            studies = {}
            for name, factory in contenders.items():
                studies[name] = run_trials(
                    protocol_factory=factory,
                    adversary_factory=build_adversary_factory(spec_scaled),
                    horizon=horizon,
                    trials=config.trials,
                    seed=config.seed,
                    label=key,
                    **config.execution_kwargs,
                )
            rows = compare_protocols(studies, workload=key)
            result.tables.append(
                comparison_table(rows, title=f"Scenario: {key} — {scenario.description}")
            )
            for row in rows:
                arrivals = max(1.0, row.mean_successes + row.mean_unfinished)
                fraction = row.mean_unfinished / arrivals
                worst_unfinished[row.protocol] = max(
                    worst_unfinished[row.protocol], fraction
                )

        for name, value in worst_unfinished.items():
            result.findings[f"worst_unfinished_fraction[{name}]"] = value
        result.findings["scenario_count"] = float(scenario_count)

        cjz_worst = worst_unfinished["chen-jiang-zheng"]
        baseline_collapse = max(
            value for name, value in worst_unfinished.items() if name != "chen-jiang-zheng"
        )
        consistent = cjz_worst < 0.25 and baseline_collapse > 0.4
        result.conclusion = (
            "The paper's algorithm never collapses: its worst-case undelivered fraction across "
            f"all scenarios is {cjz_worst:.0%}, while the worst baseline leaves "
            f"{baseline_collapse:.0%} of its messages undelivered (slotted ALOHA under the "
            "lock-convoy burst).  On benign, lightly-loaded workloads the classical backoff "
            "baselines have better constants (lower latency and energy) — the paper does not "
            "claim otherwise; its contribution is the worst-case guarantee, which experiments "
            "E1, E5 and E7 show the baselines lack."
        )
        result.consistent_with_paper = consistent
        return result
