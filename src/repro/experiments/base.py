"""Experiment framework: result container, base class and registry."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..analysis.tables import Table
from ..errors import ExperimentError
from .config import ExperimentConfig

__all__ = [
    "ExperimentResult",
    "Experiment",
    "register",
    "get_experiment",
    "all_experiments",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """Everything an experiment reports back.

    ``findings`` holds named scalar results (ratios, fitted exponents,
    empirical probabilities) that tests and EXPERIMENTS.md reference;
    ``conclusion`` is the one-paragraph comparison against the paper's claim;
    ``consistent_with_paper`` is the experiment's own verdict.
    """

    experiment_id: str
    title: str
    paper_claim: str
    tables: List[Table] = field(default_factory=list)
    findings: Dict[str, float] = field(default_factory=dict)
    conclusion: str = ""
    consistent_with_paper: Optional[bool] = None

    def render_text(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ===", ""]
        lines.append(f"Paper claim: {self.paper_claim}")
        lines.append("")
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        if self.findings:
            lines.append("Findings:")
            for key, value in self.findings.items():
                lines.append(f"  {key}: {value:g}" if isinstance(value, float) else f"  {key}: {value}")
            lines.append("")
        if self.conclusion:
            lines.append(f"Conclusion: {self.conclusion}")
        if self.consistent_with_paper is not None:
            verdict = "CONSISTENT" if self.consistent_with_paper else "INCONSISTENT"
            lines.append(f"Verdict: {verdict} with the paper")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append(f"**Paper claim.** {self.paper_claim}")
        lines.append("")
        for table in self.tables:
            lines.append(f"**{table.title}**")
            lines.append("")
            lines.append(table.to_markdown())
            lines.append("")
        if self.findings:
            lines.append("**Key findings.**")
            lines.append("")
            for key, value in self.findings.items():
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"- `{key}` = {rendered}")
            lines.append("")
        if self.conclusion:
            lines.append(f"**Measured vs paper.** {self.conclusion}")
            lines.append("")
        if self.consistent_with_paper is not None:
            verdict = "consistent" if self.consistent_with_paper else "**not** consistent"
            lines.append(f"Verdict: {verdict} with the paper's claim.")
            lines.append("")
        return "\n".join(lines)


class Experiment(abc.ABC):
    """One reproducible experiment mapping to a claim of the paper."""

    experiment_id: str = "E0"
    title: str = "experiment"
    paper_claim: str = ""

    @abc.abstractmethod
    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Execute the experiment and return its result."""

    def make_result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            paper_claim=self.paper_claim,
        )


_REGISTRY: Dict[str, Callable[[], Experiment]] = {}


def register(factory: Callable[[], Experiment]) -> Callable[[], Experiment]:
    """Class decorator registering an experiment under its ``experiment_id``."""
    instance = factory()
    experiment_id = instance.experiment_id
    if experiment_id in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
    _REGISTRY[experiment_id] = factory
    return factory


def get_experiment(experiment_id: str) -> Experiment:
    """Instantiate the experiment registered under ``experiment_id``."""
    try:
        factory = _REGISTRY[experiment_id]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from exc
    return factory()


def all_experiments() -> List[str]:
    """Sorted list of registered experiment ids."""
    return sorted(_REGISTRY)


def run_experiment(
    experiment_id: str, config: Optional[ExperimentConfig] = None
) -> ExperimentResult:
    """Convenience: instantiate and run an experiment by id.

    Records the experiment's wall-clock seconds in
    ``findings["wall_time_seconds"]`` so backend/worker speedups show up in
    reports without external timers.
    """
    experiment = get_experiment(experiment_id)
    start = time.perf_counter()
    result = experiment.run(config or ExperimentConfig())
    result.findings.setdefault("wall_time_seconds", time.perf_counter() - start)
    return result
