"""Experiments reproducing the paper's theorem-level claims.

Each experiment corresponds to one row of the per-experiment index in
DESIGN.md.  Experiments register themselves with the registry in
:mod:`repro.experiments.base`; import this package to populate it.
"""

from .base import (
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
    register,
    run_experiment,
)
from .config import ExperimentConfig

# Importing the experiment modules registers them.
from . import (  # noqa: F401  (imported for registration side effects)
    e01_fg_throughput,
    e02_tradeoff_curve,
    e03_worst_case_jamming,
    e04_no_jamming,
    e05_batch_lower_bound,
    e06_batch_robustness,
    e07_nonadaptive,
    e08_baselines,
    e09_energy,
    e10_smooth_clearing,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentConfig",
    "register",
    "get_experiment",
    "all_experiments",
    "run_experiment",
]
