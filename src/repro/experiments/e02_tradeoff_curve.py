"""E2 — the throughput/jamming trade-off (Theorems 1.2 + 1.3), measured at laptop scale.

The paper's tight bound ``f(t) = Θ(log t / log² g(t))`` separates the ``g``
families only at astronomically large ``t`` (``log t / log² log t`` is ≈ 1 for
every simulable ``t``), so this experiment measures the two facets of the
trade-off that *are* resolvable at laptop scale:

1. **Achievable side, worst-case regime (g constant).**  Under
   constant-fraction jamming the per-arrival active-slot overhead of the
   algorithm should grow like ``Θ(log t)`` — sub-polynomially — as the horizon
   grows.  The experiment sweeps ``t``, fits the overhead against ``log t``,
   ``sqrt t`` and ``t`` and checks the logarithmic law fits best.

2. **Trade-off against jamming severity at fixed t.**  Sweeping the jammed
   fraction from 0% to 40% at fixed ``t``, the delivered volume should degrade
   gracefully (no collapse below the Θ(t / log t) level predicted for the
   constant-fraction regime) while the per-arrival overhead rises, staying
   within the (f, g)-throughput budget of Definition 1.1.

A third table is the ablation called out in DESIGN.md: the overhead is
insensitive to the exact value of the control-channel constant ``c3``,
supporting the paper's "sufficiently large constant" treatment.
"""

from __future__ import annotations

from typing import List

from ..analysis.fitting import fit_shape, growth_exponent
from ..analysis.tables import Table
from ..core import AlgorithmParameters
from ..functions import constant_g
from ..metrics import FGThroughputChecker
from ..spec import AdversarySpec
from ._helpers import cjz_protocol_spec, log2, study_spec
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["TradeoffCurveExperiment"]

SLACK = 8.0
GRACE = 128.0


def _spread_adversary(total: int, horizon: int, jam_fraction: float) -> AdversarySpec:
    return AdversarySpec.spread(
        total, end=max(2, horizon // 2), jam_fraction=jam_fraction
    )


def _overhead(study) -> float:
    values = [r.total_active_slots / max(1, r.total_arrivals) for r in study]
    return float(sum(values) / len(values))


@register
class TradeoffCurveExperiment(Experiment):
    """Overhead grows like log t under constant-fraction jamming; degradation with jamming is graceful."""

    experiment_id = "E2"
    title = "Throughput versus jamming-severity trade-off"
    paper_claim = (
        "Theorems 1.2/1.3: the optimal per-arrival overhead is Θ(log t / log² g(t)); "
        "for constant-fraction jamming this is Θ(log t), and throughput degrades "
        "gracefully (to Θ(t/log t)) rather than collapsing as jamming grows."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        g = constant_g(4.0)
        parameters = AlgorithmParameters.from_g(g)
        protocol = cjz_protocol_spec(g)
        checker = FGThroughputChecker(
            parameters.f, parameters.g, slack=SLACK, min_prefix=64, additive_grace=GRACE
        )

        # --- Part 1: overhead vs horizon under 25% jamming -----------------
        base = config.horizon(2048)
        horizons = [base, base * 2, base * 4, base * 8]
        overhead_table = Table(
            title="Per-arrival active-slot overhead vs horizon (25% of slots jammed)",
            columns=["t", "arrivals", "overhead", "overhead / log2(t)", "bound satisfied"],
        )
        overheads: List[float] = []
        for horizon in horizons:
            arrivals = max(8, int(horizon / (8.0 * log2(horizon))))
            study = study_spec(
                protocol,
                _spread_adversary(arrivals, horizon, 0.25),
                horizon=horizon,
                trials=config.trials,
                seed=config.seed,
                label=f"t={horizon}",
                **config.execution_kwargs,
            ).run()
            overhead = _overhead(study)
            overheads.append(overhead)
            satisfied = all(checker.check(r).satisfied for r in study)
            overhead_table.add_row(
                horizon, arrivals, overhead, overhead / log2(horizon), satisfied
            )
        result.tables.append(overhead_table)

        fits = fit_shape(horizons, overheads, models=["log", "sqrt", "linear"])
        exponent = growth_exponent(horizons, overheads)
        result.findings["overhead_growth_exponent"] = exponent
        result.findings["fit_error_log"] = fits["log"].relative_error
        result.findings["fit_error_sqrt"] = fits["sqrt"].relative_error
        result.findings["fit_error_linear"] = fits["linear"].relative_error

        # --- Part 2: jamming-severity sweep at fixed t ----------------------
        horizon = horizons[1]
        arrivals = max(8, int(horizon / (8.0 * log2(horizon))))
        sweep_table = Table(
            title=f"Jamming-severity sweep at t={horizon} ({arrivals} arrivals)",
            columns=[
                "jammed fraction",
                "delivered",
                "delivered fraction",
                "overhead",
                "bound satisfied",
            ],
        )
        delivered_fractions: List[float] = []
        for fraction in (0.0, 0.1, 0.25, 0.4):
            study = study_spec(
                protocol,
                _spread_adversary(arrivals, horizon, fraction),
                horizon=horizon,
                trials=config.trials,
                seed=config.seed + 3,
                label=f"jam={fraction:.0%}",
                **config.execution_kwargs,
            ).run()
            delivered = study.mean(lambda r: r.total_successes)
            fraction_delivered = delivered / arrivals
            delivered_fractions.append(fraction_delivered)
            satisfied = all(checker.check(r).satisfied for r in study)
            sweep_table.add_row(
                f"{fraction:.0%}",
                delivered,
                fraction_delivered,
                _overhead(study),
                satisfied,
            )
        result.tables.append(sweep_table)
        degradation = delivered_fractions[-1] / max(delivered_fractions[0], 1e-9)
        result.findings["delivered_fraction_no_jam"] = delivered_fractions[0]
        result.findings["delivered_fraction_40pct_jam"] = delivered_fractions[-1]
        result.findings["graceful_degradation_ratio"] = degradation

        # --- Part 3: ablation on the control-channel constant c3 ------------
        ablation = Table(
            title="Ablation: sensitivity of overhead to the control-channel constant c3",
            columns=["c3", "overhead", "delivered fraction"],
        )
        ablation_overheads: List[float] = []
        for c3 in (2.0, 4.0, 8.0):
            study = study_spec(
                cjz_protocol_spec(g, c3=c3),
                _spread_adversary(arrivals, horizon, 0.25),
                horizon=horizon,
                trials=max(2, config.trials // 2),
                seed=config.seed + 5,
                label=f"c3={c3:g}",
                **config.execution_kwargs,
            ).run()
            overhead = _overhead(study)
            ablation_overheads.append(overhead)
            ablation.add_row(
                c3, overhead, study.mean(lambda r: r.total_successes) / arrivals
            )
        result.tables.append(ablation)
        ablation_spread = max(ablation_overheads) / max(min(ablation_overheads), 1e-9)
        result.findings["c3_ablation_overhead_spread"] = ablation_spread

        consistent = (
            fits["log"].relative_error <= fits["linear"].relative_error + 0.02
            and exponent < 0.5
            and degradation > 0.6
            and ablation_spread < 2.0
        )
        result.conclusion = (
            f"Under constant-fraction jamming the per-arrival overhead grows with exponent "
            f"{exponent:.2f} in t and is fit best by a logarithmic law "
            f"(rel. err {fits['log'].relative_error:.3f} vs {fits['linear'].relative_error:.3f} "
            "for linear), matching the Θ(log t) overhead Theorem 1.2 predicts for constant g.  "
            f"Raising the jammed fraction from 0% to 40% reduces deliveries only to "
            f"{delivered_fractions[-1]:.0%} of arrivals — graceful degradation rather than "
            "collapse, the qualitative content of the trade-off — and the result is insensitive "
            f"to the c3 constant (spread {ablation_spread:.2f}×).  The asymptotic separation "
            "between g families (log t vs log t/log² g) is below what simulable horizons can "
            "resolve and is documented as such in EXPERIMENTS.md."
        )
        result.consistent_with_paper = consistent
        return result
