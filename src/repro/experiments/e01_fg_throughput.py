"""E1 — the algorithm satisfies the (f, g)-throughput bound (Definition 1.1 / Theorem 1.2).

For a mix of workloads (batch, spread and bursty arrivals; no jamming, random
constant-fraction jamming and reactive jamming) the experiment runs the
paper's algorithm with ``g`` constant, then verifies on every prefix of every
trial that

    active_slots(t)  <=  slack · (n_t · f(t) + d_t · g(t))  +  grace

holds, where ``f`` is the algorithm's own arrival-budget function.  The paper
proves the inequality with an unspecified constant; the experiment reports the
smallest slack-style quantity actually observed (the worst prefix ratio) and
checks it stays below a fixed constant.
"""

from __future__ import annotations

from typing import List, Tuple

from ..analysis.tables import Table
from ..core import AlgorithmParameters
from ..functions import constant_g
from ..metrics import FGThroughputReducer
from ..spec import AdversarySpec, PipelineSpec
from ._helpers import cjz_protocol_spec, study_spec
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["FGThroughputExperiment"]

#: slack multiplier applied to the theoretical bound; the paper's constant is
#: unspecified, so the reproduction fixes one and requires it to suffice
#: uniformly across workloads (the batch workloads measure ~3× f(t) active
#: slots per arrival, so 8× leaves a real but not vacuous margin).
SLACK = 8.0
#: additive grace absorbing the first few slots where every bound is loose.
GRACE = 128.0


def _workloads(config: ExperimentConfig, horizon: int) -> List[Tuple[str, AdversarySpec]]:
    """The experiment's workload mix as declarative adversary specs."""
    batch_size = config.count(96)
    spread_total = config.count(128)
    burst_size = config.count(24)

    return [
        ("batch / no jamming", AdversarySpec.batch(batch_size)),
        ("batch / 25% random jamming", AdversarySpec.batch(batch_size, jam_fraction=0.25)),
        (
            "spread / 20% random jamming",
            AdversarySpec.spread(spread_total, end=horizon // 2, jam_fraction=0.2),
        ),
        (
            "bursty / reactive jamming",
            AdversarySpec.composed(
                "bursty",
                "reactive",
                {"burst_size": burst_size, "period": max(64, horizon // 8)},
                {"fraction": 0.15, "burst": 6},
            ),
        ),
    ]


@register
class FGThroughputExperiment(Experiment):
    """Verify Definition 1.1 empirically for the paper's algorithm."""

    experiment_id = "E1"
    title = "(f, g)-throughput of the Chen-Jiang-Zheng algorithm"
    paper_claim = (
        "Theorem 1.2: with g constant there is f(x) = Θ(log x) such that the "
        "algorithm keeps active_slots(t) ≤ n_t·f(t) + d_t·g(t) for every prefix, w.h.p."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        horizon = config.horizon(4096)
        g = constant_g(4.0)
        parameters = AlgorithmParameters.from_g(g)
        # The bound check runs as a streaming pipeline reducer: every prefix
        # of every trial is verified columnar during the study itself, so the
        # experiment honors --streaming (columns are released after checking).
        pipeline = PipelineSpec.of(
            FGThroughputReducer(
                parameters.f, g, slack=SLACK, min_prefix=64, additive_grace=GRACE
            )
        )

        table = Table(
            title=f"(f,g)-throughput check, horizon={horizon}, slack={SLACK:g}",
            columns=[
                "workload",
                "trials",
                "satisfied",
                "worst ratio",
                "mean active",
                "mean arrivals",
                "mean jammed",
            ],
        )
        worst_ratio_overall = 0.0
        all_satisfied = True
        for label, adversary in _workloads(config, horizon):
            study = study_spec(
                cjz_protocol_spec(g),
                adversary,
                horizon=horizon,
                trials=config.trials,
                seed=config.seed,
                label=label,
                pipeline=pipeline,
                **config.streaming_kwargs,
            ).run()
            verdict = study.metrics()["fg-throughput"]
            satisfied = verdict["satisfied"]
            worst = verdict["worst_ratio"]
            worst_ratio_overall = max(worst_ratio_overall, worst)
            if satisfied < verdict["trials"]:
                all_satisfied = False
            table.add_row(
                label,
                study.trials,
                f"{satisfied}/{verdict['trials']}",
                worst,
                study.mean(lambda r: r.total_active_slots),
                study.mean(lambda r: r.total_arrivals),
                study.mean(lambda r: r.total_jammed_slots),
            )
        result.tables.append(table)
        result.findings["worst_prefix_ratio"] = worst_ratio_overall
        result.findings["all_prefixes_satisfied"] = float(all_satisfied)
        result.conclusion = (
            "Across all workloads every prefix of every trial respects the "
            f"(f, g)-throughput bound with slack {SLACK:g} (worst observed ratio "
            f"{worst_ratio_overall:.2f} of the allowed bound), matching Theorem 1.2's "
            "guarantee up to constants."
            if all_satisfied
            else "Some prefixes violated the bound at the chosen slack; see table."
        )
        result.consistent_with_paper = all_satisfied
        return result
