"""E7 — adaptivity is necessary: non-adaptive senders fail under jamming (Thm 4.2 / Lemma 4.1).

The paper's impossibility results exploit a dilemma that every *fixed*
sending-probability sequence faces:

* if the sequence decays quickly (e.g. ``1/i``), then jamming a prefix of
  ``t/(4·g(t))`` slots wastes the node's aggressive early probabilities and a
  lone node afterwards takes far too long to get through (Theorem 1.3's
  adversary);
* if the sequence decays slowly (e.g. ``log i / i`` or a constant ALOHA
  probability), then a crowd of simultaneously injected nodes keeps the
  contention super-constant for a long time and the crowd cannot be drained at
  the optimal rate (Lemma 4.1's adversary).

The adaptive ``backoff`` subroutine escapes the dilemma because its per-stage
send *count* is fixed in advance: front-loaded jamming does not deplete it,
yet the per-slot rate still decays geometrically.  The experiment runs both
adversary scenarios against three fixed sequences and the paper's algorithm,
and checks that every fixed sequence loses badly in at least one scenario
while the paper's algorithm is good in both.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..adversary import (
    Adversary,
    BatchArrivals,
    ComposedAdversary,
    LowerBoundAdversary,
    RandomFractionJamming,
)
from ..analysis.tables import Table
from ..core import AlgorithmParameters, cjz_factory
from ..functions import constant_g
from ..protocols import (
    LogUniformFixedProtocol,
    ProbabilityBackoff,
    SlottedAloha,
    make_factory,
)
from ..sim import run_trials
from ._helpers import log2
from .base import Experiment, ExperimentResult, register
from .config import ExperimentConfig

__all__ = ["NonAdaptiveFailureExperiment"]


def _front_jam_adversary(horizon: int) -> Callable[[], Adversary]:
    """Scenario A: lone node, jam the first t/(4·g(t)) slots plus a random tail."""
    g = constant_g(4.0)

    def _factory() -> Adversary:
        return LowerBoundAdversary(horizon=horizon, g=g, initial_nodes=1)

    return _factory


def _crowd_adversary(horizon: int) -> Callable[[], Adversary]:
    """Scenario B: a crowd of t/16 nodes at slot 1 plus 25% jamming.

    The crowd is sized so the paper's algorithm can just drain it within the
    horizon (it needs Θ(f(t)) ≈ a dozen active slots per node) while
    constant-probability senders generate hopeless contention.
    """
    crowd = max(16, horizon // 16)

    def _factory() -> Adversary:
        return ComposedAdversary(BatchArrivals(crowd), RandomFractionJamming(0.25))

    return _factory


def _first_success_delay(result) -> float:
    """Slots from the end of the *front-loaded* jammed prefix to the first delivery.

    The front prefix is the maximal run of jammed slots starting at slot 1
    (``prefix_jammed[k] == k``); later random jams do not count towards it.
    Returns the horizon when nothing was ever delivered.
    """
    prefix = 0
    while (
        prefix + 1 <= result.horizon
        and result.prefix_jammed[prefix + 1] == prefix + 1
    ):
        prefix += 1
    for slot in range(prefix + 1, result.horizon + 1):
        if result.prefix_successes[slot] > 0:
            return float(max(1, slot - prefix))
    return float(result.horizon)


def _unfinished_fraction(result) -> float:
    arrivals = max(1, result.total_arrivals)
    return result.unfinished_nodes / arrivals


@register
class NonAdaptiveFailureExperiment(Experiment):
    """Every fixed-probability sequence fails one of the two lower-bound scenarios."""

    experiment_id = "E7"
    title = "Necessity of adaptive backoff under jamming (Theorem 4.2 / Lemma 4.1)"
    paper_claim = (
        "Any algorithm with a pre-defined sending-probability sequence cannot achieve "
        "the optimal (f, g)-throughput: fast-decaying sequences are starved by "
        "front-loaded jamming, slowly-decaying ones are drowned by crowds."
    )

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        result = self.make_result()
        horizon = config.horizon(8192)
        contenders: Dict[str, Callable] = {
            "cjz (adaptive backoff)": cjz_factory(
                AlgorithmParameters.from_g(constant_g(4.0))
            ),
            "fixed 1/i": make_factory(ProbabilityBackoff, 1.0),
            "fixed log(i)/i": make_factory(LogUniformFixedProtocol, 1.0),
            "slotted aloha (p=0.05)": make_factory(SlottedAloha, 0.05),
        }

        # Scenario A: recovery of a lone node after front-loaded jamming.
        table_a = Table(
            title=f"Scenario A: lone node, jammed prefix of t/16 slots (t={horizon})",
            columns=["protocol", "mean delay after jam prefix", "failed to deliver"],
        )
        delays: Dict[str, float] = {}
        for name, factory in contenders.items():
            study = run_trials(
                protocol_factory=factory,
                adversary_factory=_front_jam_adversary(horizon),
                horizon=horizon,
                trials=config.trials,
                seed=config.seed,
                label=f"A/{name}",
                **config.execution_kwargs,
            )
            delays[name] = study.mean(_first_success_delay)
            table_a.add_row(
                name,
                delays[name],
                f"{study.fraction_satisfying(lambda r: r.unfinished_nodes > 0):.0%}",
            )
        result.tables.append(table_a)

        # Scenario B: draining a crowd under constant-fraction jamming.
        table_b = Table(
            title=f"Scenario B: crowd of t/(2 log t) nodes at slot 1, 25% jamming (t={horizon})",
            columns=["protocol", "delivered", "unfinished fraction"],
        )
        unfinished: Dict[str, float] = {}
        for name, factory in contenders.items():
            study = run_trials(
                protocol_factory=factory,
                adversary_factory=_crowd_adversary(horizon),
                horizon=horizon,
                trials=config.trials,
                seed=config.seed + 1,
                label=f"B/{name}",
                **config.execution_kwargs,
            )
            unfinished[name] = study.mean(_unfinished_fraction)
            table_b.add_row(
                name,
                study.mean(lambda r: r.total_successes),
                unfinished[name],
            )
        result.tables.append(table_b)

        adaptive = "cjz (adaptive backoff)"
        adaptive_delay = delays[adaptive]
        adaptive_unfinished = unfinished[adaptive]
        for name in contenders:
            if name == adaptive:
                continue
            result.findings[f"delay_ratio[{name}]"] = delays[name] / max(adaptive_delay, 1.0)
            result.findings[f"extra_unfinished[{name}]"] = (
                unfinished[name] - adaptive_unfinished
            )
        result.findings["adaptive_recovery_delay"] = adaptive_delay
        result.findings["adaptive_unfinished_fraction"] = adaptive_unfinished

        # The dilemma's two horns, checked on the sequences the proofs target:
        # the fast-decaying 1/i sequence must be starved by the jammed prefix,
        # and the constant-probability sender must drown in the crowd.  The
        # log(i)/i sequence is reported for context only: it is essentially the
        # paper's own control-channel rate, and Theorem 4.2 separates it from
        # the adaptive algorithm only by a log g(t) factor, which requires the
        # large-g regime (far bigger horizons) to resolve.
        # At constant g the starvation of the 1/i sequence is a log-factor
        # effect (its recovery takes ~e·prefix slots versus ~prefix/(f/4) for
        # the adaptive backoff), so a 1.5× margin is the honest threshold at
        # simulable horizons.
        fast_decay_starved = delays["fixed 1/i"] > 1.5 * max(adaptive_delay, 1.0)
        constant_p_drowned = (
            unfinished["slotted aloha (p=0.05)"] > adaptive_unfinished + 0.15
        )
        adaptive_good = adaptive_unfinished < 0.1

        result.conclusion = (
            "The two horns of the Section-4 dilemma are both visible: the fast-decaying 1/i "
            f"sequence needs {delays['fixed 1/i'] / max(adaptive_delay, 1.0):.0f}× longer than "
            "the adaptive algorithm to recover after the jammed prefix, and the constant-"
            f"probability sender leaves {unfinished['slotted aloha (p=0.05)']:.0%} of the crowd "
            "undelivered where the adaptive algorithm drains essentially everything.  The "
            "log(i)/i sequence — the paper's own control-channel rate — sits in between; its "
            "separation from the adaptive algorithm is only a log g(t) factor and needs the "
            "large-g regime to show up."
        )
        result.consistent_with_paper = (
            fast_decay_starved and constant_p_drowned and adaptive_good
        )
        return result
