"""Shared helpers for the experiment modules.

Experiments describe their workloads declaratively: the adversary helpers
return :class:`~repro.spec.AdversarySpec`-backed factories and the study
helpers assemble full :class:`~repro.spec.StudySpec` values, so every
experiment configuration is serializable, hashable and sweepable.  Raw
callables remain accepted everywhere (`run_trials`'s escape hatch) for the
few configurations with no declarative form.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Union

from ..adversary import Adversary
from ..errors import SpecError
from ..functions import RateFunction
from ..protocols.base import ProtocolFactory
from ..sim import TrialStudy, run_trials
from ..spec import (
    AdversarySpec,
    PipelineSpec,
    ProtocolSpec,
    StudySpec,
    rate_function_to_spec,
)

__all__ = [
    "batch_jam_adversary",
    "spread_jam_adversary",
    "cjz_protocol_spec",
    "cjz_study",
    "protocol_study",
    "study_spec",
    "log2",
]

AdversaryLike = Union[AdversarySpec, Callable[[], Adversary]]
ProtocolLike = Union[ProtocolSpec, ProtocolFactory]


def log2(x: float) -> float:
    return math.log2(max(x, 2.0))


def batch_jam_adversary(
    count: int, jam_fraction: float = 0.0, slot: int = 1
) -> Callable[[], Adversary]:
    """Factory for a batch-arrival adversary with optional random jamming.

    Spec-backed: the declarative description is on the factory's ``spec``
    attribute (an :class:`~repro.spec.AdversarySpec`).
    """
    return AdversarySpec.batch(count, jam_fraction=jam_fraction, slot=slot).factory()


def spread_jam_adversary(
    total: int, horizon: int, jam_fraction: float = 0.0
) -> Callable[[], Adversary]:
    """Factory for uniformly spread arrivals with optional random jamming."""
    spec = AdversarySpec.spread(
        total, end=max(1, horizon // 2), jam_fraction=jam_fraction
    )
    return spec.factory(horizon)


def cjz_protocol_spec(
    g: Optional[RateFunction] = None, c3: Optional[float] = None
) -> ProtocolSpec:
    """ProtocolSpec for the paper's algorithm parameterized by ``g`` (and ``c3``)."""
    params = {}
    if g is not None:
        params["g"] = rate_function_to_spec(g)
    if c3 is not None:
        params["c3"] = c3
    return ProtocolSpec(kind="cjz", params=params)


def study_spec(
    protocol: ProtocolSpec,
    adversary: AdversarySpec,
    horizon: int,
    trials: int,
    seed: Optional[int],
    stop_when_drained: bool = False,
    label: str = "",
    backend: str = "auto",
    workers: int = 1,
    pipeline: Optional[PipelineSpec] = None,
    streaming: bool = False,
) -> StudySpec:
    """Assemble a StudySpec from experiment-level arguments."""
    return StudySpec(
        protocol=protocol,
        adversary=adversary,
        horizon=horizon,
        trials=trials,
        seed=seed,
        backend=backend,
        workers=workers,
        stop_when_drained=stop_when_drained,
        label=label,
        pipeline=pipeline,
        streaming=streaming,
    )


def cjz_study(
    adversary: AdversaryLike,
    horizon: int,
    trials: int,
    seed: int,
    g: Optional[RateFunction] = None,
    stop_when_drained: bool = False,
    label: str = "",
    backend: str = "auto",
    workers: int = 1,
    pipeline: Optional[PipelineSpec] = None,
    streaming: bool = False,
) -> TrialStudy:
    """Run the paper's algorithm (parameterized by ``g``) across trials.

    Falls back to the callable-factory path when ``g`` has no serializable
    family spec or the adversary is a raw factory.
    """
    try:
        protocol: ProtocolLike = cjz_protocol_spec(g)
    except SpecError:
        from ..core import AlgorithmParameters, cjz_factory
        from ..functions import constant_g

        protocol = cjz_factory(AlgorithmParameters.from_g(g or constant_g(4.0)))
    if isinstance(adversary, AdversarySpec) and isinstance(protocol, ProtocolSpec):
        return study_spec(
            protocol,
            adversary,
            horizon,
            trials,
            seed,
            stop_when_drained=stop_when_drained,
            label=label,
            backend=backend,
            workers=workers,
            pipeline=pipeline,
            streaming=streaming,
        ).run()
    return run_trials(
        protocol_factory=protocol,
        adversary_factory=adversary,
        horizon=horizon,
        trials=trials,
        seed=seed,
        stop_when_drained=stop_when_drained,
        label=label,
        backend=backend,
        workers=workers,
        pipeline=pipeline,
        streaming=streaming,
    )


def protocol_study(
    protocol: ProtocolLike,
    adversary: AdversaryLike,
    horizon: int,
    trials: int,
    seed: int,
    stop_when_drained: bool = False,
    label: str = "",
    backend: str = "auto",
    workers: int = 1,
    pipeline: Optional[PipelineSpec] = None,
    streaming: bool = False,
) -> TrialStudy:
    """Run an arbitrary protocol (spec or factory) across trials."""
    if isinstance(protocol, ProtocolSpec) and isinstance(adversary, AdversarySpec):
        return study_spec(
            protocol,
            adversary,
            horizon,
            trials,
            seed,
            stop_when_drained=stop_when_drained,
            label=label,
            backend=backend,
            workers=workers,
            pipeline=pipeline,
            streaming=streaming,
        ).run()
    return run_trials(
        protocol_factory=protocol,
        adversary_factory=adversary,
        horizon=horizon,
        trials=trials,
        seed=seed,
        stop_when_drained=stop_when_drained,
        label=label,
        backend=backend,
        workers=workers,
        pipeline=pipeline,
        streaming=streaming,
    )
