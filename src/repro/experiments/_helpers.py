"""Shared helpers for the experiment modules."""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..adversary import (
    Adversary,
    BatchArrivals,
    ComposedAdversary,
    NoJamming,
    RandomFractionJamming,
    UniformRandomArrivals,
)
from ..core import AlgorithmParameters, cjz_factory
from ..functions import RateFunction, constant_g
from ..protocols.base import ProtocolFactory
from ..sim import TrialStudy, run_trials

__all__ = [
    "batch_jam_adversary",
    "spread_jam_adversary",
    "cjz_study",
    "protocol_study",
    "log2",
]


def log2(x: float) -> float:
    return math.log2(max(x, 2.0))


def batch_jam_adversary(
    count: int, jam_fraction: float = 0.0, slot: int = 1
) -> Callable[[], Adversary]:
    """Factory for a batch-arrival adversary with optional random jamming."""

    def _factory() -> Adversary:
        jamming = (
            RandomFractionJamming(jam_fraction) if jam_fraction > 0 else NoJamming()
        )
        return ComposedAdversary(BatchArrivals(count, slot=slot), jamming)

    return _factory


def spread_jam_adversary(
    total: int, horizon: int, jam_fraction: float = 0.0
) -> Callable[[], Adversary]:
    """Factory for uniformly spread arrivals with optional random jamming."""

    def _factory() -> Adversary:
        jamming = (
            RandomFractionJamming(jam_fraction) if jam_fraction > 0 else NoJamming()
        )
        return ComposedAdversary(
            UniformRandomArrivals(total, (1, max(1, horizon // 2))), jamming
        )

    return _factory


def cjz_study(
    adversary_factory: Callable[[], Adversary],
    horizon: int,
    trials: int,
    seed: int,
    g: Optional[RateFunction] = None,
    stop_when_drained: bool = False,
    label: str = "",
    backend: str = "auto",
    workers: int = 1,
) -> TrialStudy:
    """Run the paper's algorithm (parameterized by ``g``) across trials."""
    parameters = AlgorithmParameters.from_g(g or constant_g(4.0))
    return run_trials(
        protocol_factory=cjz_factory(parameters),
        adversary_factory=adversary_factory,
        horizon=horizon,
        trials=trials,
        seed=seed,
        stop_when_drained=stop_when_drained,
        label=label,
        backend=backend,
        workers=workers,
    )


def protocol_study(
    protocol_factory: ProtocolFactory,
    adversary_factory: Callable[[], Adversary],
    horizon: int,
    trials: int,
    seed: int,
    stop_when_drained: bool = False,
    label: str = "",
    backend: str = "auto",
    workers: int = 1,
) -> TrialStudy:
    """Run an arbitrary protocol across trials (thin wrapper for symmetry)."""
    return run_trials(
        protocol_factory=protocol_factory,
        adversary_factory=adversary_factory,
        horizon=horizon,
        trials=trials,
        seed=seed,
        stop_when_drained=stop_when_drained,
        label=label,
        backend=backend,
        workers=workers,
    )
