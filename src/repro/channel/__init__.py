"""Multiple-access channel substrate.

The channel is the shared resource of the contention-resolution problem: in
each slot it takes the set of broadcasting nodes plus the adversary's jamming
decision and produces a :class:`~repro.types.SlotOutcome` and the feedback that
nodes (and the adversary) observe.
"""

from .feedback import FeedbackModel, NoCollisionDetection, WithCollisionDetection
from .multiple_access import MultipleAccessChannel
from .virtual import VirtualChannelView, slot_parity

__all__ = [
    "FeedbackModel",
    "NoCollisionDetection",
    "WithCollisionDetection",
    "MultipleAccessChannel",
    "VirtualChannelView",
    "slot_parity",
]
