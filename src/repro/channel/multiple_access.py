"""The multiple-access channel: slot resolution and feedback generation."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..types import Feedback, NodeId, SlotOutcome
from .feedback import FeedbackModel, NoCollisionDetection

__all__ = ["MultipleAccessChannel"]


class MultipleAccessChannel:
    """Resolves slots of a synchronous multiple-access channel.

    A slot succeeds if and only if exactly one node broadcasts and the slot is
    not jammed.  A jammed slot always produces a collision outcome regardless
    of the number of broadcasters (including zero), per the paper's jamming
    model.  The channel is stateless apart from bookkeeping counters; all
    protocol and adversary state lives elsewhere.
    """

    def __init__(self, feedback_model: Optional[FeedbackModel] = None) -> None:
        self._feedback_model = feedback_model or NoCollisionDetection()
        self._slots_resolved = 0
        self._successes = 0
        self._jammed = 0

    @property
    def feedback_model(self) -> FeedbackModel:
        return self._feedback_model

    @property
    def collision_detection(self) -> bool:
        return self._feedback_model.collision_detection

    @property
    def slots_resolved(self) -> int:
        return self._slots_resolved

    @property
    def successes(self) -> int:
        return self._successes

    @property
    def jammed_slots(self) -> int:
        return self._jammed

    def resolve(
        self,
        broadcasters: Iterable[NodeId],
        jammed: bool = False,
    ) -> Tuple[SlotOutcome, Optional[NodeId], Feedback]:
        """Resolve one slot.

        Parameters
        ----------
        broadcasters:
            Ids of the nodes broadcasting in the slot.
        jammed:
            Whether the adversary jams the slot.

        Returns
        -------
        (outcome, successful_node, feedback):
            The physical outcome, the id of the node whose message was
            delivered (or ``None``) and the feedback heard by every listener.
        """
        senders: Sequence[NodeId] = tuple(broadcasters)
        self._slots_resolved += 1
        if jammed:
            self._jammed += 1
            outcome = SlotOutcome.COLLISION
            winner: Optional[NodeId] = None
        elif len(senders) == 1:
            outcome = SlotOutcome.SUCCESS
            winner = senders[0]
            self._successes += 1
        elif len(senders) == 0:
            outcome = SlotOutcome.SILENCE
            winner = None
        else:
            outcome = SlotOutcome.COLLISION
            winner = None
        feedback = self._feedback_model.feedback_for(outcome)
        return outcome, winner, feedback

    def record_bulk(self, slots: int, successes: int, jammed: int) -> None:
        """Account for ``slots`` resolved outside :meth:`resolve`.

        The vectorized slot kernel resolves whole horizons in array form and
        reports the totals here so the channel's bookkeeping counters stay in
        sync with the per-slot reference path.
        """
        self._slots_resolved += slots
        self._successes += successes
        self._jammed += jammed

    def reset(self) -> None:
        """Clear the bookkeeping counters."""
        self._slots_resolved = 0
        self._successes = 0
        self._jammed = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultipleAccessChannel(cd={self.collision_detection}, "
            f"slots={self._slots_resolved}, successes={self._successes})"
        )
