"""Feedback models: how slot outcomes are reported to nodes.

The paper's setting is a channel *without* collision detection: a node can only
distinguish a successful slot (it hears the unique transmitted message) from a
wasted slot (silence or collision look identical).  A collision-detection model
is also provided because the reference baseline (backon/backoff in the style of
Bender et al. 2018) needs it, and because comparing the two regimes is exactly
the point of the paper.
"""

from __future__ import annotations

import abc

from ..types import Feedback, SlotOutcome

__all__ = ["FeedbackModel", "NoCollisionDetection", "WithCollisionDetection"]


class FeedbackModel(abc.ABC):
    """Maps a physical slot outcome to the feedback heard on the channel."""

    #: whether nodes can distinguish silence from collision
    collision_detection: bool = False

    @abc.abstractmethod
    def feedback_for(self, outcome: SlotOutcome) -> Feedback:
        """Return the feedback all listeners receive for ``outcome``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NoCollisionDetection(FeedbackModel):
    """The paper's model: silence and collision are indistinguishable."""

    collision_detection = False

    def feedback_for(self, outcome: SlotOutcome) -> Feedback:
        if outcome is SlotOutcome.SUCCESS:
            return Feedback.SUCCESS
        return Feedback.NO_SUCCESS


class WithCollisionDetection(FeedbackModel):
    """Reference model where wasted slots reveal whether anybody broadcast."""

    collision_detection = True

    def feedback_for(self, outcome: SlotOutcome) -> Feedback:
        if outcome is SlotOutcome.SUCCESS:
            return Feedback.SUCCESS
        if outcome is SlotOutcome.COLLISION:
            return Feedback.COLLISION
        return Feedback.SILENCE
