"""Virtual odd/even channels.

The paper's algorithm conceptually splits the single physical channel into two
virtual channels by slot parity: the *odd channel* consists of slots with odd
global index and the *even channel* of slots with even index.  Nodes do not
know the global parity of any slot; what matters to a node is the parity of a
slot *relative to an anchor slot it has observed* (its own arrival slot or a
success it heard).  :class:`VirtualChannelView` encapsulates that relative
bookkeeping so protocol code never manipulates raw parities directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import ChannelParity

__all__ = ["slot_parity", "VirtualChannelView"]


def slot_parity(slot: int) -> ChannelParity:
    """Global parity of a slot index (1-based)."""
    if slot < 1:
        raise ValueError("slot indices are 1-based")
    return ChannelParity.of_slot(slot)


@dataclass(frozen=True)
class VirtualChannelView:
    """A node's view of one virtual channel, anchored at a reference slot.

    The view selects the sub-sequence of global slots that share the parity of
    ``anchor_slot`` (if ``same_parity``) or the opposite parity.  It can answer
    two questions protocol code needs:

    * does a given global slot belong to this virtual channel?
    * how many slots of this virtual channel have elapsed since the anchor
      (the *local index*, 1-based)?
    """

    anchor_slot: int
    same_parity: bool = True

    def __post_init__(self) -> None:
        if self.anchor_slot < 1:
            raise ValueError("anchor slot must be >= 1")

    @property
    def parity(self) -> ChannelParity:
        base = ChannelParity.of_slot(self.anchor_slot)
        return base if self.same_parity else base.other()

    def contains(self, slot: int) -> bool:
        """Whether global ``slot`` (>= anchor) lies on this virtual channel."""
        if slot < self.anchor_slot:
            return False
        return ChannelParity.of_slot(slot) == self.parity

    def local_index(self, slot: int) -> int:
        """1-based index of ``slot`` within this virtual channel, counted from the anchor.

        Raises ``ValueError`` if the slot is not on the channel or precedes the
        anchor.
        """
        if not self.contains(slot):
            raise ValueError(f"slot {slot} is not on virtual channel {self!r}")
        first = self.first_slot()
        return (slot - first) // 2 + 1

    def first_slot(self) -> int:
        """First global slot >= anchor that lies on this virtual channel."""
        if ChannelParity.of_slot(self.anchor_slot) == self.parity:
            return self.anchor_slot
        return self.anchor_slot + 1

    def opposite(self) -> "VirtualChannelView":
        """The complementary virtual channel with the same anchor."""
        return VirtualChannelView(self.anchor_slot, not self.same_parity)
