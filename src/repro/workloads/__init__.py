"""Named workload scenarios motivated by the paper's introduction."""

from .scenarios import Scenario, STANDARD_SCENARIOS, get_scenario
from .generator import WorkloadSpec, build_adversary_factory

__all__ = [
    "Scenario",
    "STANDARD_SCENARIOS",
    "get_scenario",
    "WorkloadSpec",
    "build_adversary_factory",
]
