"""Named workload scenarios motivated by the paper's introduction.

Scenarios fold into the unified spec layer (:mod:`repro.spec`): each one
exposes its adversary as an :class:`~repro.spec.AdversarySpec` and a
complete runnable :class:`~repro.spec.StudySpec` via
:func:`scenario_study` / :meth:`Scenario.study_spec`.
"""

from .scenarios import Scenario, STANDARD_SCENARIOS, get_scenario, scenario_study
from .generator import WorkloadSpec, build_adversary_factory

__all__ = [
    "Scenario",
    "STANDARD_SCENARIOS",
    "get_scenario",
    "scenario_study",
    "WorkloadSpec",
    "build_adversary_factory",
]
