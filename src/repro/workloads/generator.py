"""Workload specification: declarative description of an adversary to build.

.. deprecated-shape::
    :class:`WorkloadSpec` predates the unified spec layer and is kept as a
    thin, stable veneer: it folds directly into a
    :class:`~repro.spec.AdversarySpec` (:meth:`WorkloadSpec.to_adversary_spec`)
    and every build goes through the :data:`repro.spec.ARRIVAL_STRATEGIES` /
    :data:`repro.spec.JAMMING_STRATEGIES` registries, so a workload is the
    same first-class, JSON-round-trippable data as any other adversary spec.
    New code should construct :class:`~repro.spec.AdversarySpec` (or a full
    :class:`~repro.spec.StudySpec`) directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from ..adversary import Adversary
from ..errors import ConfigurationError
from ..spec.adversary import AdversarySpec, StrategySpec

__all__ = ["WorkloadSpec", "build_adversary_factory"]

#: legacy workload kind -> spec-layer strategy kind
_ARRIVAL_KINDS = {
    "none": "no-arrivals",
    "batch": "batch",
    "poisson": "poisson",
    "uniform": "uniform-random",
    "bursty": "bursty",
}
_JAMMING_KINDS = {
    "none": "no-jamming",
    "random": "random-fraction",
    "periodic": "periodic",
    "reactive": "reactive",
}

ARRIVAL_KINDS = tuple(_ARRIVAL_KINDS)
JAMMING_KINDS = tuple(_JAMMING_KINDS)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload: arrivals, jamming and horizon.

    Attributes
    ----------
    horizon:
        Number of slots.
    arrival_kind / arrival_params:
        One of ``none``, ``batch`` (``count``, ``slot``), ``poisson``
        (``rate``), ``uniform`` (``total``, ``start``, ``end``), ``bursty``
        (``burst_size``, ``period``).
    jamming_kind / jamming_params:
        One of ``none``, ``random`` (``fraction``), ``periodic`` (``period``),
        ``reactive`` (``fraction``, ``burst``).
    label:
        Human-readable name used in reports.
    """

    horizon: int
    arrival_kind: str = "batch"
    arrival_params: Dict[str, float] = field(default_factory=dict)
    jamming_kind: str = "none"
    jamming_params: Dict[str, float] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if self.arrival_kind not in _ARRIVAL_KINDS:
            raise ConfigurationError(f"unknown arrival kind {self.arrival_kind!r}")
        if self.jamming_kind not in _JAMMING_KINDS:
            raise ConfigurationError(f"unknown jamming kind {self.jamming_kind!r}")

    @property
    def name(self) -> str:
        return self.label or f"{self.arrival_kind}+{self.jamming_kind}"

    def to_adversary_spec(self) -> AdversarySpec:
        """The equivalent first-class :class:`~repro.spec.AdversarySpec`.

        Horizon-dependent defaults (uniform window end, burst period) stay
        unresolved in the spec; they are filled from the horizon at build
        time, exactly as the registries define.
        """
        return AdversarySpec(
            arrivals=StrategySpec(
                _ARRIVAL_KINDS[self.arrival_kind], dict(self.arrival_params)
            ),
            jamming=StrategySpec(
                _JAMMING_KINDS[self.jamming_kind], dict(self.jamming_params)
            ),
            label=self.name,
        )


def build_adversary_factory(spec: WorkloadSpec) -> Callable[[], Adversary]:
    """Return a factory producing a fresh adversary instance for each trial."""
    return spec.to_adversary_spec().factory(spec.horizon)
