"""Workload specification: declarative description of an adversary to build.

Experiments describe their workloads as :class:`WorkloadSpec` values (arrival
pattern + jamming pattern + horizon), and :func:`build_adversary_factory`
turns a spec into the adversary factory the trial runner needs.  Keeping the
description declarative makes experiment configurations serializable and
keeps the sweep code free of adversary-construction details.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..adversary import (
    Adversary,
    BatchArrivals,
    BurstyArrivals,
    ComposedAdversary,
    NoArrivals,
    NoJamming,
    PeriodicJamming,
    PoissonArrivals,
    RandomFractionJamming,
    ReactiveJamming,
    UniformRandomArrivals,
)
from ..errors import ConfigurationError

__all__ = ["WorkloadSpec", "build_adversary_factory"]

ARRIVAL_KINDS = ("none", "batch", "poisson", "uniform", "bursty")
JAMMING_KINDS = ("none", "random", "periodic", "reactive")


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload: arrivals, jamming and horizon.

    Attributes
    ----------
    horizon:
        Number of slots.
    arrival_kind / arrival_params:
        One of ``none``, ``batch`` (``count``, ``slot``), ``poisson``
        (``rate``), ``uniform`` (``total``, ``start``, ``end``), ``bursty``
        (``burst_size``, ``period``).
    jamming_kind / jamming_params:
        One of ``none``, ``random`` (``fraction``), ``periodic`` (``period``),
        ``reactive`` (``fraction``, ``burst``).
    label:
        Human-readable name used in reports.
    """

    horizon: int
    arrival_kind: str = "batch"
    arrival_params: Dict[str, float] = field(default_factory=dict)
    jamming_kind: str = "none"
    jamming_params: Dict[str, float] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if self.arrival_kind not in ARRIVAL_KINDS:
            raise ConfigurationError(f"unknown arrival kind {self.arrival_kind!r}")
        if self.jamming_kind not in JAMMING_KINDS:
            raise ConfigurationError(f"unknown jamming kind {self.jamming_kind!r}")

    @property
    def name(self) -> str:
        return self.label or f"{self.arrival_kind}+{self.jamming_kind}"


def _build_arrivals(spec: WorkloadSpec):
    params = spec.arrival_params
    if spec.arrival_kind == "none":
        return NoArrivals()
    if spec.arrival_kind == "batch":
        return BatchArrivals(
            count=int(params.get("count", 32)), slot=int(params.get("slot", 1))
        )
    if spec.arrival_kind == "poisson":
        return PoissonArrivals(
            rate=float(params.get("rate", 0.05)),
            last_slot=int(params["last_slot"]) if "last_slot" in params else None,
        )
    if spec.arrival_kind == "uniform":
        return UniformRandomArrivals(
            total=int(params.get("total", 32)),
            window=(
                int(params.get("start", 1)),
                int(params.get("end", spec.horizon)),
            ),
        )
    if spec.arrival_kind == "bursty":
        return BurstyArrivals(
            burst_size=int(params.get("burst_size", 16)),
            period=int(params.get("period", max(2, spec.horizon // 8))),
        )
    raise ConfigurationError(f"unknown arrival kind {spec.arrival_kind!r}")


def _build_jamming(spec: WorkloadSpec):
    params = spec.jamming_params
    if spec.jamming_kind == "none":
        return NoJamming()
    if spec.jamming_kind == "random":
        return RandomFractionJamming(fraction=float(params.get("fraction", 0.25)))
    if spec.jamming_kind == "periodic":
        return PeriodicJamming(period=int(params.get("period", 4)))
    if spec.jamming_kind == "reactive":
        return ReactiveJamming(
            fraction=float(params.get("fraction", 0.2)),
            burst=int(params.get("burst", 8)),
        )
    raise ConfigurationError(f"unknown jamming kind {spec.jamming_kind!r}")


def build_adversary_factory(spec: WorkloadSpec) -> Callable[[], Adversary]:
    """Return a factory producing a fresh adversary instance for each trial."""

    def _factory() -> Adversary:
        adversary = ComposedAdversary(_build_arrivals(spec), _build_jamming(spec))
        adversary.name = spec.name
        return adversary

    return _factory
