"""Named scenarios from the application domains the paper's introduction cites.

The introduction motivates contention resolution with congestion control in
Ethernet / 802.11 networks, concurrency control (locking) and shared devices
suffering external interference.  Each scenario below maps one of those
settings onto a :class:`~repro.workloads.generator.WorkloadSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError
from .generator import WorkloadSpec

__all__ = ["Scenario", "STANDARD_SCENARIOS", "get_scenario", "scenario_study"]


@dataclass(frozen=True)
class Scenario:
    """A named workload with a short story explaining what it models.

    Scenarios are first-class runnable specs: :meth:`adversary_spec` is the
    serializable adversary description and :meth:`study_spec` the complete
    :class:`~repro.spec.StudySpec` (paper's algorithm by default), ready for
    ``.run()``, JSON export or a sweep.
    """

    key: str
    description: str
    spec: WorkloadSpec

    def adversary_spec(self):
        """The scenario's workload as a first-class AdversarySpec."""
        return self.spec.to_adversary_spec()

    def study_spec(
        self,
        protocol: Optional[Any] = None,
        trials: int = 5,
        seed: Optional[int] = 20210219,
        backend: str = "auto",
        workers: int = 1,
        stop_when_drained: bool = False,
    ):
        """A complete runnable StudySpec for this scenario.

        ``protocol`` is a :class:`~repro.spec.ProtocolSpec` (default: the
        paper's algorithm with constant ``g``).
        """
        from ..spec import ProtocolSpec, StudySpec

        return StudySpec(
            protocol=protocol or ProtocolSpec(),
            adversary=self.adversary_spec(),
            horizon=self.spec.horizon,
            trials=trials,
            seed=seed,
            backend=backend,
            workers=workers,
            stop_when_drained=stop_when_drained,
            label=self.key,
        )


def _make_standard_scenarios() -> Tuple[Scenario, ...]:
    return (
        Scenario(
            key="ethernet-burst",
            description=(
                "Ethernet-style traffic: periodic bursts of stations waking up "
                "with frames to send on an otherwise clean channel."
            ),
            spec=WorkloadSpec(
                horizon=8192,
                arrival_kind="bursty",
                arrival_params={"burst_size": 24, "period": 1024},
                jamming_kind="none",
                label="ethernet-burst",
            ),
        ),
        Scenario(
            key="wireless-interference",
            description=(
                "Wireless link with electromagnetic interference: Poisson node "
                "arrivals while a quarter of all slots are unusable."
            ),
            spec=WorkloadSpec(
                horizon=8192,
                arrival_kind="poisson",
                arrival_params={"rate": 0.02},
                jamming_kind="random",
                jamming_params={"fraction": 0.25},
                label="wireless-interference",
            ),
        ),
        Scenario(
            key="lock-convoy",
            description=(
                "Database lock convoy: a large batch of transactions all try to "
                "acquire the same lock at once; the lock manager occasionally "
                "stalls (reactive jamming after each grant)."
            ),
            spec=WorkloadSpec(
                horizon=8192,
                arrival_kind="batch",
                # Large enough that fixed-probability senders (ALOHA) generate
                # hopeless contention, yet well within the Θ(log t)-per-arrival
                # capacity of the paper's algorithm over this horizon.
                arrival_params={"count": 192},
                jamming_kind="reactive",
                jamming_params={"fraction": 0.1, "burst": 4},
                label="lock-convoy",
            ),
        ),
        Scenario(
            key="adversarial-jam",
            description=(
                "Worst-case regime of the paper: steady arrivals with a constant "
                "fraction of all slots jammed."
            ),
            spec=WorkloadSpec(
                horizon=8192,
                arrival_kind="uniform",
                # The offered load is kept below the algorithm's sustainable
                # throughput of roughly one arrival per Θ(log t) slots so the
                # comparison measures robustness, not overload behaviour.
                arrival_params={"total": 160},
                jamming_kind="random",
                jamming_params={"fraction": 0.25},
                label="adversarial-jam",
            ),
        ),
    )


STANDARD_SCENARIOS: Dict[str, Scenario] = {
    scenario.key: scenario for scenario in _make_standard_scenarios()
}


def get_scenario(key: str) -> Scenario:
    """Look up a standard scenario by key, raising on unknown names."""
    try:
        return STANDARD_SCENARIOS[key]
    except KeyError as exc:
        known = ", ".join(sorted(STANDARD_SCENARIOS))
        raise ConfigurationError(f"unknown scenario {key!r}; known: {known}") from exc


def scenario_study(key: str, **overrides):
    """Shorthand: the named scenario's StudySpec (see :meth:`Scenario.study_spec`)."""
    return get_scenario(key).study_spec(**overrides)
