"""Newline-delimited JSON protocol of the sweep service.

One request per line, one-or-more response lines per request, everything a
single JSON object.  The protocol is deliberately transport-trivial —
``telnet``/``nc`` are usable debug clients — and stdlib-only on both ends.

Requests (``{"op": ..., ...}``)::

    {"op": "submit", "spec": {...StudySpec...}, "priority": 0, "wait": true}
    {"op": "submit", "specs": [{...}, {...}], ...}
    {"op": "submit", "sweep": {"base": {...}, "axes": {"horizon": [1024, 2048]}}}
    {"op": "status", "hashes": ["<spec_hash>", ...]}     # omitted = all jobs
    {"op": "result", "hashes": ["<spec_hash>", ...], "wait": true}
    {"op": "stats"}
    {"op": "shutdown"}

Every request is answered first with an acknowledgement object carrying
``"ok"``; a request that blocks (``result``, or ``submit`` with ``wait``)
then streams one ``{"event": "result", ...}`` line per job **in completion
order** and finishes with ``{"event": "end"}``.  Errors are
``{"ok": false, "error": "..."}`` — the connection stays usable.

Jobs are identified by ``StudySpec.spec_hash()``: submitting the same spec
twice *is* the dedupe key, so job ids are stable across clients and
restarts.  That stability is what makes client retries safe: re-sending a
whole ``submit`` after a dropped connection or a server restart reattaches
to (or re-creates) exactly the same jobs.  The ``stats`` reply carries
``"draining": true`` while the server is in its graceful-shutdown window —
new ``submit`` requests are refused with an error then — and
``"journaled"`` reports whether a write-ahead journal backs the job table
(``repro serve --journal``), i.e. whether accepted jobs survive a crash.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "KNOWN_OPS",
    "decode_line",
    "encode_message",
    "error_message",
]

PROTOCOL_VERSION = 1

#: Operations the server understands.
KNOWN_OPS = ("submit", "status", "result", "stats", "shutdown")

#: Cap on a single request line; a submit of a few thousand sweep points
#: stays far below this, while a runaway client cannot balloon server
#: memory.
MAX_LINE_BYTES = 32 * 1024 * 1024


def encode_message(message: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline, UTF-8."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> Dict[str, Any]:
    """Parse one protocol line into a message dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"invalid protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServeError(f"protocol messages must be JSON objects: {line!r}")
    return message


def error_message(text: str) -> Dict[str, Any]:
    return {"ok": False, "error": str(text)}
