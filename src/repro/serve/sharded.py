"""Consistent-hash sharded study store with eviction and rebalancing.

:class:`ShardedStudyStore` implements the exact get/put/contains/entries
surface of :class:`~repro.spec.StudyStore`, but routes each study's
``spec_hash()`` to one of K shard directories through a
:class:`~repro.serve.ring.ConsistentHashRing`.  Each shard directory *is* a
plain ``StudyStore`` (same layout, same atomic writes, same corruption
quarantine), so a shard can always be opened, inspected or salvaged as an
ordinary store.

The topology (shard names + virtual-node count) is persisted to
``<root>/ring.json`` when the store is first created, and every later open
loads it — two processes over the same root always agree on placement.
Changing the shard count is an explicit :meth:`rebalance`, which rewrites
the topology and moves only the entries whose owner changed (the
consistent-hash property: an expected ``1/K`` of them).

Because a cache of millions of studies cannot grow unbounded, the store has
an eviction policy: :meth:`evict` brings every shard under a byte budget by
deleting entries LRU-by-atime — except entries written through *this* store
instance (or newer on disk than its open time), which are never evicted:
a long sweep can trim the cache behind itself without cannibalising its own
run.  ``repro store stats|evict|rebalance`` expose all of this from the
shell.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .. import faults
from ..errors import SpecError
from ..sim import health
from ..spec.store import StudyStore
from ..spec.study import StudySpec
from .ring import DEFAULT_VIRTUAL_NODES, ConsistentHashRing

__all__ = ["ShardedStudyStore"]

RING_FILE = "ring.json"
_DEFAULT_SHARDS = 2


def _shard_names(count: int) -> List[str]:
    return [f"shard-{index:02d}" for index in range(count)]


class ShardedStudyStore:
    """K shard directories behind one ``StudyStore``-shaped facade."""

    def __init__(
        self,
        root: Union[str, Path],
        shards: Optional[int] = None,
        virtual_nodes: Optional[int] = None,
    ) -> None:
        self._root = Path(root)
        config = self._load_ring_config()
        if config is not None:
            names = [str(name) for name in config["shards"]]
            vnodes = int(config.get("virtual_nodes", DEFAULT_VIRTUAL_NODES))
            if shards is not None and int(shards) != len(names):
                raise SpecError(
                    f"store at {self._root} is sharded {len(names)} ways "
                    f"(ring.json); requested {int(shards)} — use rebalance "
                    "to change the topology"
                )
            if virtual_nodes is not None and int(virtual_nodes) != vnodes:
                raise SpecError(
                    f"store at {self._root} uses {vnodes} virtual nodes "
                    f"(ring.json); requested {int(virtual_nodes)} — use "
                    "rebalance to change the topology"
                )
        else:
            names = _shard_names(_DEFAULT_SHARDS if shards is None else int(shards))
            vnodes = (
                DEFAULT_VIRTUAL_NODES
                if virtual_nodes is None
                else int(virtual_nodes)
            )
            if not names:
                raise SpecError("a sharded store needs at least one shard")
            self._write_ring_config(names, vnodes)
        self._ring = ConsistentHashRing(names, vnodes)
        self._stores = {name: StudyStore(self._root / name) for name in names}
        # Entries this instance wrote (plus anything newer on disk than this
        # timestamp) are protected from eviction for the instance's lifetime.
        self._session_written: set[str] = set()
        self._opened_at = time.time()

    # ------------------------------------------------------------- topology

    @property
    def root(self) -> Path:
        return self._root

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    @property
    def shards(self) -> List[str]:
        return self._ring.nodes

    def shard_for(self, spec_or_hash: Union[StudySpec, str]) -> str:
        """Name of the shard owning a spec (or raw hash)."""
        return self._ring.node_for(self._digest(spec_or_hash))

    def shard_store(self, name: str) -> StudyStore:
        """The plain ``StudyStore`` behind one shard directory."""
        try:
            return self._stores[name]
        except KeyError:
            raise SpecError(
                f"unknown shard {name!r}; shards: {', '.join(self.shards)}"
            ) from None

    @staticmethod
    def _digest(spec_or_hash: Union[StudySpec, str]) -> str:
        return (
            spec_or_hash.spec_hash()
            if isinstance(spec_or_hash, StudySpec)
            else str(spec_or_hash)
        )

    def _load_ring_config(self) -> Optional[Dict[str, Any]]:
        path = self._root / RING_FILE
        try:
            data = json.loads(path.read_text())
        except OSError:
            return None
        except json.JSONDecodeError as exc:
            raise SpecError(f"unreadable ring config {path}: {exc}") from exc
        if not isinstance(data, dict) or not data.get("shards"):
            raise SpecError(f"invalid ring config {path}")
        return data

    def _write_ring_config(self, names: List[str], vnodes: int) -> None:
        self._root.mkdir(parents=True, exist_ok=True)
        payload = {"shards": names, "virtual_nodes": vnodes}
        # Atomic like store entries: concurrent openers see the old topology
        # or the new one, never a torn file.
        fd, tmp_name = tempfile.mkstemp(dir=self._root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, self._root / RING_FILE)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------- StudyStore surface

    def path_for(self, spec_or_hash: Union[StudySpec, str]) -> Path:
        digest = self._digest(spec_or_hash)
        return self._stores[self._ring.node_for(digest)].path_for(digest)

    def __contains__(self, spec_or_hash: Union[StudySpec, str]) -> bool:
        return self.path_for(spec_or_hash).exists()

    def _shard_lost(self, name: str) -> bool:
        """Whether a shard is unavailable (injected fault or unreadable dir).

        A shard directory that exists but cannot be listed (permissions,
        yanked mount) is *lost*, not corrupt: its entries degrade to misses
        and its writes to no-ops, each recorded as a ``shard-loss`` health
        event — heavy traffic over a sick disk must not take the service
        down.  A merely *absent* directory is a healthy empty shard.
        """
        if faults.active_plan().fires("shard-loss", shard=name):
            return True
        root = self._stores[name].root
        try:
            if root.exists():
                next(iter(os.scandir(root)), None)
        except OSError:
            return True
        return False

    def get(self, spec: StudySpec):
        name = self.shard_for(spec)
        if self._shard_lost(name):
            health.note(
                "shard-loss", "store", f"{name} unavailable; reading as a miss"
            )
            return None
        try:
            return self._stores[name].get(spec)
        except OSError as exc:
            health.note(
                "shard-loss", "store", f"{name} unreadable ({exc}); miss"
            )
            return None

    def put(self, spec: StudySpec, study) -> Path:
        digest = spec.spec_hash()
        name = self._ring.node_for(digest)
        path = self._stores[name].path_for(digest)
        if self._shard_lost(name):
            health.note(
                "shard-loss", "store", f"{name} unavailable; result not cached"
            )
            return path
        try:
            path = self._stores[name].put(spec, study)
        except OSError as exc:
            health.note(
                "shard-loss", "store", f"{name} unwritable ({exc}); not cached"
            )
            return path
        self._session_written.add(digest)
        return path

    def entries(self) -> List[str]:
        merged: List[str] = []
        for store in self._stores.values():
            merged.extend(store.entries())
        return sorted(merged)

    def scrub(self) -> Dict[str, Any]:
        """Checksum-verify every entry in every shard; quarantine bad ones.

        Merges the per-shard :meth:`StudyStore.scrub` reports and lists
        shards that could not be scanned at all under ``lost_shards`` —
        a lost shard contributes nothing to the counts rather than
        aborting the walk.
        """
        report: Dict[str, Any] = {
            "scanned": 0,
            "ok": 0,
            "legacy": 0,
            "quarantined": [],
            "shards": {},
            "lost_shards": [],
        }
        for name, store in self._stores.items():
            if self._shard_lost(name):
                report["lost_shards"].append(name)
                continue
            try:
                shard_report = store.scrub()
            except OSError:
                report["lost_shards"].append(name)
                continue
            report["scanned"] += shard_report["scanned"]
            report["ok"] += shard_report["ok"]
            report["legacy"] += shard_report["legacy"]
            report["quarantined"].extend(shard_report["quarantined"])
            report["shards"][name] = shard_report
        report["quarantined"].sort()
        return report

    def corrupt_entries(self) -> List[str]:
        merged: List[str] = []
        for store in self._stores.values():
            merged.extend(store.corrupt_entries())
        return sorted(merged)

    # ------------------------------------------------------------ stats

    def stats(self) -> Dict[str, Any]:
        """Per-shard entry counts and byte usage, plus totals."""
        shards: Dict[str, Any] = {}
        total_entries = 0
        total_bytes = 0
        for name, store in self._stores.items():
            entries = 0
            size = 0
            for path in self._entry_paths(store):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
            shards[name] = {
                "entries": entries,
                "bytes": size,
                "corrupt": len(store.corrupt_entries()),
            }
            total_entries += entries
            total_bytes += size
        return {
            "root": str(self._root),
            "shards": shards,
            "virtual_nodes": self._ring.virtual_nodes,
            "entries": total_entries,
            "bytes": total_bytes,
        }

    @staticmethod
    def _entry_paths(store: StudyStore) -> List[Path]:
        if not store.root.exists():
            return []
        return [
            path
            for path in store.root.glob("*/*.json")
            if path.parent.name != "corrupt"
        ]

    # --------------------------------------------------------- eviction

    def evict(self, budget_bytes: int) -> Dict[str, Any]:
        """Bring every shard under ``budget_bytes``, oldest-atime first.

        Entries written through this instance — or written on disk after it
        was opened — are never evicted, so a running sweep cannot lose its
        own fresh results; a shard whose protected entries alone exceed the
        budget simply stays over it (reported, not forced).
        """
        if budget_bytes < 0:
            raise SpecError("eviction budget must be >= 0 bytes")
        evicted: List[str] = []
        freed = 0
        over_budget: List[str] = []
        for name, store in self._stores.items():
            candidates = []
            used = 0
            for path in self._entry_paths(store):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                used += stat.st_size
                protected = (
                    path.stem in self._session_written
                    or stat.st_mtime >= self._opened_at
                )
                if not protected:
                    candidates.append((stat.st_atime, stat.st_size, path))
            candidates.sort()
            for _atime, size, path in candidates:
                if used <= budget_bytes:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                used -= size
                freed += size
                evicted.append(path.stem)
            if used > budget_bytes:
                over_budget.append(name)
        return {
            "evicted": sorted(evicted),
            "freed_bytes": freed,
            "budget_bytes": int(budget_bytes),
            "over_budget_shards": over_budget,
        }

    # ------------------------------------------------------- rebalancing

    def rebalance(
        self,
        shards: Optional[int] = None,
        virtual_nodes: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Move entries to their home shards (optionally changing topology).

        With ``shards``/``virtual_nodes`` the ring is rewritten first; the
        consistent-hash property keeps the move set to the expected 1/K of
        entries on a one-shard change.  Without arguments it repairs
        placement (e.g. after files were copied in by hand).  Moves are
        atomic per entry (``os.replace`` within one filesystem), so readers
        racing a rebalance see each entry at exactly one of its two homes.
        """
        names = self.shards
        vnodes = self._ring.virtual_nodes
        if shards is not None:
            if int(shards) < 1:
                raise SpecError("a sharded store needs at least one shard")
            names = _shard_names(int(shards))
        if virtual_nodes is not None:
            vnodes = int(virtual_nodes)
        new_ring = ConsistentHashRing(names, vnodes)
        new_stores = {name: StudyStore(self._root / name) for name in names}
        moved = 0
        kept = 0
        for store in self._stores.values():
            for path in self._entry_paths(store):
                digest = path.stem
                target = new_stores[new_ring.node_for(digest)].path_for(digest)
                if target == path:
                    kept += 1
                    continue
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
                moved += 1
        self._write_ring_config(list(names), vnodes)
        self._ring = new_ring
        self._stores = new_stores
        return {
            "shards": list(names),
            "virtual_nodes": vnodes,
            "moved": moved,
            "kept": kept,
        }
