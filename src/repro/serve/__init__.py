"""Sweep service: an async serving layer over the spec/sweep stack.

The local workflow — :class:`~repro.spec.StudyPlan` executing
:class:`~repro.spec.StudySpec` points against a single-directory
:class:`~repro.spec.StudyStore` — scales to one process.  This package
promotes it into a small serving subsystem, four layers deep:

* **Protocol** (:mod:`repro.serve.protocol`) — a newline-delimited JSON
  request/response protocol over TCP.  Requests: ``submit`` (one spec, an
  explicit spec list, or a sweep), ``status``, ``result`` (blocking, with
  per-job streaming), ``stats`` and ``shutdown``.  Stdlib only.
* **Server** (:mod:`repro.serve.server`) — :class:`SweepServer`, an
  ``asyncio`` daemon (``repro serve``) with an async priority queue and a
  bounded executor pool.  Identical in-flight specs are hash-deduped: N
  submitters of the same spec attach to one execution and all receive the
  result; a spec already in the store is answered instantly without
  touching the queue.  Execution goes through ``StudySpec.run`` and
  therefore the exact same backend ladder and supervised worker pool as a
  local run — results are seed-for-seed identical, and
  :class:`~repro.sim.health.RunHealth` events (retries, crashes,
  demotions) surface in job status.
* **Sharded store** (:mod:`repro.serve.sharded`) —
  :class:`ShardedStudyStore` implements the :class:`~repro.spec.StudyStore`
  surface but routes each ``spec_hash()`` to one of K shard directories via
  a consistent-hash ring (:class:`ConsistentHashRing`, configurable virtual
  nodes), with an LRU-by-atime eviction policy under a byte budget and
  ``repro store stats|evict|rebalance`` maintenance commands.
* **Client** (:mod:`repro.serve.client`) — :class:`ServeClient`, the
  synchronous library client behind ``repro submit`` / ``repro client``
  and ``repro sweep --server host:port``: per-request socket timeouts and
  capped-backoff retries by default, so a dead or restarting server can
  never hang a sweep (idempotent reattach by ``spec_hash``).
* **Write-ahead journal** (:mod:`repro.serve.wal`) — :class:`ServeJournal`,
  the durable job-transition log behind ``repro serve --journal``: a
  SIGKILLed server restarted over the same journal re-queues every
  accepted-but-unfinished job and answers completed ones from the store.

Everything is bit-identical to local execution: a served sweep returns
seed-for-seed the same summaries as ``StudyPlan.run`` with a plain
``StudyStore``.
"""

from .client import JobOutcome, ServeClient, study_from_payload
from .protocol import PROTOCOL_VERSION, decode_line, encode_message
from .ring import ConsistentHashRing
from .server import BackgroundServer, ServerStats, SweepServer
from .sharded import ShardedStudyStore
from .wal import JOB_TERMINAL_STATES, ServeJournal

__all__ = [
    "BackgroundServer",
    "ConsistentHashRing",
    "JOB_TERMINAL_STATES",
    "JobOutcome",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeJournal",
    "ServerStats",
    "ShardedStudyStore",
    "SweepServer",
    "decode_line",
    "encode_message",
    "study_from_payload",
]
