"""Consistent-hash ring used to shard the study store.

Each shard contributes ``virtual_nodes`` points on a 64-bit ring (the
first 8 bytes of ``sha256("<shard>#<v>")``); a key routes to the owner of
the first point at or after its own hash, wrapping around.  Virtual nodes
smooth the load split, and — the property the sharded store relies on —
adding or removing one shard only remaps the keys whose successor point
belonged to that shard: an expected ``1/K`` of the keyspace, never keys
between two surviving shards.  Membership and placement are pure functions
of the shard names, so every process that knows the topology computes the
same routing without coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import SpecError

__all__ = ["ConsistentHashRing"]

#: Default virtual nodes per shard; 128 keeps the load split within a few
#: percent of uniform for small shard counts.
DEFAULT_VIRTUAL_NODES = 128


def _point(label: str) -> int:
    """64-bit ring position of a label (first 8 bytes of its sha256)."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Deterministic key → node placement over a set of named nodes."""

    def __init__(
        self, nodes: Iterable[str], virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    ) -> None:
        names = sorted({str(node) for node in nodes})
        if not names:
            raise SpecError("a consistent-hash ring needs at least one node")
        if virtual_nodes < 1:
            raise SpecError("virtual_nodes must be >= 1")
        self._nodes = names
        self._virtual_nodes = int(virtual_nodes)
        points: List[Tuple[int, str]] = []
        for node in names:
            for replica in range(self._virtual_nodes):
                points.append((_point(f"{node}#{replica}"), node))
        # Ties (astronomically unlikely) resolve by node name, so placement
        # stays deterministic across processes either way.
        points.sort()
        self._points = points
        self._keys = [position for position, _ in points]

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    @property
    def virtual_nodes(self) -> int:
        return self._virtual_nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return str(node) in self._nodes

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (clockwise successor of the key's hash)."""
        position = _point(str(key))
        index = bisect.bisect_right(self._keys, position)
        if index == len(self._keys):
            index = 0
        return self._points[index][1]

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Count of ``keys`` owned by each node (all nodes present)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def with_nodes(
        self, nodes: Iterable[str], virtual_nodes: int | None = None
    ) -> "ConsistentHashRing":
        """A ring over a different membership, same vnode count by default."""
        return ConsistentHashRing(
            nodes,
            self._virtual_nodes if virtual_nodes is None else virtual_nodes,
        )
