"""Synchronous client for the sweep service.

:class:`ServeClient` is the library behind ``repro submit``, ``repro
client`` and ``repro sweep --server``: a blocking, connection-per-request
TCP client that speaks the protocol of :mod:`repro.serve.protocol` with
nothing beyond the stdlib.  Results arrive as the store's summary records
and are rehydrated into :class:`~repro.sim.TrialStudy` objects
(:func:`study_from_payload`), so everything downstream — ``summary_row()``,
``sweep_rows``, the analysis tables — works identically on served and
local studies.

The client is *resilient by default*: every socket operation carries a
timeout (``REPRO_SERVE_TIMEOUT``, default 300 s — a dead server can never
hang a sweep forever), and transient failures — connection refused or
reset, a timeout, a server restarting mid-request — raise
:class:`~repro.errors.ServeRetriable` subclasses and are retried with
capped exponential backoff plus jitter (``REPRO_SERVE_RETRIES`` ×
``REPRO_SERVE_BACKOFF``).  A retry simply re-sends the whole request:
submissions are deduped server-side by ``spec_hash()``, so resubmitting is
an idempotent *reattach* — jobs that finished meanwhile are answered from
the server's table or store, which is what lets ``repro sweep --server``
ride out a server restart mid-sweep.
"""

from __future__ import annotations

import os
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from .. import faults
from ..errors import ServeError, ServeRetriable, ServeTimeout, ServeUnavailable
from ..spec.study import StudySpec
from ..spec.sweep import PlanResult, Sweep
from .protocol import decode_line, encode_message

__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT",
    "JobOutcome",
    "ServeClient",
    "study_from_payload",
]

#: Socket timeout when neither the constructor nor the env overrides it.
DEFAULT_TIMEOUT = 300.0
#: Retries after the first attempt of a retriable request.
DEFAULT_RETRIES = 4
#: First backoff delay; doubles per retry up to :data:`BACKOFF_CAP`.
DEFAULT_BACKOFF = 0.25
BACKOFF_CAP = 5.0

#: Sentinel: "not passed — resolve from the environment".
_UNSET = object()


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ServeError(f"{name} must be a number, got {raw!r}") from None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ServeError(f"{name} must be an integer, got {raw!r}") from None


def study_from_payload(payload: Mapping[str, Any]):
    """Rehydrate a study from its wire payload (summary surface only)."""
    from ..sim.health import RunHealth
    from ..sim.runner import TrialStudy
    from ..spec.store import record_result

    health_data = payload.get("health") or {}
    return TrialStudy(
        results=[record_result(r) for r in payload.get("results", [])],
        label=str(payload.get("label", "")),
        effective_workers=int(payload.get("effective_workers", 1)),
        from_cache=bool(payload.get("from_cache", False)),
        health=RunHealth.from_dict(health_data),
    )


@dataclass
class JobOutcome:
    """One job's terminal report as received from the server."""

    hash: str
    status: str
    cached: bool = False
    error: str = ""
    attempts: int = 0
    run_seconds: float = 0.0
    label: str = ""
    health: Dict[str, float] = field(default_factory=dict)
    study: Any = None

    @property
    def ok(self) -> bool:
        return self.status in ("done", "cached")

    @classmethod
    def from_event(cls, event: Mapping[str, Any]) -> "JobOutcome":
        study = None
        if event.get("study") is not None:
            study = study_from_payload(event["study"])
        return cls(
            hash=str(event.get("hash", "")),
            status=str(event.get("status", "unknown")),
            cached=bool(event.get("cached", False)),
            error=str(event.get("error", "")),
            attempts=int(event.get("attempts", 0)),
            run_seconds=float(event.get("run_seconds", 0.0)),
            label=str(event.get("label", "")),
            health={
                key: float(value)
                for key, value in event.items()
                if key.startswith("health_")
            },
            study=study,
        )


class ServeClient:
    """Blocking client; one TCP connection per request, streams supported."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        timeout: Any = _UNSET,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ) -> None:
        self._host = host
        self._port = int(port)
        if timeout is _UNSET:
            timeout = _env_float("REPRO_SERVE_TIMEOUT", DEFAULT_TIMEOUT)
        if timeout is not None and float(timeout) <= 0:
            timeout = None  # 0 (or negative) disables the timeout entirely
        self._timeout = None if timeout is None else float(timeout)
        self._retries = (
            _env_int("REPRO_SERVE_RETRIES", DEFAULT_RETRIES)
            if retries is None
            else int(retries)
        )
        if self._retries < 0:
            raise ServeError("retries must be >= 0")
        self._backoff = (
            _env_float("REPRO_SERVE_BACKOFF", DEFAULT_BACKOFF)
            if backoff is None
            else float(backoff)
        )
        if self._backoff < 0:
            raise ServeError("backoff must be >= 0 seconds")

    @classmethod
    def from_address(
        cls,
        address: str,
        timeout: Any = _UNSET,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ) -> "ServeClient":
        """Build from a ``host:port`` string (``:port`` → localhost)."""
        host, sep, port = address.rpartition(":")
        if not sep or not port.isdigit():
            raise ServeError(
                f"invalid server address {address!r}; expected host:port"
            )
        return cls(
            host or "127.0.0.1",
            int(port),
            timeout=timeout,
            retries=retries,
            backoff=backoff,
        )

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    # ------------------------------------------------------------ plumbing

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except socket.timeout as exc:
            raise ServeTimeout(
                f"connecting to sweep server at {self._host}:{self._port} "
                f"timed out after {self._timeout:g}s"
            ) from exc
        except OSError as exc:
            raise ServeUnavailable(
                f"cannot reach sweep server at {self._host}:{self._port}: {exc}"
            ) from exc

    def _request(
        self, message: Dict[str, Any], attempt: int = 0
    ) -> Iterator[Dict[str, Any]]:
        """Send one request; yield the ack and then any streamed events."""
        conn = self._connect()
        try:
            conn.sendall(encode_message(message))
            if faults.active_plan().fires(
                "conn-drop", op=str(message.get("op", "")), attempt=attempt
            ):
                # Injected mid-request drop: the request may already be on
                # the server's side (exactly the reattach-on-retry case).
                raise ServeUnavailable(
                    f"connection to sweep server at {self._host}:"
                    f"{self._port} dropped (injected conn-drop)"
                )
            reader = conn.makefile("rb")
            try:
                for line in reader:
                    if not line.strip():
                        continue
                    yield decode_line(line)
            finally:
                reader.close()
        except socket.timeout as exc:
            raise ServeTimeout(
                f"sweep server at {self._host}:{self._port} timed out "
                f"after {self._timeout:g}s"
            ) from exc
        except OSError as exc:
            # Reset/refused mid-request (e.g. the server shut down between
            # our write and its reply) is transient, not a programming
            # error: the caller may retry the whole request.
            raise ServeUnavailable(
                f"connection to sweep server at {self._host}:{self._port} "
                f"failed: {exc}"
            ) from exc
        finally:
            conn.close()

    def _collect(
        self,
        message: Dict[str, Any],
        expect_stream: bool,
        retriable: bool = True,
    ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """One request with retries: the validated ack plus streamed events.

        Retriable failures (:class:`ServeRetriable`: refused, reset, timed
        out, closed-without-answer) re-send the *whole* request after a
        capped exponential backoff with jitter.  Server-side dedupe by
        ``spec_hash()`` makes the re-send an idempotent reattach.
        """
        attempts = (self._retries + 1) if retriable else 1
        delay = self._backoff
        last: Optional[ServeRetriable] = None
        for attempt in range(attempts):
            try:
                return self._collect_once(message, expect_stream, attempt)
            except ServeRetriable as exc:
                last = exc
                if attempt + 1 >= attempts:
                    break
                time.sleep(delay * (0.5 + random.random()))
                delay = min(delay * 2.0, BACKOFF_CAP)
        assert last is not None
        raise last

    def _collect_once(
        self, message: Dict[str, Any], expect_stream: bool, attempt: int
    ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        ack: Optional[Dict[str, Any]] = None
        events: List[Dict[str, Any]] = []
        for received in self._request(message, attempt):
            if ack is None:
                if not received.get("ok", False):
                    raise ServeError(
                        received.get("error", "server rejected the request")
                    )
                ack = received
                if not expect_stream:
                    break
                continue
            if received.get("event") == "end":
                break
            events.append(received)
        if ack is None:
            raise ServeUnavailable(
                f"sweep server at {self._host}:{self._port} closed the "
                "connection without answering"
            )
        return ack, events

    # ------------------------------------------------------------- library

    def submit(
        self,
        specs: Union[StudySpec, Sequence[StudySpec]],
        wait: bool = True,
        priority: int = 0,
    ) -> List[JobOutcome]:
        """Submit spec(s); with ``wait`` return terminal outcomes in spec
        order, otherwise the submission statuses."""
        if isinstance(specs, StudySpec):
            spec_list = [specs]
        else:
            spec_list = list(specs)
        message = {
            "op": "submit",
            "specs": [spec.to_dict() for spec in spec_list],
            "priority": int(priority),
            "wait": bool(wait),
        }
        ack, events = self._collect(message, expect_stream=wait)
        if not wait:
            return [JobOutcome.from_event(row) for row in ack.get("jobs", [])]
        outcomes = {
            event.get("hash"): JobOutcome.from_event(event) for event in events
        }
        ordered: List[JobOutcome] = []
        for spec in spec_list:
            digest = spec.spec_hash()
            outcome = outcomes.get(digest)
            if outcome is None:
                raise ServeError(f"server streamed no result for {digest[:12]}")
            ordered.append(outcome)
        return ordered

    def submit_sweep(
        self, sweep: Sweep, wait: bool = True, priority: int = 0
    ) -> List[JobOutcome]:
        return self.submit(sweep.expand(), wait=wait, priority=priority)

    def run_plan(
        self,
        specs: Sequence[StudySpec],
        overrides: Optional[Sequence[Mapping[str, Any]]] = None,
        priority: int = 0,
    ) -> List[PlanResult]:
        """Execute specs remotely, shaped like ``StudyPlan.run`` results.

        The thin-client path of ``repro sweep --server``: rows from the
        returned list render through the exact same
        :func:`~repro.spec.sweep.sweep_rows` pipeline as a local plan.
        """
        if overrides is not None and len(overrides) != len(specs):
            raise ServeError("overrides must align one-to-one with specs")
        outcomes = self.submit(list(specs), wait=True, priority=priority)
        results: List[PlanResult] = []
        for index, (spec, outcome) in enumerate(zip(specs, outcomes)):
            results.append(
                PlanResult(
                    spec=spec,
                    study=outcome.study,
                    overrides=dict(overrides[index]) if overrides else {},
                    cached=outcome.cached,
                    run_seconds=outcome.run_seconds,
                    failed=not outcome.ok,
                    error=outcome.error if not outcome.ok else "",
                    attempts=outcome.attempts,
                )
            )
        return results

    def status(
        self, hashes: Optional[Sequence[str]] = None
    ) -> List[Dict[str, Any]]:
        message: Dict[str, Any] = {"op": "status"}
        if hashes is not None:
            message["hashes"] = [str(h) for h in hashes]
        ack, _ = self._collect(message, expect_stream=False)
        return list(ack.get("jobs", []))

    def results(
        self, hashes: Sequence[str], wait: bool = True
    ) -> List[JobOutcome]:
        message = {
            "op": "result",
            "hashes": [str(h) for h in hashes],
            "wait": bool(wait),
        }
        _, events = self._collect(message, expect_stream=True)
        return [JobOutcome.from_event(event) for event in events]

    def stats(self) -> Dict[str, Any]:
        ack, _ = self._collect({"op": "stats"}, expect_stream=False)
        return {
            key: value for key, value in ack.items() if key not in ("ok", "op")
        }

    def shutdown(self) -> None:
        # Never retried: a lost ack is indistinguishable from a server that
        # shut down before replying, and re-sending could kill a freshly
        # restarted server.
        self._collect({"op": "shutdown"}, expect_stream=False, retriable=False)

    def ping(self) -> bool:
        """Whether a server answers at the address *right now* — a liveness
        probe, so no retries (no exception either way)."""
        try:
            self._collect({"op": "stats"}, expect_stream=False, retriable=False)
            return True
        except ServeError:
            return False
