"""Synchronous client for the sweep service.

:class:`ServeClient` is the library behind ``repro submit``, ``repro
client`` and ``repro sweep --server``: a blocking, connection-per-request
TCP client that speaks the protocol of :mod:`repro.serve.protocol` with
nothing beyond the stdlib.  Results arrive as the store's summary records
and are rehydrated into :class:`~repro.sim.TrialStudy` objects
(:func:`study_from_payload`), so everything downstream — ``summary_row()``,
``sweep_rows``, the analysis tables — works identically on served and
local studies.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ServeError
from ..spec.study import StudySpec
from ..spec.sweep import PlanResult, Sweep
from .protocol import decode_line, encode_message

__all__ = ["JobOutcome", "ServeClient", "study_from_payload"]


def study_from_payload(payload: Mapping[str, Any]):
    """Rehydrate a study from its wire payload (summary surface only)."""
    from ..sim.health import RunHealth
    from ..sim.runner import TrialStudy
    from ..spec.store import record_result

    health_data = payload.get("health") or {}
    return TrialStudy(
        results=[record_result(r) for r in payload.get("results", [])],
        label=str(payload.get("label", "")),
        effective_workers=int(payload.get("effective_workers", 1)),
        from_cache=bool(payload.get("from_cache", False)),
        health=RunHealth.from_dict(health_data),
    )


@dataclass
class JobOutcome:
    """One job's terminal report as received from the server."""

    hash: str
    status: str
    cached: bool = False
    error: str = ""
    attempts: int = 0
    run_seconds: float = 0.0
    label: str = ""
    health: Dict[str, float] = field(default_factory=dict)
    study: Any = None

    @property
    def ok(self) -> bool:
        return self.status in ("done", "cached")

    @classmethod
    def from_event(cls, event: Mapping[str, Any]) -> "JobOutcome":
        study = None
        if event.get("study") is not None:
            study = study_from_payload(event["study"])
        return cls(
            hash=str(event.get("hash", "")),
            status=str(event.get("status", "unknown")),
            cached=bool(event.get("cached", False)),
            error=str(event.get("error", "")),
            attempts=int(event.get("attempts", 0)),
            run_seconds=float(event.get("run_seconds", 0.0)),
            label=str(event.get("label", "")),
            health={
                key: float(value)
                for key, value in event.items()
                if key.startswith("health_")
            },
            study=study,
        )


class ServeClient:
    """Blocking client; one TCP connection per request, streams supported."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        timeout: Optional[float] = 300.0,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._timeout = timeout

    @classmethod
    def from_address(
        cls, address: str, timeout: Optional[float] = 300.0
    ) -> "ServeClient":
        """Build from a ``host:port`` string (``:port`` → localhost)."""
        host, sep, port = address.rpartition(":")
        if not sep or not port.isdigit():
            raise ServeError(
                f"invalid server address {address!r}; expected host:port"
            )
        return cls(host or "127.0.0.1", int(port), timeout=timeout)

    @property
    def address(self) -> Tuple[str, int]:
        return self._host, self._port

    # ------------------------------------------------------------ plumbing

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError as exc:
            raise ServeError(
                f"cannot reach sweep server at {self._host}:{self._port}: {exc}"
            ) from exc

    def _request(self, message: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Send one request; yield the ack and then any streamed events."""
        conn = self._connect()
        try:
            conn.sendall(encode_message(message))
            reader = conn.makefile("rb")
            try:
                for line in reader:
                    if not line.strip():
                        continue
                    yield decode_line(line)
            finally:
                reader.close()
        except socket.timeout as exc:
            raise ServeError(
                f"sweep server at {self._host}:{self._port} timed out"
            ) from exc
        except OSError as exc:
            # Reset/refused mid-request (e.g. the server shut down between
            # our write and its reply) is a protocol-level failure, not a
            # programming error.
            raise ServeError(
                f"connection to sweep server at {self._host}:{self._port} "
                f"failed: {exc}"
            ) from exc
        finally:
            conn.close()

    def _collect(
        self, message: Dict[str, Any], expect_stream: bool
    ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """The validated ack plus streamed events (up to ``end``)."""
        ack: Optional[Dict[str, Any]] = None
        events: List[Dict[str, Any]] = []
        for received in self._request(message):
            if ack is None:
                if not received.get("ok", False):
                    raise ServeError(
                        received.get("error", "server rejected the request")
                    )
                ack = received
                if not expect_stream:
                    break
                continue
            if received.get("event") == "end":
                break
            events.append(received)
        if ack is None:
            raise ServeError(
                f"sweep server at {self._host}:{self._port} closed the "
                "connection without answering"
            )
        return ack, events

    # ------------------------------------------------------------- library

    def submit(
        self,
        specs: Union[StudySpec, Sequence[StudySpec]],
        wait: bool = True,
        priority: int = 0,
    ) -> List[JobOutcome]:
        """Submit spec(s); with ``wait`` return terminal outcomes in spec
        order, otherwise the submission statuses."""
        if isinstance(specs, StudySpec):
            spec_list = [specs]
        else:
            spec_list = list(specs)
        message = {
            "op": "submit",
            "specs": [spec.to_dict() for spec in spec_list],
            "priority": int(priority),
            "wait": bool(wait),
        }
        ack, events = self._collect(message, expect_stream=wait)
        if not wait:
            return [JobOutcome.from_event(row) for row in ack.get("jobs", [])]
        outcomes = {
            event.get("hash"): JobOutcome.from_event(event) for event in events
        }
        ordered: List[JobOutcome] = []
        for spec in spec_list:
            digest = spec.spec_hash()
            outcome = outcomes.get(digest)
            if outcome is None:
                raise ServeError(f"server streamed no result for {digest[:12]}")
            ordered.append(outcome)
        return ordered

    def submit_sweep(
        self, sweep: Sweep, wait: bool = True, priority: int = 0
    ) -> List[JobOutcome]:
        return self.submit(sweep.expand(), wait=wait, priority=priority)

    def run_plan(
        self,
        specs: Sequence[StudySpec],
        overrides: Optional[Sequence[Mapping[str, Any]]] = None,
        priority: int = 0,
    ) -> List[PlanResult]:
        """Execute specs remotely, shaped like ``StudyPlan.run`` results.

        The thin-client path of ``repro sweep --server``: rows from the
        returned list render through the exact same
        :func:`~repro.spec.sweep.sweep_rows` pipeline as a local plan.
        """
        if overrides is not None and len(overrides) != len(specs):
            raise ServeError("overrides must align one-to-one with specs")
        outcomes = self.submit(list(specs), wait=True, priority=priority)
        results: List[PlanResult] = []
        for index, (spec, outcome) in enumerate(zip(specs, outcomes)):
            results.append(
                PlanResult(
                    spec=spec,
                    study=outcome.study,
                    overrides=dict(overrides[index]) if overrides else {},
                    cached=outcome.cached,
                    run_seconds=outcome.run_seconds,
                    failed=not outcome.ok,
                    error=outcome.error if not outcome.ok else "",
                    attempts=outcome.attempts,
                )
            )
        return results

    def status(
        self, hashes: Optional[Sequence[str]] = None
    ) -> List[Dict[str, Any]]:
        message: Dict[str, Any] = {"op": "status"}
        if hashes is not None:
            message["hashes"] = [str(h) for h in hashes]
        ack, _ = self._collect(message, expect_stream=False)
        return list(ack.get("jobs", []))

    def results(
        self, hashes: Sequence[str], wait: bool = True
    ) -> List[JobOutcome]:
        message = {
            "op": "result",
            "hashes": [str(h) for h in hashes],
            "wait": bool(wait),
        }
        _, events = self._collect(message, expect_stream=True)
        return [JobOutcome.from_event(event) for event in events]

    def stats(self) -> Dict[str, Any]:
        ack, _ = self._collect({"op": "stats"}, expect_stream=False)
        return {
            key: value for key, value in ack.items() if key not in ("ok", "op")
        }

    def shutdown(self) -> None:
        self._collect({"op": "shutdown"}, expect_stream=False)

    def ping(self) -> bool:
        """Whether a server answers at the address (no exception)."""
        try:
            self.stats()
            return True
        except ServeError:
            return False
