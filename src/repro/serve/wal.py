"""Write-ahead journal of the sweep service.

:class:`ServeJournal` is the durable, accountable log behind
``repro serve --journal``: an append-only JSONL file recording every job
transition (``accepted`` / ``running`` / ``requeued`` / ``done`` /
``failed``) keyed by ``spec_hash()``.  Every *accepted* record carries the
full spec JSON, so the journal alone is enough to reconstruct the backlog
after a crash — :meth:`replay` returns the latest status per job plus the
spec of every job whose spec was ever journaled, and the server re-queues
whatever is not terminal (answering already-completed jobs from the study
store).

The file format is the torn-line-tolerant JSONL idiom of
:class:`~repro.spec.sweep.PlanJournal` (which this class extends): a
process killed mid-append leaves a torn trailing line that the next load
simply drops.  The ``wal-torn`` fault site simulates exactly that tear
deterministically for tests and the chaos CI leg.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from .. import faults
from ..spec.sweep import PlanJournal

__all__ = ["JOB_TERMINAL_STATES", "ServeJournal"]

#: Journal statuses that need no recovery action on restart.
JOB_TERMINAL_STATES = ("done", "failed", "cached")


class ServeJournal(PlanJournal):
    """Append-only WAL of job transitions, keyed by spec hash.

    Last-record-wins per hash for the *status*; the *spec* payload is
    remembered from whichever record carried it (normally the first
    ``accepted`` record), so a later status-only append never erases the
    information needed to re-queue the job.
    """

    def record(
        self,
        digest: str,
        status: str,
        spec: Mapping[str, Any] | None = None,
        **extra: Any,
    ) -> None:
        """Append one transition; ``accepted`` records should carry ``spec``."""
        payload: Dict[str, Any] = {"hash": str(digest), "status": str(status)}
        if spec is not None:
            payload["spec"] = dict(spec)
        payload.update(extra)
        self.append(payload)
        if faults.active_plan().fires("wal-torn", hash=digest, status=status):
            self._tear_trailing_line()

    def replay(self) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Dict[str, Any]]]:
        """(latest record per hash, spec payload per hash).

        A hash whose latest status is not terminal and whose spec was
        journaled is a job the restarted server must re-queue; a hash with
        no surviving spec record (torn away mid-accept) never reached an
        acknowledged state, so dropping it is correct — the client never
        heard ``accepted`` and will resubmit.
        """
        state: Dict[str, Dict[str, Any]] = {}
        specs: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            digest = record.get("hash")
            if not digest:
                continue
            digest = str(digest)
            state[digest] = record
            spec = record.get("spec")
            if isinstance(spec, dict):
                specs[digest] = spec
        return state, specs

    def unfinished(self) -> Dict[str, Dict[str, Any]]:
        """Spec payloads of accepted-but-unfinished jobs, with their records.

        Returns ``{hash: {"spec": ..., "record": ...}}`` for every job the
        journal accepted that never reached a terminal state.
        """
        state, specs = self.replay()
        backlog: Dict[str, Dict[str, Any]] = {}
        for digest, record in state.items():
            if record.get("status") in JOB_TERMINAL_STATES:
                continue
            spec = specs.get(digest)
            if spec is None:
                continue
            backlog[digest] = {"spec": spec, "record": record}
        return backlog

    def _tear_trailing_line(self) -> None:
        """Injected ``wal-torn`` fault: truncate the file mid-final-line,
        exactly what a daemon killed between ``write`` and the newline
        reaching disk leaves behind.  Only the final record is damaged —
        a real torn append never reaches back into earlier lines."""
        try:
            data = self._path.read_bytes()
        except OSError:
            return
        if len(data) < 2:
            return
        body = data[:-1] if data.endswith(b"\n") else data
        start = body.rfind(b"\n") + 1  # first byte of the final record
        cut = max(start + 1, start + (len(body) - start) // 2)
        with self._path.open("rb+") as handle:
            handle.truncate(cut)
