"""The sweep-service daemon: async job queue, dedupe, dispatch.

:class:`SweepServer` is a stdlib-``asyncio`` TCP daemon speaking the
newline-delimited JSON protocol of :mod:`repro.serve.protocol`.  Its
execution model:

* Every submitted :class:`~repro.spec.StudySpec` becomes a :class:`Job`
  keyed by ``spec_hash()``.  Submitting a spec whose job is already queued
  or running *attaches* to it — one execution, every submitter receives the
  result.  A spec already present in the store is answered instantly from
  disk without touching the queue.
* Queued jobs wait in an ``asyncio.PriorityQueue`` (lower ``priority``
  first, FIFO within a priority) and are drained by ``workers`` dispatcher
  tasks, each running one job at a time in a thread of a bounded executor.
  With ``fuse=True`` (the default) a dispatcher additionally drains queued
  jobs sharing its lead job's :func:`~repro.sim.backends.fused.fusion_key`
  and executes the whole group as one fused lockstep run — every job keeps
  its own status row, health fields, dedupe entry and ``executed`` /
  ``failed`` accounting, and a fused failure degrades each member to the
  ordinary per-job path.
* A job executes through ``StudySpec.run(store=...)`` — the exact same
  backend ladder, supervised worker pool (:class:`~repro.sim.runner.
  SupervisorPolicy` retries/backoff/degradation) and content-addressed
  store as a local run, so served results are seed-for-seed identical to
  ``StudyPlan.run`` and :class:`~repro.sim.health.RunHealth` events
  (crashes, retries, demotions) surface in job status as
  ``health_retries`` / ``health_failures`` / ``health_demotions``.
* With a ``store_budget``, the store is brought back under its byte budget
  after every executed job (LRU-by-atime eviction; entries written during
  the current server session are never evicted).

Crash safety (``journal=...``): every job transition is appended to a
:class:`~repro.serve.wal.ServeJournal` write-ahead log *before* the client
hears about it.  A server restarted over the same journal re-queues every
accepted-but-unfinished job (:meth:`SweepServer.start` replays the WAL) and
answers already-completed ones straight from the store, so a SIGKILL loses
no acknowledged work.  Jobs additionally carry an execution ``deadline``:
an overrun is re-queued up to ``requeues`` times and then failed, and a
watchdog task replaces dispatchers that crash or hang outright (the
execution thread is a per-job daemon thread, so a hung job leaks a thread
instead of wedging a pool slot).  :meth:`SweepServer.drain` is the graceful
counterpart to shutdown: refuse new submissions, finish and journal the
backlog, then stop.

:class:`BackgroundServer` runs the whole daemon on a private event loop in
a daemon thread — the harness used by the test suite and the
``service-submit-roundtrip`` benchmark.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .. import faults
from ..errors import ReproError, ServeError
from ..spec.store import result_record
from ..spec.study import StudySpec
from ..spec.sweep import Sweep
from .protocol import (
    KNOWN_OPS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_message,
    error_message,
)
from .sharded import ShardedStudyStore
from .wal import ServeJournal

__all__ = [
    "BackgroundServer",
    "Job",
    "ServerStats",
    "SweepServer",
    "study_payload",
]

#: Job lifecycle states.  ``cached`` is terminal like ``done`` but records
#: that the store answered without an execution.
JOB_STATES = ("queued", "running", "done", "failed", "cached")


def study_payload(study) -> Dict[str, Any]:
    """Wire form of a study: the store's summary records + provenance."""
    health = getattr(study, "health", None)
    return {
        "label": study.label,
        "effective_workers": int(getattr(study, "effective_workers", 1)),
        "from_cache": bool(getattr(study, "from_cache", False)),
        "results": [result_record(result) for result in study.results],
        "health": health.to_dict() if health is not None else {},
    }


@dataclass
class Job:
    """One deduped unit of work: a spec, its state, and its result payload."""

    spec: StudySpec
    digest: str
    priority: int = 0
    status: str = "queued"
    submitters: int = 1
    attempts: int = 0
    requeued: int = 0
    error: str = ""
    run_seconds: float = 0.0
    payload: Optional[Dict[str, Any]] = None
    health: Dict[str, float] = field(default_factory=dict)
    event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cached")

    def status_row(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "hash": self.digest,
            "label": self.spec.display_label,
            "status": self.status,
            "cached": self.status == "cached",
            "priority": self.priority,
            "submitters": self.submitters,
            "attempts": self.attempts,
            "requeued": self.requeued,
            "run_seconds": self.run_seconds,
        }
        if self.error:
            row["error"] = self.error
        row.update(self.health)
        return row


@dataclass
class ServerStats:
    """Monotonic counters reported by the ``stats`` op."""

    submitted: int = 0
    deduped: int = 0
    cache_hits: int = 0
    executed: int = 0
    failed: int = 0
    evicted: int = 0
    recovered: int = 0
    requeued: int = 0
    watchdog_restarts: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "deduped": self.deduped,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failed": self.failed,
            "evicted": self.evicted,
            "recovered": self.recovered,
            "requeued": self.requeued,
            "watchdog_restarts": self.watchdog_restarts,
        }


class SweepServer:
    """Asyncio TCP server executing StudySpecs through a deduped job queue."""

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store_budget: Optional[int] = None,
        fuse: bool = True,
        journal: Optional[Union[str, Path, ServeJournal]] = None,
        deadline: Optional[float] = None,
        requeues: int = 1,
        watchdog_interval: float = 0.25,
    ) -> None:
        if workers < 1:
            raise ServeError("the sweep server needs at least one worker")
        if store_budget is not None and store_budget < 0:
            raise ServeError("store budget must be >= 0 bytes")
        if deadline is not None and deadline <= 0:
            raise ServeError("job deadline must be > 0 seconds")
        if requeues < 0:
            raise ServeError("requeue cap must be >= 0")
        self._store = store
        self._host = host
        self._port = int(port)
        self._workers = int(workers)
        self._budget = store_budget
        self._fuse = bool(fuse)
        if isinstance(journal, (str, Path)):
            journal = ServeJournal(journal)
        self._journal = journal
        self._deadline = None if deadline is None else float(deadline)
        self._requeues = int(requeues)
        self._watchdog_interval = float(watchdog_interval)
        self._jobs: Dict[str, Job] = {}
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self._stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatchers: List[asyncio.Task] = []
        self._watchdog: Optional[asyncio.Task] = None
        # Per-dispatcher in-flight work, keyed by the dispatcher *task* (not
        # its index — replacement tasks must never inherit a stale entry):
        # task -> (monotonic start time, job group being executed).
        self._busy: Dict[asyncio.Task, Tuple[float, List[Job]]] = {}
        self._draining = False
        self._shutdown = asyncio.Event()
        self._started_at = 0.0

    # ---------------------------------------------------------- lifecycle

    @property
    def stats(self) -> ServerStats:
        return self._stats

    @property
    def store(self):
        return self._store

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound — resolves ``port=0`` ephemerals."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES,
        )
        self._started_at = time.monotonic()
        self._recover_backlog()
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(index))
            for index in range(self._workers)
        ]
        self._watchdog = asyncio.create_task(self._watchdog_loop())

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish the backlog, stop.

        The listener closes (no new connections), in-flight submissions are
        rejected with a retriable error, and the method returns only after
        every queued/running job reached a terminal, journaled state — the
        SIGTERM path of ``repro serve``.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        while any(
            job.status in ("queued", "running") for job in self._jobs.values()
        ):
            await asyncio.sleep(0.05)
        self._shutdown.set()

    @property
    def draining(self) -> bool:
        return self._draining

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # The watchdog dies first, or it would "recover" the dispatchers we
        # are about to cancel.
        tasks = list(self._dispatchers)
        if self._watchdog is not None:
            tasks.insert(0, self._watchdog)
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError):
                await task

    # ----------------------------------------------------------- recovery

    def _recover_backlog(self) -> int:
        """Re-queue every journaled job that never reached a terminal state.

        Runs before the dispatchers start.  Each backlog spec goes through
        the ordinary :meth:`_submit_spec` path, so jobs whose results did
        land in the store before the crash (the put-then-journal gap) are
        answered as cache hits instead of re-executing.
        """
        if self._journal is None:
            return 0
        recovered = 0
        for entry in self._journal.unfinished().values():
            try:
                spec = StudySpec.from_dict(entry["spec"])
            except ReproError:
                continue  # an unparseable journaled spec cannot be re-run
            record = entry.get("record", {})
            try:
                priority = int(record.get("priority", 0))
            except (TypeError, ValueError):
                priority = 0
            self._submit_spec(spec, priority)
            recovered += 1
        self._stats.recovered += recovered
        return recovered

    def _journal_record(
        self,
        digest: str,
        status: str,
        spec: Optional[Dict[str, Any]] = None,
        **extra: Any,
    ) -> None:
        if self._journal is None:
            return
        try:
            self._journal.record(digest, status, spec=spec, **extra)
        except OSError:
            # A sick journal disk costs durability of this one transition,
            # not availability of the whole service.
            pass

    # ---------------------------------------------------------- job intake

    def _submit_spec(self, spec: StudySpec, priority: int) -> Job:
        """Dedupe-aware submission; never blocks on execution."""
        digest = spec.spec_hash()
        self._stats.submitted += 1
        job = self._jobs.get(digest)
        if job is not None:
            if job.status in ("queued", "running"):
                # Attach: this submitter rides the in-flight execution.
                job.submitters += 1
                self._stats.deduped += 1
                return job
            if job.status in ("done", "cached"):
                job.submitters += 1
                self._stats.cache_hits += 1
                return job
            # failed: fall through and re-queue the same job record.
        if job is None:
            cached = self._store_get(spec)
            if cached is not None:
                job = Job(
                    spec=spec,
                    digest=digest,
                    priority=priority,
                    status="cached",
                    payload=study_payload(cached),
                )
                job.event.set()
                self._jobs[digest] = job
                self._stats.cache_hits += 1
                # Terminal in the WAL too, or every restart would re-queue it.
                self._journal_record(digest, "cached")
                return job
            job = Job(spec=spec, digest=digest, priority=priority)
            self._jobs[digest] = job
        else:
            job.status = "queued"
            job.error = ""
            job.requeued = 0
            job.priority = priority
            job.event = asyncio.Event()
        # WAL before ack: once a client hears "accepted", a restarted server
        # can always reconstruct the job from this record alone.
        self._journal_record(
            digest, "accepted", spec=spec.to_dict(), priority=priority
        )
        self._queue.put_nowait((priority, next(self._seq), digest))
        return job

    def _store_get(self, spec: StudySpec):
        if self._store is None:
            return None
        try:
            return self._store.get(spec)
        except ReproError:
            # A sick store must not take submissions down with it; the job
            # simply executes as a cache miss.
            return None

    # ------------------------------------------------------------ dispatch

    def _run_in_thread(self, fn, *args) -> "asyncio.Future":
        """Run ``fn(*args)`` in a fresh daemon thread; await the future.

        One thread per job rather than a bounded pool: a job that hangs
        forever leaks one daemon thread instead of permanently occupying a
        pool slot, so dispatch capacity survives any number of hung jobs.
        The resolver checks ``future.cancelled()`` because a deadline
        overrun (``asyncio.wait_for``) cancels the future while the thread
        is still running — its late result must be discarded, not crash.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def resolve(result: Any, exc: Optional[BaseException]) -> None:
            if future.cancelled():
                return
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(result)

        def runner() -> None:
            try:
                result = fn(*args)
            except BaseException as exc:  # noqa: BLE001 — shipped to the loop
                outcome: Tuple[Any, Optional[BaseException]] = (None, exc)
            else:
                outcome = (result, None)
            with contextlib.suppress(RuntimeError):  # loop already closed
                loop.call_soon_threadsafe(resolve, *outcome)

        threading.Thread(
            target=runner, name="repro-serve-job", daemon=True
        ).start()
        return future

    async def _await_deadline(self, future: "asyncio.Future") -> Any:
        if self._deadline is None:
            return await future
        return await asyncio.wait_for(future, timeout=self._deadline)

    def _requeue_or_fail(self, job: Job, reason: str) -> None:
        """Deadline/hang recovery: re-queue up to the cap, then fail.

        The job keeps its ``event`` across a requeue — waiters attached to
        the first attempt must see the eventual outcome, whichever attempt
        produces it.
        """
        if job.finished:
            return
        if job.requeued < self._requeues:
            job.requeued += 1
            job.status = "queued"
            job.error = ""
            self._stats.requeued += 1
            self._journal_record(job.digest, "requeued", reason=reason)
            self._queue.put_nowait(
                (job.priority, next(self._seq), job.digest)
            )
            return
        job.error = reason
        job.status = "failed"
        self._stats.failed += 1
        self._journal_record(job.digest, "failed", error=reason)
        job.event.set()

    async def _dispatch_loop(self, worker: int = 0) -> None:
        while True:
            _priority, _seq, digest = await self._queue.get()
            job = self._jobs.get(digest)
            if job is None or job.status != "queued":
                continue  # stale queue entry (e.g. resubmitted meanwhile)
            group = [job]
            if self._fuse:
                group.extend(self._drain_fusable(job))
            for member in group:
                member.status = "running"
                member.attempts += 1
                self._journal_record(member.digest, "running")
            task = asyncio.current_task()
            assert task is not None
            self._busy[task] = (time.monotonic(), group)
            try:
                if faults.active_plan().fires(
                    "dispatcher-hang", hash=digest, worker=worker
                ):
                    # Injected wedge: this dispatcher stops making progress
                    # with its group marked running; only the watchdog can
                    # recover the jobs.
                    await asyncio.sleep(3600.0)
                start = time.perf_counter()
                if len(group) == 1:
                    await self._dispatch_single(job, start)
                else:
                    await self._dispatch_group(group, start)
            finally:
                self._busy.pop(task, None)

    async def _dispatch_single(self, job: Job, start: float) -> None:
        try:
            payload, health = await self._await_deadline(
                self._run_in_thread(self._execute, job.spec, job.attempts - 1)
            )
        except asyncio.TimeoutError:
            job.run_seconds = time.perf_counter() - start
            self._requeue_or_fail(
                job, f"deadline: exceeded {self._deadline:g}s"
            )
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = "failed"
            self._stats.failed += 1
            self._journal_record(job.digest, "failed", error=job.error)
        else:
            job.payload = payload
            job.health = health
            job.status = "done"
            self._stats.executed += 1
            self._journal_record(job.digest, "done")
        job.run_seconds = time.perf_counter() - start
        job.event.set()

    async def _dispatch_group(self, group: List[Job], start: float) -> None:
        try:
            outcomes = await self._await_deadline(
                self._run_in_thread(
                    self._execute_group,
                    [(member.spec, member.attempts - 1) for member in group],
                )
            )
        except asyncio.TimeoutError:
            elapsed = time.perf_counter() - start
            for member in group:
                member.run_seconds = elapsed
                self._requeue_or_fail(
                    member, f"deadline: exceeded {self._deadline:g}s"
                )
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            outcomes = [
                ("failed", f"{type(exc).__name__}: {exc}", {})
                for _ in group
            ]
        elapsed = time.perf_counter() - start
        total_trials = sum(member.spec.trials for member in group)
        for member, (status, value, health) in zip(group, outcomes):
            if status == "done":
                member.payload = value
                member.health = health
                member.status = "done"
                self._stats.executed += 1
                self._journal_record(member.digest, "done")
            else:
                member.error = value
                member.status = "failed"
                self._stats.failed += 1
                self._journal_record(member.digest, "failed", error=value)
            member.run_seconds = (
                elapsed * member.spec.trials / max(1, total_trials)
            )
            member.event.set()

    # ------------------------------------------------------------ watchdog

    async def _watchdog_loop(self) -> None:
        """Replace dispatchers that die or stop making progress.

        A *crashed* dispatcher (its task finished — only possible through a
        bug or external cancellation) is replaced outright.  A *hung* one —
        busy on the same job group past the job deadline plus two watchdog
        intervals — is cancelled, its jobs re-queued through the ordinary
        requeue-or-fail ladder, and a fresh dispatcher started in its slot.
        Hang detection needs a ``deadline``; without one only crash
        recovery is active (an unbounded job is indistinguishable from a
        slow one).
        """
        interval = self._watchdog_interval
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for index, task in enumerate(self._dispatchers):
                if task.done():
                    self._restart_dispatcher(index, task, "crashed")
                    continue
                if self._deadline is None:
                    continue
                entry = self._busy.get(task)
                if entry is None:
                    continue
                started, _group = entry
                if now - started > self._deadline + 2 * interval:
                    task.cancel()
                    self._restart_dispatcher(index, task, "hung")

    def _restart_dispatcher(
        self, index: int, task: asyncio.Task, why: str
    ) -> None:
        if not task.cancelled() and task.done():
            task.exception()  # retrieve, or the loop logs it as unhandled
        _started, group = self._busy.pop(task, (0.0, []))
        for member in group:
            if member.status == "running":
                self._requeue_or_fail(member, f"dispatcher {why}")
        self._stats.watchdog_restarts += 1
        self._dispatchers[index] = asyncio.create_task(
            self._dispatch_loop(index)
        )

    def _drain_fusable(self, lead: Job, cap: int = 16) -> List[Job]:
        """Queued jobs fusable with ``lead``, pulled without blocking.

        Runs synchronously on the event loop (no awaits), so the drain is
        atomic with respect to the other dispatcher tasks.  Entries whose
        jobs cannot fuse with the lead are re-queued with their original
        ordering tuple; stale entries are dropped exactly as the dispatch
        loop would drop them.  The group is bounded by ``cap`` jobs and the
        fused block's trial budget.
        """
        from ..sim.backends.fused import fusion_budget, fusion_key

        key = fusion_key(lead.spec)
        if key is None:
            return []
        budget = fusion_budget(lead.spec.horizon)
        trials = lead.spec.trials
        if trials > budget:
            return []
        group: List[Job] = []
        requeue: List[Tuple[int, int, str]] = []
        while len(group) + 1 < cap:
            try:
                entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            candidate = self._jobs.get(entry[2])
            if candidate is None or candidate.status != "queued":
                continue  # stale queue entry
            if (
                candidate.spec.trials + trials <= budget
                and fusion_key(candidate.spec) == key
            ):
                group.append(candidate)
                trials += candidate.spec.trials
            else:
                requeue.append(entry)
        for entry in requeue:
            self._queue.put_nowait(entry)
        return group

    def _execute(
        self, spec: StudySpec, attempt: int
    ) -> Tuple[Dict[str, Any], Dict[str, float]]:
        """Run one job in an executor thread (the dispatcher awaits it)."""
        faults.active_plan().maybe_raise(
            "serve-job", hash=spec.spec_hash(), attempt=attempt
        )
        study = spec.run(store=self._store)
        health = getattr(study, "health", None)
        health_fields = dict(health.summary_fields()) if health is not None else {}
        if self._budget is not None and hasattr(self._store, "evict"):
            report = self._store.evict(self._budget)
            self._stats.evicted += len(report["evicted"])
        return study_payload(study), health_fields

    def _execute_group(
        self, items: Sequence[Tuple[StudySpec, int]]
    ) -> List[Tuple[str, Any, Dict[str, float]]]:
        """Run a fused job group in one executor thread; one outcome per job.

        Every job keeps its own ``serve-job`` fault check, store row and
        failure accounting.  The fused run covers only the jobs that pass
        their fault check and miss the store; when it fails (or declines),
        those jobs degrade one by one to the ordinary per-job execution
        path, so a fused failure can never corrupt or lose a sibling job.
        Outcomes are ``("done", payload, health)`` or
        ``("failed", error_text, {})``, aligned with ``items``.
        """
        from ..sim.backends.fused import run_fused_group

        outcomes: List[Optional[Tuple[str, Any, Dict[str, float]]]] = [
            None
        ] * len(items)
        misses: List[int] = []
        for pos, (spec, attempt) in enumerate(items):
            try:
                faults.active_plan().maybe_raise(
                    "serve-job", hash=spec.spec_hash(), attempt=attempt
                )
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                outcomes[pos] = ("failed", f"{type(exc).__name__}: {exc}", {})
                continue
            cached = self._store_get(spec)
            if cached is not None:
                health = getattr(cached, "health", None)
                fields = (
                    dict(health.summary_fields()) if health is not None else {}
                )
                outcomes[pos] = ("done", study_payload(cached), fields)
                continue
            misses.append(pos)

        studies = None
        if len(misses) >= 2:
            try:
                studies = run_fused_group([items[pos][0] for pos in misses])
            except Exception:  # noqa: BLE001 — degrade to per-job dispatch
                studies = None
        for offset, pos in enumerate(misses):
            spec = items[pos][0]
            try:
                if studies is not None:
                    study = studies[offset]
                    if self._store is not None:
                        self._store.put(spec, study)
                else:
                    study = spec.run(store=self._store)
                health = getattr(study, "health", None)
                fields = (
                    dict(health.summary_fields()) if health is not None else {}
                )
                outcomes[pos] = ("done", study_payload(study), fields)
            except Exception as exc:  # noqa: BLE001 — job isolation boundary
                outcomes[pos] = ("failed", f"{type(exc).__name__}: {exc}", {})
        if self._budget is not None and hasattr(self._store, "evict"):
            report = self._store.evict(self._budget)
            self._stats.evicted += len(report["evicted"])
        return [outcome for outcome in outcomes if outcome is not None]

    # --------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer, error_message("request line too long")
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line)
                    await self._handle_message(message, writer)
                except ReproError as exc:
                    await self._send(writer, error_message(str(exc)))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    async def _handle_message(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        op = message.get("op")
        if op not in KNOWN_OPS:
            raise ServeError(
                f"unknown op {op!r}; known ops: {', '.join(KNOWN_OPS)}"
            )
        if op == "submit":
            await self._op_submit(message, writer)
        elif op == "status":
            await self._op_status(message, writer)
        elif op == "result":
            await self._op_result(message, writer)
        elif op == "stats":
            await self._op_stats(writer)
        else:  # shutdown
            await self._send(writer, {"ok": True, "op": "shutdown"})
            self._shutdown.set()

    def _specs_from_message(self, message: Dict[str, Any]) -> List[StudySpec]:
        if "spec" in message:
            raw: Iterable[Any] = [message["spec"]]
        elif "specs" in message:
            raw = message["specs"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise ServeError("'specs' must be a list of study specs")
        elif "sweep" in message:
            sweep = message["sweep"]
            if not isinstance(sweep, dict):
                raise ServeError("'sweep' must be {'base': ..., 'axes': ...}")
            base = StudySpec.from_dict(sweep.get("base", {}))
            return Sweep(base, sweep.get("axes", {})).expand()
        else:
            raise ServeError("submit needs 'spec', 'specs' or 'sweep'")
        specs = [StudySpec.from_dict(entry) for entry in raw]
        if not specs:
            raise ServeError("submit carried no specs")
        return specs

    async def _op_submit(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            raise ServeError(
                "server is draining: finishing its backlog and refusing new "
                "submissions; retry against a restarted server"
            )
        specs = self._specs_from_message(message)
        priority = int(message.get("priority", 0))
        jobs = [self._submit_spec(spec, priority) for spec in specs]
        await self._send(
            writer,
            {
                "ok": True,
                "op": "submit",
                "version": PROTOCOL_VERSION,
                "jobs": [job.status_row() for job in jobs],
            },
        )
        if message.get("wait", False):
            await self._stream_results([job.digest for job in jobs], writer)

    async def _op_status(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        digests = message.get("hashes")
        if digests is None:
            rows = [job.status_row() for job in self._jobs.values()]
        else:
            rows = []
            for digest in digests:
                job = self._jobs.get(str(digest))
                if job is None:
                    rows.append({"hash": str(digest), "status": "unknown"})
                else:
                    rows.append(job.status_row())
        await self._send(writer, {"ok": True, "op": "status", "jobs": rows})

    async def _op_result(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        digests = message.get("hashes")
        if not isinstance(digests, list):
            raise ServeError("result needs 'hashes': [spec_hash, ...]")
        await self._send(
            writer, {"ok": True, "op": "result", "count": len(digests)}
        )
        if message.get("wait", True):
            await self._stream_results([str(d) for d in digests], writer)
        else:
            for digest in digests:
                job = self._jobs.get(str(digest))
                if job is None:
                    event = {
                        "event": "result",
                        "hash": str(digest),
                        "status": "unknown",
                    }
                else:
                    event = self._result_event(job)
                await self._send(writer, event)
            await self._send(writer, {"event": "end"})

    async def _op_stats(self, writer: asyncio.StreamWriter) -> None:
        by_state = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            by_state[job.status] = by_state.get(job.status, 0) + 1
        payload: Dict[str, Any] = {
            "ok": True,
            "op": "stats",
            "version": PROTOCOL_VERSION,
            "workers": self._workers,
            "uptime_seconds": time.monotonic() - self._started_at,
            "queue_depth": self._queue.qsize(),
            "draining": self._draining,
            "journaled": self._journal is not None,
            "jobs": by_state,
            **self._stats.to_dict(),
        }
        if hasattr(self._store, "stats"):
            payload["store"] = self._store.stats()
        await self._send(writer, payload)

    def _result_event(self, job: Job) -> Dict[str, Any]:
        event = {"event": "result", **job.status_row()}
        if job.payload is not None:
            event["study"] = job.payload
        return event

    async def _stream_results(
        self, digests: List[str], writer: asyncio.StreamWriter
    ) -> None:
        """One ``result`` event per job, in completion order, then ``end``."""
        waiters: Dict[asyncio.Task, Job] = {}
        for digest in dict.fromkeys(digests):  # de-dup, keep order
            job = self._jobs.get(digest)
            if job is None:
                await self._send(
                    writer,
                    {"event": "result", "hash": digest, "status": "unknown"},
                )
                continue
            waiters[asyncio.create_task(job.event.wait())] = job
        remaining = set(waiters)
        while remaining:
            done, remaining = await asyncio.wait(
                remaining, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                await self._send(writer, self._result_event(waiters[task]))
        await self._send(writer, {"event": "end"})


class BackgroundServer:
    """A :class:`SweepServer` on its own event loop in a daemon thread.

    Context-manager harness for tests, benchmarks and library embedding::

        with BackgroundServer(store_root, shards=2, workers=2) as server:
            client = ServeClient(*server.address)
            ...
    """

    def __init__(
        self,
        store_root: Union[str, Path],
        shards: int = 2,
        workers: int = 2,
        virtual_nodes: Optional[int] = None,
        store_budget: Optional[int] = None,
        host: str = "127.0.0.1",
        fuse: bool = True,
        journal: Optional[Union[str, Path]] = None,
        deadline: Optional[float] = None,
        requeues: int = 1,
        port: int = 0,
        watchdog_interval: float = 0.25,
    ) -> None:
        self._store_root = store_root
        self._shards = shards
        self._workers = workers
        self._virtual_nodes = virtual_nodes
        self._budget = store_budget
        self._host = host
        self._fuse = fuse
        self._journal = journal
        self._deadline = deadline
        self._requeues = requeues
        self._port = int(port)
        self._watchdog_interval = float(watchdog_interval)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[SweepServer] = None
        self._address: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ServeError("background server is not running")
        return self._address

    @property
    def server(self) -> SweepServer:
        if self._server is None:
            raise ServeError("background server is not running")
        return self._server

    def __enter__(self) -> "BackgroundServer":
        started = threading.Event()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self._main(started))
            except BaseException as exc:  # noqa: BLE001 — surfaced to caller
                self._startup_error = exc
            finally:
                started.set()
                with contextlib.suppress(Exception):
                    loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        started.wait(timeout=30.0)
        if self._startup_error is not None:
            raise ServeError(
                f"background server failed to start: {self._startup_error}"
            ) from self._startup_error
        if self._address is None:
            raise ServeError("background server did not come up in time")
        return self

    async def _main(self, started: threading.Event) -> None:
        store = ShardedStudyStore(
            self._store_root,
            shards=self._shards,
            virtual_nodes=self._virtual_nodes,
        )
        self._server = SweepServer(
            store,
            host=self._host,
            port=self._port,
            workers=self._workers,
            store_budget=self._budget,
            fuse=self._fuse,
            journal=self._journal,
            deadline=self._deadline,
            requeues=self._requeues,
            watchdog_interval=self._watchdog_interval,
        )
        await self._server.start()
        self._address = self._server.address
        started.set()
        await self._server.serve_until_shutdown()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self._server is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._address = None
