"""Deterministic, spec-able fault injection for the execution stack.

The paper's subject is robustness against adversarial interference; this
module gives the *harness* the same adversary.  A :class:`FaultPlan` is a
seeded, JSON-round-trippable description of which failures to inject where,
so every failure mode the resilience layer handles — worker crashes, worker
hangs, shared-memory attach failures, kernel exceptions mid-study, store
file corruption — is replayable bit for bit in tests and CI.

Injection sites (the string each instrumented component asks about):

=====================  ======================================================
``worker-crash``       the forked shard worker calls ``os._exit`` before
                       running its trials (coords: ``shard``, ``attempt``,
                       ``trials``)
``worker-hang``        the shard worker sleeps past any reasonable deadline
                       (same coords)
``shm-export``         the worker's shared-memory staging fails; the shard
                       falls back to the pickle transport (same coords)
``shm-attach``         the parent's attach to a worker's shared-memory block
                       fails; the supervisor retries the shard with the
                       pickle transport (same coords)
``kernel``             a simulated kernel exception mid-study
                       (:class:`~repro.errors.FaultInjected` raised from the
                       study dispatch path; coords: ``trials``)
``sweep-point``        a sweep point fails before execution (coords:
                       ``point``, ``attempt``)
``store-corrupt``      a just-written study-store entry is truncated on disk
                       (coords: ``hash``)
``serve-job``          a sweep-service job fails before execution (coords:
                       ``hash``, ``attempt``) — the server records the job
                       as failed and reports the error to waiting clients
``fused-group``        a fused multi-study dispatch fails before execution
                       (coords: ``points``) — every member falls back to
                       per-point dispatch; nothing was stored, so sibling
                       points are unaffected
``conn-drop``          the service client's TCP connection drops mid-request
                       (coords: ``op``, ``attempt``) — the client must
                       back off, reconnect and reattach by spec hash
``wal-torn``           the serve journal's just-appended record is torn
                       mid-line on disk, as if the daemon died mid-write
                       (coords: ``hash``, ``status``) — recovery must
                       tolerate the torn trailing line
``dispatcher-hang``    a server dispatcher wedges after claiming a job
                       (coords: ``hash``, ``worker``) — the watchdog must
                       cancel it, requeue the job and spawn a replacement
``shard-loss``         one shard of a sharded study store is unavailable
                       (coords: ``shard``) — reads become misses and
                       writes no-ops, each with a health event, never a
                       crash
=====================  ======================================================

Rules either name exact coordinates (``{"site": "worker-crash", "shard": 1,
"attempt": 0}`` — fire exactly when shard 1 runs its first attempt) or fire
at a deterministic pseudo-random ``rate`` derived from the plan seed and the
coordinates (``{"site": "worker-crash", "rate": 0.25}``), so a "chaos" CI
leg produces the same faults on every run.  Omitted coordinates are
wildcards.  ``times`` caps how often a rule fires per process.

Activation:

* ``REPRO_FAULTS`` environment variable — inline JSON, or ``@/path/to.json``
  (inherited by forked workers);
* :func:`activate` / :func:`deactivate` / the :func:`injected` context
  manager (tests).
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .errors import FaultInjected, SpecError

__all__ = [
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "activate",
    "deactivate",
    "injected",
]

#: Sites a rule may target; kept in one place so typos in plans fail loudly.
KNOWN_SITES = (
    "worker-crash",
    "worker-hang",
    "shm-export",
    "shm-attach",
    "kernel",
    "sweep-point",
    "store-corrupt",
    "serve-job",
    "fused-group",
    "conn-drop",
    "wal-torn",
    "dispatcher-hang",
    "shard-loss",
)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: a site, optional coordinates, and a firing mode.

    ``match`` pins coordinates (omitted keys are wildcards); ``rate`` makes
    the rule probabilistic but *deterministic* — whether it fires is a pure
    hash of (plan seed, site, coordinates), identical across processes and
    re-runs.  ``times`` bounds firings per process (``None`` = unlimited),
    letting a deterministic rule fire once and then let a retry succeed.
    """

    site: str
    match: Mapping[str, Any] = field(default_factory=dict)
    rate: float = 1.0
    times: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise SpecError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(KNOWN_SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise SpecError(f"fault rate must be in [0, 1], got {self.rate!r}")
        if self.times is not None and self.times < 1:
            raise SpecError(f"fault times must be >= 1, got {self.times!r}")
        object.__setattr__(self, "match", dict(self.match))

    def matches(self, coords: Mapping[str, Any]) -> bool:
        return all(coords.get(key) == value for key, value in self.match.items())

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"site": self.site, **self.match}
        if self.rate != 1.0:
            data["rate"] = self.rate
        if self.times is not None:
            data["times"] = self.times
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(data, Mapping) or "site" not in data:
            raise SpecError(f"fault rule must be a mapping with a 'site': {data!r}")
        extra = {
            key: value
            for key, value in data.items()
            if key not in ("site", "rate", "times")
        }
        return cls(
            site=str(data["site"]),
            match=extra,
            rate=float(data.get("rate", 1.0)),
            times=data.get("times"),
        )


def _coord_digest(seed: int, site: str, coords: Mapping[str, Any]) -> float:
    """Deterministic uniform [0, 1) draw for a (seed, site, coords) tuple."""
    text = json.dumps(
        {"seed": seed, "site": site, "coords": {k: coords[k] for k in sorted(coords)}},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s, JSON-round-trippable like the specs."""

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0
    _fired: Dict[int, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.rules = [
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in self.rules
        ]

    def fires(self, site: str, **coords: Any) -> bool:
        """Whether an injected fault fires at ``site`` with these coordinates.

        Deterministic: exact-match rules fire whenever their pinned
        coordinates match; ``rate`` rules fire iff the coordinate hash lands
        under the rate.  Each rule's per-process ``times`` budget is
        decremented on firing.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site or not rule.matches(coords):
                continue
            if rule.times is not None and self._fired.get(index, 0) >= rule.times:
                continue
            if rule.rate < 1.0 and _coord_digest(self.seed, site, coords) >= rule.rate:
                continue
            self._fired[index] = self._fired.get(index, 0) + 1
            return True
        return False

    def maybe_raise(self, site: str, **coords: Any) -> None:
        """Raise :class:`~repro.errors.FaultInjected` when a rule fires."""
        if self.fires(site, **coords):
            raise FaultInjected(site, detail=_describe_coords(coords))

    @property
    def empty(self) -> bool:
        return not self.rules

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise SpecError(f"fault plan must be a mapping: {data!r}")
        unknown = sorted(set(data) - {"seed", "rules"})
        if unknown:
            raise SpecError(f"unknown fault plan field(s): {', '.join(unknown)}")
        rules = data.get("rules", [])
        if not isinstance(rules, Sequence) or isinstance(rules, (str, bytes)):
            raise SpecError("fault plan 'rules' must be a list")
        return cls(
            rules=[FaultRule.from_dict(rule) for rule in rules],
            seed=int(data.get("seed", 0)),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(data)


#: The always-inactive plan returned when no faults are configured.
_NO_FAULTS = FaultPlan()

#: (raw REPRO_FAULTS value, parsed plan) — re-parsed when the env changes.
_ENV_CACHE: Tuple[Optional[str], FaultPlan] = (None, _NO_FAULTS)

#: Plan installed programmatically; takes precedence over the environment.
_ACTIVE: Optional[FaultPlan] = None


def _plan_from_env(raw: str) -> FaultPlan:
    text = raw.strip()
    if text.startswith("@"):
        text = Path(text[1:]).read_text()
    return FaultPlan.from_json(text)


def active_plan() -> FaultPlan:
    """The currently active fault plan (an empty, never-firing plan if none).

    Programmatic activation (:func:`activate` / :func:`injected`) wins over
    the ``REPRO_FAULTS`` environment variable.  Forked workers inherit the
    parent's activation either way.
    """
    global _ENV_CACHE
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get("REPRO_FAULTS")
    if not raw:
        return _NO_FAULTS
    if _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, _plan_from_env(raw))
    return _ENV_CACHE[1]


def activate(plan: Union[FaultPlan, Mapping[str, Any], str]) -> FaultPlan:
    """Install a fault plan for this process (and future forked children)."""
    global _ACTIVE
    if isinstance(plan, str):
        plan = FaultPlan.from_json(plan)
    elif not isinstance(plan, FaultPlan):
        plan = FaultPlan.from_dict(plan)
    _ACTIVE = plan
    return plan


def deactivate() -> None:
    """Remove any programmatically installed plan (environment still applies)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def injected(plan: Union[FaultPlan, Mapping[str, Any], str]):
    """Context manager: activate ``plan`` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    installed = activate(plan)
    try:
        yield installed
    finally:
        _ACTIVE = previous


def _describe_coords(coords: Mapping[str, Any]) -> str:
    return ", ".join(f"{key}={coords[key]}" for key in sorted(coords))
