"""Command-line interface.

Examples
--------

Run a single experiment at the quick scale and print its tables::

    python -m repro.cli run E3 --trials 3

Run every experiment and (re)generate EXPERIMENTS.md::

    python -m repro.cli report --scale full --output EXPERIMENTS.md

Simulate one workload interactively (ad hoc or a named scenario)::

    python -m repro.cli simulate --arrivals 128 --horizon 16384 --jam 0.25
    python -m repro.cli simulate --scenario ethernet-burst

List the named scenarios and their specs::

    python -m repro.cli scenarios --format json

Sweep a parameter grid over a declarative study spec (results are cached in
a content-addressed store keyed by spec hash)::

    python -m repro.cli sweep --scenario adversarial-jam \\
        --axis adversary.jamming.params.fraction=0.0,0.1,0.25,0.4 \\
        --axis horizon=4096,8192,16384 --trials 3 --format csv

Run the benchmark suite and persist the performance trajectory::

    python -m repro.cli bench --scale smoke --output BENCH_$(date +%F).json
    python -m repro.cli bench --compare BENCH_old.json BENCH_new.json

Serve StudySpec JSON over TCP (deduped async job queue + sharded store)::

    python -m repro.cli serve --port 7421 --workers 4 --shards 4
    python -m repro.cli submit --server :7421 --scenario adversarial-jam \\
        --axis horizon=4096,8192
    python -m repro.cli sweep --server :7421 --scenario adversarial-jam \\
        --axis adversary.jamming.params.fraction=0.0,0.25
    python -m repro.cli client stats --server :7421
    python -m repro.cli store stats --root .repro-store
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from . import quick_run
from .errors import ReproError, SpecError
from .experiments import ExperimentConfig, all_experiments, get_experiment
from .experiments.report import run_all, write_report
from .sim.backends import available_backends, available_study_backends

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-contention",
        description=(
            "Reproduction of 'Tight Trade-off in Contention Resolution without "
            "Collision Detection' (PODC 2021)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment and print its report")
    run_parser.add_argument("experiment_id", help="experiment id, e.g. E3")
    _add_config_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    report_parser = subparsers.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    report_parser.add_argument("--output", default="EXPERIMENTS.md")
    report_parser.add_argument(
        "--only", nargs="*", default=None, help="restrict to these experiment ids"
    )
    _add_config_arguments(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run the paper's algorithm once on a simple workload"
    )
    simulate_parser.add_argument("--arrivals", type=int, default=64)
    simulate_parser.add_argument("--horizon", type=int, default=None)
    simulate_parser.add_argument("--jam", type=float, default=0.0)
    simulate_parser.add_argument("--seed", type=int, default=None)
    simulate_parser.add_argument(
        "--scenario",
        default=None,
        help="run a named scenario workload instead of --arrivals/--jam "
        "(see `repro scenarios`)",
    )
    simulate_parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="auto",
        help="simulation slot kernel (auto picks vectorized when eligible)",
    )
    simulate_parser.add_argument(
        "--explain-backend",
        action="store_true",
        help="also print the backend ladder: which kernel was selected, "
        "which rungs were skipped or ineligible and why",
    )
    simulate_parser.set_defaults(func=_cmd_simulate)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list the named workload scenarios and their specs"
    )
    scenarios_parser.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    scenarios_parser.set_defaults(func=_cmd_scenarios)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="expand a parameter grid over a study spec and run every point "
        "(cached by spec hash)",
    )
    base = sweep_parser.add_mutually_exclusive_group(required=True)
    base.add_argument(
        "--spec", default=None, help="path to a StudySpec JSON file ('-' for stdin)"
    )
    base.add_argument(
        "--scenario", default=None, help="use a named scenario's study spec as the base"
    )
    sweep_parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="PATH=V1,V2,...",
        help="sweep axis: dotted spec path and comma-separated values "
        "(repeatable; cartesian product)",
    )
    sweep_parser.add_argument("--trials", type=int, default=None)
    sweep_parser.add_argument("--seed", type=int, default=None)
    sweep_parser.add_argument(
        "--backend", choices=available_study_backends(), default=None
    )
    sweep_parser.add_argument("--workers", type=int, default=None)
    sweep_parser.add_argument(
        "--streaming",
        action="store_const",
        const=True,
        default=None,
        help="run every sweep point in streaming mode (summaries only)",
    )
    sweep_parser.add_argument(
        "--store",
        default=".repro-store",
        help="result cache directory (default: .repro-store)",
    )
    sweep_parser.add_argument(
        "--no-store", action="store_true", help="disable the result cache"
    )
    sweep_parser.add_argument(
        "--format", choices=["table", "json", "csv"], default="table"
    )
    sweep_parser.add_argument(
        "--on-error",
        choices=["raise", "skip", "retry"],
        default="raise",
        help="per-point failure policy: raise immediately (default), record "
        "the failure and continue, or retry the point first",
    )
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per point under --on-error retry (default: 1)",
    )
    sweep_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append per-point outcomes to this JSONL journal "
        "(default with --resume: <store>/sweep-journal.jsonl)",
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip points the journal marks done (served from the store) "
        "and re-attempt failed ones",
    )
    sweep_parser.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="submit the grid to a running `repro serve` daemon instead of "
        "executing locally (thin client; rows stream back)",
    )
    sweep_parser.add_argument(
        "--no-fuse",
        action="store_true",
        help="disable fused multi-study dispatch and run every point "
        "per-point (results are identical either way)",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the sweep-service daemon: accept StudySpec JSON over TCP, "
        "dedupe and execute through a sharded study store",
    )
    serve_parser.add_argument(
        "--host", default=None, help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, help="TCP port (default 7421)"
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="concurrent job executions (default 2)",
    )
    serve_parser.add_argument(
        "--store-root",
        default=None,
        help="sharded store directory (default .repro-store)",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard directories behind the consistent-hash ring (default 2; "
        "an existing store keeps its ring.json topology)",
    )
    serve_parser.add_argument(
        "--virtual-nodes",
        type=int,
        default=None,
        help="virtual nodes per shard on the ring (default 128)",
    )
    serve_parser.add_argument(
        "--store-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-shard byte budget; evict LRU-by-atime after each job "
        "(default: unlimited)",
    )
    serve_parser.add_argument(
        "--no-fuse",
        action="store_true",
        help="dispatch every job individually instead of fusing compatible "
        "queued jobs into one lockstep run",
    )
    serve_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write-ahead journal of job transitions; a restarted server "
        "re-queues accepted-but-unfinished jobs from it "
        "(default: REPRO_SERVE_JOURNAL, else no journal)",
    )
    serve_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job execution deadline; overruns are re-queued then "
        "failed (default: REPRO_SERVE_DEADLINE, else unlimited)",
    )
    serve_parser.add_argument(
        "--requeues",
        type=int,
        default=None,
        help="times a deadline/hang-hit job is re-queued before failing "
        "(default: REPRO_SERVE_REQUEUES, else 1)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit",
        help="submit a StudySpec (or a sweep grid over one) to a running "
        "`repro serve` daemon and stream the results back",
    )
    submit_base = submit_parser.add_mutually_exclusive_group(required=True)
    submit_base.add_argument(
        "--spec", default=None, help="path to a StudySpec JSON file ('-' for stdin)"
    )
    submit_base.add_argument(
        "--scenario", default=None, help="use a named scenario's study spec as the base"
    )
    submit_parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="PATH=V1,V2,...",
        help="sweep axis over the base spec (repeatable; cartesian product)",
    )
    submit_parser.add_argument("--trials", type=int, default=None)
    submit_parser.add_argument("--seed", type=int, default=None)
    submit_parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="queue priority (lower runs first; default 0)",
    )
    submit_parser.add_argument(
        "--no-wait",
        action="store_true",
        help="enqueue and print job hashes instead of waiting for results",
    )
    submit_parser.add_argument(
        "--format", choices=["table", "json", "csv"], default="table"
    )
    _add_server_argument(submit_parser)
    submit_parser.set_defaults(func=_cmd_submit)

    client_parser = subparsers.add_parser(
        "client",
        help="query a running `repro serve` daemon (status/stats/shutdown)",
    )
    client_parser.add_argument(
        "action", choices=["stats", "status", "result", "shutdown"]
    )
    client_parser.add_argument(
        "hashes", nargs="*", help="spec hashes (status/result)"
    )
    _add_server_argument(client_parser)
    client_parser.set_defaults(func=_cmd_client)

    store_parser = subparsers.add_parser(
        "store",
        help="inspect and maintain a sharded study store "
        "(stats / evict / rebalance / scrub)",
    )
    store_parser.add_argument(
        "action", choices=["stats", "evict", "rebalance", "scrub"]
    )
    store_parser.add_argument(
        "--root",
        default=".repro-store",
        help="store directory (default: .repro-store)",
    )
    store_parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-shard byte budget for evict",
    )
    store_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="new shard count for rebalance (default: keep current)",
    )
    store_parser.add_argument(
        "--virtual-nodes",
        type=int,
        default=None,
        help="new virtual-node count for rebalance",
    )
    store_parser.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    store_parser.set_defaults(func=_cmd_store)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the benchmark suite and write a BENCH_<date>.json, "
        "or compare two bench files",
    )
    bench_parser.add_argument(
        "--scale", choices=["smoke", "quick", "full"], default="smoke"
    )
    bench_parser.add_argument("--seed", type=int, default=20210219)
    bench_parser.add_argument(
        "--output",
        default=None,
        help="output path (default: BENCH_<date>.json in the cwd)",
    )
    bench_parser.add_argument(
        "--backends",
        nargs="*",
        default=None,
        help="restrict the micro suite to these backends",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best wins)"
    )
    bench_parser.add_argument(
        "--no-experiments",
        action="store_true",
        help="skip the experiment-level smoke suite",
    )
    bench_parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "CURRENT"),
        default=None,
        help="diff two bench files instead of running; exits 1 on regression",
    )
    bench_parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative regression threshold for --compare (default 0.2)",
    )
    bench_parser.add_argument(
        "--profile",
        metavar="ID",
        default=None,
        help="cProfile one micro benchmark (top-20 cumulative entries) "
        "instead of running the suite; honours --scale/--seed, and "
        "--backends picks the profiled backend",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    return parser


def _add_server_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="sweep-server address (default: REPRO_SERVE_HOST/REPRO_SERVE_PORT "
        "or 127.0.0.1:7421)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="client socket timeout in seconds "
        "(default: REPRO_SERVE_TIMEOUT, else 300; 0 disables)",
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=20210219)
    parser.add_argument(
        "--scale", choices=["smoke", "quick", "full"], default="quick"
    )
    parser.add_argument(
        "--backend",
        choices=available_study_backends(),
        default="auto",
        help=(
            "simulation backend (auto escalates batched-study -> "
            "lockstep -> vectorized -> reference per study)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial worker processes (fork-based; 1 = serial)",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help=(
            "release per-slot prefix columns after pipeline reduction "
            "(memory O(1) in the horizon; honored by pipeline-based "
            "experiments)"
        ),
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        trials=args.trials,
        seed=args.seed,
        scale=args.scale,
        backend=args.backend,
        workers=args.workers,
        streaming=args.streaming,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    for experiment_id in all_experiments():
        experiment = get_experiment(experiment_id)
        print(f"{experiment_id}: {experiment.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    experiment = get_experiment(args.experiment_id)
    result = experiment.run(config)
    print(result.render_text())
    return 0 if result.consistent_with_paper in (True, None) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    results = run_all(config, experiment_ids=args.only)
    path = write_report(args.output, results, config)
    print(f"wrote {path} ({len(results)} experiments)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    # Without a scenario the historical default horizon (8192) applies; a
    # scenario supplies its own horizon unless --horizon overrides it.
    horizon = args.horizon
    if horizon is None and args.scenario is None:
        horizon = 8192
    result = quick_run(
        arrivals=args.arrivals,
        horizon=horizon,
        jam_fraction=args.jam,
        seed=args.seed,
        backend=args.backend,
        scenario=args.scenario,
    )
    print(result.describe())
    print(f"classical throughput at horizon: {result.classical_throughput():.3f}")
    print(f"mean latency: {result.mean_latency():.1f} slots")
    print(
        f"backend: {result.backend} "
        f"({result.slots_per_second:,.0f} slots/s, "
        f"{result.wall_time_seconds * 1000:.1f} ms)"
    )
    if args.explain_backend:
        print()
        print(_explain_backend_text(args, horizon))
    return 0


def _explain_backend_text(args: argparse.Namespace, horizon: Optional[int]) -> str:
    """The study-ladder explanation for the simulate command's workload."""
    from . import cjz_factory
    from .sim import SimulatorConfig
    from .sim.backends.compiled import interpreter_mode
    from .sim.runner import TrialRunner
    from .spec import AdversarySpec

    if args.scenario is not None:
        from .workloads import get_scenario

        named = get_scenario(args.scenario)
        adversary_spec = named.adversary_spec()
        horizon = horizon or named.spec.horizon
    else:
        adversary_spec = AdversarySpec.batch(
            args.arrivals, jam_fraction=args.jam
        )
    horizon = horizon or 4096
    runner = TrialRunner(
        cjz_factory(),
        adversary_spec.factory(horizon),
        SimulatorConfig(horizon=horizon),
        backend=args.backend,
    )
    lines = ["backend ladder (single trial):"]
    for row in runner.explain_backend(1):
        lines.append(
            f"  {row['backend']:<24} {row['status']:<10} {row['reason']}"
        )
    lines.append(
        "environment: "
        f"REPRO_DISABLE_NUMBA={os.environ.get('REPRO_DISABLE_NUMBA', '')!r} "
        f"REPRO_COMPILED_FORCE_PYTHON="
        f"{os.environ.get('REPRO_COMPILED_FORCE_PYTHON', '')!r} "
        f"(compiled interpreter mode: {interpreter_mode()})"
    )
    return "\n".join(lines)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .workloads import STANDARD_SCENARIOS

    if args.format == "json":
        payload = [
            {
                "key": scenario.key,
                "description": scenario.description,
                "study": scenario.study_spec().to_dict(),
            }
            for scenario in STANDARD_SCENARIOS.values()
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for scenario in STANDARD_SCENARIOS.values():
        spec = scenario.spec
        print(f"{scenario.key}")
        print(f"  {scenario.description}")
        print(
            f"  workload: {spec.arrival_kind} arrivals + {spec.jamming_kind} "
            f"jamming over {spec.horizon} slots"
        )
    print(
        "\nrun one with: repro simulate --scenario <key>   "
        "or sweep it with: repro sweep --scenario <key> --axis ..."
    )
    return 0


def _parse_axis_value(text: str):
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_axes(axis_args: Sequence[str]) -> Dict[str, List[Any]]:
    axes: Dict[str, List[Any]] = {}
    for axis in axis_args:
        path, sep, values = axis.partition("=")
        if not sep or not path or not values:
            raise SpecError(
                f"invalid --axis {axis!r}; expected PATH=V1,V2,... "
                "(e.g. adversary.jamming.params.fraction=0.0,0.25)"
            )
        axes[path] = [_parse_axis_value(v) for v in values.split(",")]
    return axes


def _sweep_base_spec(args: argparse.Namespace):
    from .spec import StudySpec
    from .workloads import scenario_study

    if args.scenario is not None:
        spec = scenario_study(args.scenario)
    elif args.spec == "-":
        spec = StudySpec.from_json(sys.stdin.read())
    else:
        spec = StudySpec.from_json(Path(args.spec).read_text())
    overrides: Dict[str, Any] = {}
    for name in ("trials", "seed", "backend", "workers", "streaming"):
        value = getattr(args, name, None)
        if value is not None:
            overrides[name] = value
    return spec.with_overrides(overrides)


def _render_sweep_rows(rows: List[Dict[str, Any]], fmt: str) -> str:
    if fmt == "json":
        return json.dumps(rows, indent=2, sort_keys=True)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
        return buffer.getvalue().rstrip("\n")
    from .analysis.tables import Table

    columns = list(rows[0])
    table = Table(title=f"sweep ({len(rows)} points)", columns=columns)
    for row in rows:
        table.add_row(*[row[c] for c in columns])
    return table.render()


def _serve_address(args: argparse.Namespace) -> str:
    """Resolve the server address: --server flag, env vars, then defaults."""
    if getattr(args, "server", None):
        address = args.server
    else:
        host = os.environ.get("REPRO_SERVE_HOST", "127.0.0.1")
        port = os.environ.get("REPRO_SERVE_PORT", "7421")
        address = f"{host}:{port}"
    if ":" not in address:
        address = f"127.0.0.1:{address}" if address.isdigit() else f"{address}:7421"
    elif address.startswith(":"):
        address = f"127.0.0.1{address}"
    return address


def _serve_client(args: argparse.Namespace):
    from .serve import ServeClient

    timeout = getattr(args, "timeout", None)
    if timeout is None:
        # Let the client resolve REPRO_SERVE_TIMEOUT (default 300 s).
        return ServeClient.from_address(_serve_address(args))
    return ServeClient.from_address(_serve_address(args), timeout=timeout)


def _env_int(name: str, fallback: int) -> int:
    value = os.environ.get(name)
    if value is None or value == "":
        return fallback
    try:
        return int(value)
    except ValueError as exc:
        raise SpecError(f"{name} must be an integer, got {value!r}") from exc


def _env_float(name: str, fallback: Optional[float]) -> Optional[float]:
    value = os.environ.get(name)
    if value is None or value == "":
        return fallback
    try:
        return float(value)
    except ValueError as exc:
        raise SpecError(f"{name} must be a number, got {value!r}") from exc


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .spec import StudyPlan, StudyStore, Sweep, sweep_rows

    base = _sweep_base_spec(args)
    sweep = Sweep(base, _parse_axes(args.axis))
    plan = StudyPlan.from_sweep(sweep)
    if args.server is not None:
        client = _serve_client(args)
        results = client.run_plan(plan.specs, overrides=sweep.points())
        rows = sweep_rows(results)
        print(_render_sweep_rows(rows, args.format))
        if args.format == "table":
            cached = sum(1 for r in results if r.cached)
            failed = sum(1 for r in results if r.failed)
            print(
                f"{len(results)} points ({cached} cached"
                + (f", {failed} failed" if failed else "")
                + f") served by {_serve_address(args)}"
            )
            # Identical health footer to the local branch: served studies
            # carry their RunHealth over the wire.
            unhealthy = [
                r
                for r in results
                if r.study is not None
                and getattr(r.study, "health", None) is not None
                and not r.study.health.clean
            ]
            for r in unhealthy:
                print(
                    f"health [{r.spec.display_label}]: "
                    f"{r.study.health.describe()}"
                )
        return 1 if any(r.failed for r in results) else 0
    store = None if args.no_store else StudyStore(args.store)
    journal = args.journal
    if journal is None and args.resume:
        if store is None:
            raise SpecError("--resume needs --journal or an enabled store")
        journal = store.root / "sweep-journal.jsonl"
    results = plan.run(
        store=store,
        on_error=args.on_error,
        retries=args.retries,
        journal=journal,
        resume=args.resume,
        fuse=not args.no_fuse,
    )
    rows = sweep_rows(results)
    print(_render_sweep_rows(rows, args.format))
    if args.format == "table":
        cached = sum(1 for r in results if r.cached)
        failed = sum(1 for r in results if r.failed)
        dispatch = sum(r.dispatch_seconds for r in results)
        run_time = sum(r.run_seconds for r in results)
        where = "disabled" if store is None else str(store.root)
        print(
            f"{len(results)} points ({cached} cached"
            + (f", {failed} failed" if failed else "")
            + f"), simulation {run_time:.2f}s + dispatch "
            f"{dispatch * 1000:.0f}ms; store: {where}"
        )
        unhealthy = [
            r
            for r in results
            if r.study is not None
            and getattr(r.study, "health", None) is not None
            and not r.study.health.clean
        ]
        for r in unhealthy:
            print(f"health [{r.spec.display_label}]: {r.study.health.describe()}")
        if journal is not None:
            print(f"journal: {journal}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from .serve import ShardedStudyStore, SweepServer

    host = args.host or os.environ.get("REPRO_SERVE_HOST") or "127.0.0.1"
    port = args.port if args.port is not None else _env_int("REPRO_SERVE_PORT", 7421)
    workers = (
        args.workers
        if args.workers is not None
        else _env_int("REPRO_SERVE_WORKERS", 2)
    )
    store_root = (
        args.store_root or os.environ.get("REPRO_SERVE_STORE") or ".repro-store"
    )
    shards = (
        args.shards if args.shards is not None else _env_int("REPRO_SERVE_SHARDS", 2)
    )
    budget = args.store_budget
    if budget is None and os.environ.get("REPRO_STORE_BUDGET"):
        budget = _env_int("REPRO_STORE_BUDGET", 0)
    journal = args.journal or os.environ.get("REPRO_SERVE_JOURNAL") or None
    deadline = (
        args.deadline
        if args.deadline is not None
        else _env_float("REPRO_SERVE_DEADLINE", None)
    )
    requeues = (
        args.requeues
        if args.requeues is not None
        else _env_int("REPRO_SERVE_REQUEUES", 1)
    )
    store = ShardedStudyStore(
        store_root, shards=shards, virtual_nodes=args.virtual_nodes
    )

    async def _daemon() -> None:
        server = SweepServer(
            store,
            host=host,
            port=port,
            workers=workers,
            store_budget=budget,
            fuse=not args.no_fuse,
            journal=journal,
            deadline=deadline,
            requeues=requeues,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError, RuntimeError):
            # SIGTERM = graceful drain: refuse new work, finish and journal
            # the backlog, then exit 0.  (Unavailable on some platforms.)
            loop.add_signal_handler(
                signal.SIGTERM,
                lambda: asyncio.ensure_future(server.drain()),
            )
        bound_host, bound_port = server.address
        extras = ""
        if journal is not None:
            extras = f", journal @ {journal}"
            if server.stats.recovered:
                extras += f", recovered {server.stats.recovered} jobs"
        print(
            f"repro serve: listening on {bound_host}:{bound_port} "
            f"({workers} workers, {len(store.shards)} shards @ {store.root}"
            f"{extras})",
            flush=True,
        )
        await server.serve_until_shutdown()

    try:
        asyncio.run(_daemon())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .spec import Sweep, sweep_rows

    base = _sweep_base_spec(args)
    sweep = Sweep(base, _parse_axes(args.axis))
    specs = sweep.expand()
    client = _serve_client(args)
    if args.no_wait:
        outcomes = client.submit(specs, wait=False, priority=args.priority)
        if args.format == "json":
            print(
                json.dumps(
                    [
                        {"hash": o.hash, "status": o.status, "label": o.label}
                        for o in outcomes
                    ],
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            for outcome in outcomes:
                print(f"{outcome.hash}  {outcome.status}  {outcome.label}")
        return 0
    results = client.run_plan(specs, overrides=sweep.points(), priority=args.priority)
    rows = sweep_rows(results)
    print(_render_sweep_rows(rows, args.format))
    if args.format == "table":
        cached = sum(1 for r in results if r.cached)
        failed = sum(1 for r in results if r.failed)
        print(
            f"{len(results)} points ({cached} cached"
            + (f", {failed} failed" if failed else "")
            + f") served by {_serve_address(args)}"
        )
    return 1 if any(r.failed for r in results) else 0


def _cmd_client(args: argparse.Namespace) -> int:
    client = _serve_client(args)
    if args.action == "stats":
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    if args.action == "shutdown":
        client.shutdown()
        print("shutdown requested")
        return 0
    if args.action == "status":
        rows = client.status(args.hashes or None)
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    # result
    if not args.hashes:
        raise SpecError("repro client result needs at least one spec hash")
    outcomes = client.results(args.hashes, wait=True)
    payload = []
    for outcome in outcomes:
        row: Dict[str, Any] = {
            "hash": outcome.hash,
            "status": outcome.status,
            "cached": outcome.cached,
            "attempts": outcome.attempts,
            "run_seconds": outcome.run_seconds,
            "label": outcome.label,
        }
        if outcome.error:
            row["error"] = outcome.error
        if outcome.study is not None:
            row["summary"] = outcome.study.summary_row()
        payload.append(row)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if all(o.ok for o in outcomes) else 1


def _cmd_store(args: argparse.Namespace) -> int:
    from .serve import ShardedStudyStore

    store = ShardedStudyStore(args.root, shards=None, virtual_nodes=None)
    if args.action == "stats":
        report = store.stats()
    elif args.action == "evict":
        if args.budget is None:
            raise SpecError("repro store evict needs --budget BYTES")
        report = store.evict(args.budget)
    elif args.action == "scrub":
        report = store.scrub()
    else:  # rebalance
        report = store.rebalance(
            shards=args.shards, virtual_nodes=args.virtual_nodes
        )
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    if args.action == "stats":
        print(f"store {report['root']}: {report['entries']} entries, "
              f"{report['bytes']:,} bytes, {report['virtual_nodes']} vnodes/shard")
        for name, shard in sorted(report["shards"].items()):
            corrupt = (
                f", {shard['corrupt']} corrupt" if shard["corrupt"] else ""
            )
            print(
                f"  {name}: {shard['entries']} entries, "
                f"{shard['bytes']:,} bytes{corrupt}"
            )
    elif args.action == "evict":
        over = report["over_budget_shards"]
        print(
            f"evicted {len(report['evicted'])} entries "
            f"({report['freed_bytes']:,} bytes) to fit "
            f"{report['budget_bytes']:,} bytes/shard"
            + (f"; still over budget: {', '.join(over)}" if over else "")
        )
    elif args.action == "scrub":
        lost = report["lost_shards"]
        print(
            f"scrubbed {report['scanned']} entries: {report['ok']} verified, "
            f"{report['legacy']} legacy (no checksum), "
            f"{len(report['quarantined'])} quarantined"
            + (f"; lost shards: {', '.join(lost)}" if lost else "")
        )
        for digest in report["quarantined"]:
            print(f"  quarantined {digest}")
    else:
        print(
            f"rebalanced to {len(report['shards'])} shards "
            f"({report['virtual_nodes']} vnodes): {report['moved']} moved, "
            f"{report['kept']} kept"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        collect_bench,
        compare_bench,
        default_bench_path,
        load_bench,
        render_comparison,
        write_bench,
    )

    if args.compare is not None:
        baseline = load_bench(args.compare[0])
        current = load_bench(args.compare[1])
        regressions = compare_bench(baseline, current, threshold=args.threshold)
        print(render_comparison(regressions))
        return 1 if regressions else 0

    if args.profile is not None:
        from .bench import profile_workload

        backend = args.backends[0] if args.backends else None
        print(
            profile_workload(
                args.profile, scale=args.scale, seed=args.seed, backend=backend
            ),
            end="",
        )
        return 0

    data = collect_bench(
        scale=args.scale,
        seed=args.seed,
        backends=args.backends,
        include_experiments=not args.no_experiments,
        repeats=args.repeats,
    )
    path = args.output or default_bench_path()
    path = write_bench(data, path)
    micro = [b for b in data["benchmarks"] if b["kind"] == "micro"]
    for record in micro:
        note = ""
        if "speedup_vs_reference" in record:
            note = f"  ({record['speedup_vs_reference']:.1f}x vs reference"
            if "speedup_vs_vectorized" in record:
                note += f", {record['speedup_vs_vectorized']:.1f}x vs vectorized"
            note += ")"
        if "result_bytes_per_slot" in record:
            note += (
                f"  [{record['result_bytes_per_slot']:.0f} B/slot retained, "
                f"peak {record['peak_bytes_per_slot']:.0f}"
            )
            if "legacy_list_bytes_per_slot" in record:
                note += f", legacy lists {record['legacy_list_bytes_per_slot']:.0f}"
            note += "]"
        print(
            f"{record['id']} [{record['backend']}]: "
            f"{record['slots_per_second']:,.0f} slots/s{note}"
        )
    print(f"wrote {path} ({len(data['benchmarks'])} benchmarks)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
