"""Command-line interface.

Examples
--------

Run a single experiment at the quick scale and print its tables::

    python -m repro.cli run E3 --trials 3

Run every experiment and (re)generate EXPERIMENTS.md::

    python -m repro.cli report --scale full --output EXPERIMENTS.md

Simulate one workload interactively::

    python -m repro.cli simulate --arrivals 128 --horizon 16384 --jam 0.25
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import quick_run
from .errors import ReproError
from .experiments import ExperimentConfig, all_experiments, get_experiment
from .experiments.report import run_all, write_report
from .sim.backends import available_backends

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-contention",
        description=(
            "Reproduction of 'Tight Trade-off in Contention Resolution without "
            "Collision Detection' (PODC 2021)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment and print its report")
    run_parser.add_argument("experiment_id", help="experiment id, e.g. E3")
    _add_config_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    report_parser = subparsers.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    report_parser.add_argument("--output", default="EXPERIMENTS.md")
    report_parser.add_argument(
        "--only", nargs="*", default=None, help="restrict to these experiment ids"
    )
    _add_config_arguments(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run the paper's algorithm once on a simple workload"
    )
    simulate_parser.add_argument("--arrivals", type=int, default=64)
    simulate_parser.add_argument("--horizon", type=int, default=8192)
    simulate_parser.add_argument("--jam", type=float, default=0.0)
    simulate_parser.add_argument("--seed", type=int, default=None)
    _add_backend_argument(simulate_parser)
    simulate_parser.set_defaults(func=_cmd_simulate)

    return parser


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="auto",
        help="simulation slot kernel (auto picks vectorized when eligible)",
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=20210219)
    parser.add_argument(
        "--scale", choices=["smoke", "quick", "full"], default="quick"
    )
    _add_backend_argument(parser)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="trial worker processes (fork-based; 1 = serial)",
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        trials=args.trials,
        seed=args.seed,
        scale=args.scale,
        backend=args.backend,
        workers=args.workers,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    for experiment_id in all_experiments():
        experiment = get_experiment(experiment_id)
        print(f"{experiment_id}: {experiment.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    experiment = get_experiment(args.experiment_id)
    result = experiment.run(config)
    print(result.render_text())
    return 0 if result.consistent_with_paper in (True, None) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    results = run_all(config, experiment_ids=args.only)
    path = write_report(args.output, results, config)
    print(f"wrote {path} ({len(results)} experiments)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    result = quick_run(
        arrivals=args.arrivals,
        horizon=args.horizon,
        jam_fraction=args.jam,
        seed=args.seed,
        backend=args.backend,
    )
    print(result.describe())
    print(f"classical throughput at horizon: {result.classical_throughput():.3f}")
    print(f"mean latency: {result.mean_latency():.1f} slots")
    print(
        f"backend: {result.backend} "
        f"({result.slots_per_second:,.0f} slots/s, "
        f"{result.wall_time_seconds * 1000:.1f} ms)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
