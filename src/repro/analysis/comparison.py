"""Protocol comparison helpers used by the baseline-showdown experiment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..errors import AnalysisError
from ..sim.runner import TrialStudy
from .tables import Table

__all__ = ["ComparisonRow", "compare_protocols"]


@dataclass(frozen=True)
class ComparisonRow:
    """Aggregate performance of one protocol under one workload."""

    protocol: str
    workload: str
    trials: int
    mean_successes: float
    mean_unfinished: float
    mean_latency: float
    p95_latency: float
    mean_broadcasts_per_node: float

    def as_tuple(self) -> tuple:
        return (
            self.protocol,
            self.workload,
            self.trials,
            self.mean_successes,
            self.mean_unfinished,
            self.mean_latency,
            self.p95_latency,
            self.mean_broadcasts_per_node,
        )


def _mean(values: Sequence[float]) -> float:
    values = [v for v in values if v == v]  # drop NaN
    return sum(values) / len(values) if values else float("nan")


def compare_protocols(
    studies: Dict[str, TrialStudy],
    workload: str = "",
) -> List[ComparisonRow]:
    """Build one comparison row per protocol from its trial study."""
    if not studies:
        raise AnalysisError("no studies to compare")
    rows: List[ComparisonRow] = []
    for protocol, study in studies.items():
        latencies: List[float] = []
        broadcasts: List[float] = []
        for result in study:
            latencies.extend(float(v) for v in result.latencies())
            counts = result.broadcast_counts()
            if counts:
                broadcasts.append(sum(counts) / len(counts))
        latencies.sort()
        p95 = (
            latencies[int(0.95 * (len(latencies) - 1))] if latencies else float("nan")
        )
        rows.append(
            ComparisonRow(
                protocol=protocol,
                workload=workload or study.label,
                trials=study.trials,
                mean_successes=study.mean(lambda r: r.total_successes),
                mean_unfinished=study.mean(lambda r: r.unfinished_nodes),
                mean_latency=_mean(latencies),
                p95_latency=float(p95),
                mean_broadcasts_per_node=_mean(broadcasts),
            )
        )
    return rows


def comparison_table(rows: Sequence[ComparisonRow], title: str) -> Table:
    """Render comparison rows as a :class:`~repro.analysis.tables.Table`."""
    table = Table(
        title=title,
        columns=[
            "protocol",
            "workload",
            "trials",
            "successes",
            "unfinished",
            "mean latency",
            "p95 latency",
            "broadcasts/node",
        ],
    )
    for row in rows:
        table.add_row(*row.as_tuple())
    return table
