"""Shape fitting: which asymptotic law does a measured series follow?

The paper's claims are asymptotic (Θ(t / log t) successes, Θ(log t) active-slot
overhead per arrival, ω(n) completion time, ...).  To compare measured series
against such laws we fit a small family of one-parameter models by least
squares on the scale factor and report the relative error of each model; the
best-fitting model is the measured "shape".

Models are functions of ``x`` with a single multiplicative constant ``c``:

* ``linear``        — ``c · x``
* ``x_over_log``    — ``c · x / log₂ x``
* ``x_log``         — ``c · x · log₂ x``
* ``log_squared``   — ``c · log₂² x``
* ``log``           — ``c · log₂ x``
* ``constant``      — ``c``
* ``sqrt``          — ``c · sqrt(x)``
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..errors import AnalysisError

__all__ = ["FitResult", "SHAPE_MODELS", "fit_shape", "growth_exponent"]


def _safe_log2(x: np.ndarray) -> np.ndarray:
    return np.log2(np.maximum(x, 2.0))


SHAPE_MODELS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "linear": lambda x: x,
    "x_over_log": lambda x: x / _safe_log2(x),
    "x_log": lambda x: x * _safe_log2(x),
    "log_squared": lambda x: _safe_log2(x) ** 2,
    "log": lambda x: _safe_log2(x),
    "constant": lambda x: np.ones_like(x),
    "sqrt": lambda x: np.sqrt(x),
}


@dataclass(frozen=True)
class FitResult:
    """Result of fitting one shape model to a series."""

    model: str
    scale: float
    relative_error: float

    def predict(self, x: float) -> float:
        basis = SHAPE_MODELS[self.model](np.asarray([float(x)]))
        return float(self.scale * basis[0])


def _fit_single(
    xs: np.ndarray, ys: np.ndarray, basis: Callable[[np.ndarray], np.ndarray]
) -> FitResult:
    b = basis(xs)
    denominator = float(np.dot(b, b))
    if denominator == 0.0:
        raise AnalysisError("degenerate basis in shape fit")
    scale = float(np.dot(b, ys) / denominator)
    prediction = scale * b
    scale_reference = float(np.mean(np.abs(ys))) or 1.0
    relative_error = float(np.mean(np.abs(prediction - ys)) / scale_reference)
    return FitResult(model="", scale=scale, relative_error=relative_error)


def fit_shape(
    xs: Sequence[float],
    ys: Sequence[float],
    models: Optional[Sequence[str]] = None,
) -> Dict[str, FitResult]:
    """Fit every requested model; return results keyed by model name.

    The caller typically compares ``results["x_over_log"].relative_error``
    against ``results["linear"].relative_error`` to decide which law the data
    follows.
    """
    xs_arr = np.asarray(list(xs), dtype=float)
    ys_arr = np.asarray(list(ys), dtype=float)
    if xs_arr.size != ys_arr.size or xs_arr.size < 2:
        raise AnalysisError("fit_shape needs at least two aligned points")
    names = list(models) if models else list(SHAPE_MODELS)
    results: Dict[str, FitResult] = {}
    for name in names:
        if name not in SHAPE_MODELS:
            raise AnalysisError(f"unknown shape model {name!r}")
        fit = _fit_single(xs_arr, ys_arr, SHAPE_MODELS[name])
        results[name] = FitResult(
            model=name, scale=fit.scale, relative_error=fit.relative_error
        )
    return results


def best_fit(results: Dict[str, FitResult]) -> FitResult:
    """The model with the smallest relative error."""
    if not results:
        raise AnalysisError("no fit results to choose from")
    return min(results.values(), key=lambda r: r.relative_error)


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x (the empirical growth exponent).

    An exponent near 1 indicates linear growth, near 0 constant, and values in
    between indicate sub-linear growth; it complements :func:`fit_shape` when
    distinguishing e.g. ``Θ(n)`` from ``Θ(n log n)`` is not required.
    """
    xs_arr = np.asarray(list(xs), dtype=float)
    ys_arr = np.asarray(list(ys), dtype=float)
    if xs_arr.size != ys_arr.size or xs_arr.size < 2:
        raise AnalysisError("growth_exponent needs at least two aligned points")
    if np.any(xs_arr <= 0) or np.any(ys_arr <= 0):
        raise AnalysisError("growth_exponent requires positive data")
    log_x = np.log(xs_arr)
    log_y = np.log(ys_arr)
    slope, _intercept = np.polyfit(log_x, log_y, 1)
    return float(slope)
