"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import AnalysisError

__all__ = ["Table", "format_table"]


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0.0):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A small column-oriented table with a title, rendered as aligned text."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    precision: int = 3

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise AnalysisError(
                f"row has {len(values)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def add_dict_row(self, row: Dict[str, Any]) -> None:
        self.add_row(*[row.get(column, "") for column in self.columns])

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.precision)

    def to_markdown(self) -> str:
        """Markdown rendering used when writing EXPERIMENTS.md."""
        header = "| " + " | ".join(self.columns) + " |"
        divider = "|" + "|".join(["---"] * len(self.columns)) + "|"
        lines = [header, divider]
        for row in self.rows:
            cells = [_format_cell(value, self.precision) for value in row]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 3,
) -> str:
    """Render rows as a fixed-width text table with a title line."""
    rendered_rows = [
        [_format_cell(value, precision) for value in row] for row in rows
    ]
    widths = [len(str(column)) for column in columns]
    for row in rendered_rows:
        if len(row) != len(columns):
            raise AnalysisError("row width does not match column count")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    lines = [title, header, separator]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
