"""Analysis utilities: aggregation, shape fitting, comparison and tables."""

from .statistics import (
    SummaryStatistics,
    bootstrap_confidence_interval,
    empirical_probability,
    summarize,
)
from .fitting import FitResult, fit_shape, growth_exponent, SHAPE_MODELS
from .tables import Table, format_table
from .comparison import ComparisonRow, compare_protocols

__all__ = [
    "SummaryStatistics",
    "summarize",
    "bootstrap_confidence_interval",
    "empirical_probability",
    "FitResult",
    "fit_shape",
    "growth_exponent",
    "SHAPE_MODELS",
    "Table",
    "format_table",
    "ComparisonRow",
    "compare_protocols",
]
