"""Basic statistics over trial metrics: summaries, bootstrap CIs, event frequencies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "SummaryStatistics",
    "summarize",
    "bootstrap_confidence_interval",
    "empirical_probability",
]


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean/median/spread of a sample of scalar observations."""

    count: int
    mean: float
    std: float
    median: float
    minimum: float
    maximum: float
    p05: float
    p95: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "p05": self.p05,
            "p95": self.p95,
        }


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Summarize a non-empty sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot summarize an empty sample")
    return SummaryStatistics(
        count=int(arr.size),
        mean=float(np.mean(arr)),
        std=float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0,
        median=float(np.median(arr)),
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
        p05=float(np.quantile(arr, 0.05)),
        p95=float(np.quantile(arr, 0.95)),
    )


def bootstrap_confidence_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: Optional[int] = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the sample mean."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError("confidence must be in (0, 1)")
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng(seed)
    means = np.empty(resamples)
    for i in range(resamples):
        sample = rng.choice(arr, size=arr.size, replace=True)
        means[i] = np.mean(sample)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))


def empirical_probability(successes: int, trials: int) -> float:
    """Event frequency with a defensive check, used for w.h.p.-style claims."""
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    if successes < 0 or successes > trials:
        raise AnalysisError("successes must be within [0, trials]")
    return successes / trials
