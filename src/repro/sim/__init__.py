"""Slot-synchronous discrete-event simulator for the multiple-access channel."""

from .backends import (
    BatchedStudyKernel,
    KernelContext,
    ReferenceKernel,
    SlotKernel,
    VectorizedKernel,
    available_backends,
    available_study_backends,
)
from .engine import Simulator, SimulatorConfig
from .health import HealthEvent, RunHealth
from .node import Node
from .results import PrefixColumn, PrefixCounters, SimulationResult
from .runner import SupervisorPolicy, TrialRunner, TrialStudy, run_trials

__all__ = [
    "Simulator",
    "SimulatorConfig",
    "Node",
    "PrefixColumn",
    "PrefixCounters",
    "SimulationResult",
    "HealthEvent",
    "RunHealth",
    "SupervisorPolicy",
    "TrialRunner",
    "TrialStudy",
    "run_trials",
    "SlotKernel",
    "KernelContext",
    "ReferenceKernel",
    "VectorizedKernel",
    "BatchedStudyKernel",
    "available_backends",
    "available_study_backends",
]
