"""Shared machinery of the study-level kernels (batched-study and lockstep).

Both study kernels execute all trials of a (protocol, adversary, config)
triple in one pass and must reproduce the serial per-trial reference path
seed for seed.  The pieces they share live here:

* :class:`SeedPlan` — read-only arithmetic derivation of every stream the
  serial path would spawn (the adversary generator and each node's
  generator, per trial), without advancing any ``SeedSequence``;
* :func:`compile_adversary_schedules` — per-trial adversary setup +
  whole-horizon precompilation with the pooled bulk-seeding fast path;
* :func:`emit_study_results` — the per-trial
  :class:`~repro.sim.results.SimulationResult` assembly from shared study
  matrices (zero-copy prefix views);
* :func:`study_early_stops` / :func:`iter_blocks` — early-stop resolution
  and block splitting helpers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...adversary.base import Adversary, ComposedAdversary
from ...errors import ConfigurationError
from ...rng import (
    ReusableGenerator,
    SeedTree,
    TrialSeedBatch,
    assemble_seed_words,
    bulk_bounded_pairs63,
    bulk_seed_states,
    fast_bounded_pairs_ok,
    fast_seed_path_ok,
    pcg64_state_dict,
    seed_states_for_entropies,
)
from ...types import NodeStats, SimulationSummary
from ..results import PrefixCounters, SimulationResult

__all__ = [
    "SeedPlan",
    "StudyProbe",
    "compile_adversary_schedules",
    "emit_study_results",
    "iter_blocks",
    "study_early_stops",
    "MAX_BLOCK_ELEMENTS",
]

#: Element cap (rows × columns) for one processing block of the batched
#: study kernel.  Studies larger than this are split into trial blocks; a
#: single trial above the cap makes the study ineligible (the per-trial path
#: has its own replay fallback).
MAX_BLOCK_ELEMENTS = 1 << 24


class StudyProbe:
    """Memoized eligibility probe shared by every rung of the study ladder.

    Each study kernel's ``unsupported_reason`` needs a throwaway protocol
    instance (and its lockstep program / compiled tables) plus a throwaway
    adversary instance to answer eligibility questions.  Constructing those
    per rung repeats the same factory calls three times per dispatch; the
    runner builds one probe per ``run_trials`` dispatch instead and passes
    it down.  Probe instances are never handed a generator and never run,
    so sharing them across rungs cannot perturb any stream.
    """

    def __init__(self, protocol_factory, adversary_factory) -> None:
        self._protocol_factory = protocol_factory
        self._adversary_factory = adversary_factory
        self._protocol = None
        self._program = None
        self._program_known = False
        self._program_taken = False
        self._adversary = None
        self._peak: Dict[int, Optional[int]] = {}

    @property
    def protocol(self):
        """A memoized probe protocol instance (never given a generator)."""
        if self._protocol is None:
            self._protocol = self._protocol_factory()
        return self._protocol

    @property
    def program(self):
        """The probe protocol's lockstep program (memoized; may be ``None``)."""
        if not self._program_known:
            self._program = self.protocol.lockstep_program()
            self._program_known = True
        return self._program

    def take_program(self):
        """A never-bound lockstep program for an execution block.

        The first call hands out the probe's own (still unbound) program so
        single-block studies construct exactly one; later calls build fresh
        programs, as each block needs its own bound state.
        """
        program = self.program
        if program is not None and not self._program_taken:
            self._program_taken = True
            return program
        return self._protocol_factory().lockstep_program()

    @property
    def adversary(self):
        """A memoized probe adversary instance (type/flag checks only)."""
        if self._adversary is None:
            self._adversary = self._adversary_factory()
        return self._adversary

    def peak_arrivals(self, horizon: int) -> Optional[int]:
        """Peak single-slot arrival count of a throwaway adversary instance.

        Probes with a fixed-seed generator — only the schedule's *shape*
        matters, and the probe never touches any run's seed streams.  Only
        composed adversaries with non-adaptive arrivals are probed: their
        arrival strategies precompile in vectorized form, whereas a bespoke
        adversary may fall back to the per-slot Python loop — more expensive
        than the decision the probe informs.  Jamming is never probed (it
        cannot change the population, and precompiling it would burn a
        horizon of throwaway randomness per study).
        """
        if horizon in self._peak:
            return self._peak[horizon]
        spec = getattr(self._adversary_factory, "spec", None)
        if spec is not None:
            # Spec-built factories carry their AdversarySpec; the probe is a
            # pure function of (spec, horizon), so share it process-wide.
            from ..artifacts import cached_artifact, canonical_key

            key = ("peak-arrivals", canonical_key(spec.to_dict()), horizon)
            peak = cached_artifact(key, lambda: self._probe_peak(horizon))
        else:
            peak = self._probe_peak(horizon)
        self._peak[horizon] = peak
        return peak

    def _probe_peak(self, horizon: int) -> Optional[int]:
        peak: Optional[int] = None
        probe = self._adversary_factory()
        if type(probe) is ComposedAdversary and not probe.arrivals.adaptive:
            try:
                probe.setup(np.random.default_rng(0), horizon)
                arrivals = probe.arrivals.precompile(horizon)
            except Exception:
                arrivals = None
            if arrivals is not None:
                peak = int(arrivals.max(initial=0))
        return peak


def iter_blocks(nodes_per_trial: np.ndarray, horizon: int):
    """Split trials into contiguous blocks bounded by the element cap."""
    trials = len(nodes_per_trial)
    lo = 0
    while lo < trials:
        hi = lo
        elements = 0
        while hi < trials:
            trial_elements = int(nodes_per_trial[hi]) * (horizon + 1)
            if hi > lo and elements + trial_elements > MAX_BLOCK_ELEMENTS:
                break
            elements += trial_elements
            hi += 1
        yield lo, hi
        lo = hi


class SeedPlan:
    """Read-only derivation of every stream the serial path would spawn.

    The serial path derives, per trial root sequence with spawn key ``K``:
    the adversary generator at ``K + (base, 0)`` and node ``i``'s generator at
    ``K + (base + 1, i, 0)`` (``base`` being the root's spawned-children
    count, normally 0).  This plan reproduces those spawn keys arithmetically
    so the trees themselves are never advanced.
    """

    def __init__(
        self,
        source,  # List[SeedTree] or TrialSeedBatch
        trials: int,
        entropy: Optional[int],
        keys: Optional[np.ndarray],
        bases: Optional[np.ndarray],
    ) -> None:
        self._source = source
        self._trials = trials
        self._entropy = entropy
        self._keys = keys
        self._bases = bases

    @property
    def trials(self) -> int:
        return self._trials

    @property
    def fast(self) -> bool:
        return self._keys is not None

    def _tree(self, index: int) -> SeedTree:
        trees = (
            self._source.trees
            if isinstance(self._source, TrialSeedBatch)
            else self._source
        )
        return trees[index]

    @classmethod
    def build(cls, source) -> "SeedPlan":
        trials = len(source)
        if not fast_seed_path_ok() or not trials:
            return cls(source, trials, None, None, None)
        if isinstance(source, TrialSeedBatch):
            # Children of one root: keys follow arithmetically without ever
            # materializing the per-trial SeedSequence objects.
            entropy, root_key, first = source.spawn_descriptor()
            if not isinstance(entropy, int):
                return cls(source, trials, None, None, None)
            key_matrix = np.empty((trials, len(root_key) + 1), dtype=np.uint64)
            key_matrix[:, : len(root_key)] = np.asarray(root_key, dtype=np.uint64)
            key_matrix[:, -1] = first + np.arange(trials, dtype=np.uint64)
            bases = np.zeros(trials, dtype=np.uint64)
        else:
            entropies = set()
            keys = []
            base_list = []
            for tree in source:
                sequence = tree.sequence
                if not isinstance(sequence.entropy, int):
                    return cls(source, trials, None, None, None)
                entropies.add(sequence.entropy)
                keys.append(sequence.spawn_key)
                base_list.append(sequence.n_children_spawned)
            lengths = {len(key) for key in keys}
            if len(entropies) != 1 or len(lengths) != 1:
                return cls(source, trials, None, None, None)
            entropy = entropies.pop()
            key_matrix = np.asarray(keys, dtype=np.uint64)
            bases = np.asarray(base_list, dtype=np.uint64)
        if key_matrix.size and key_matrix.max() > 0xFFFFFFFF:
            return cls(source, trials, None, None, None)
        return cls(source, trials, entropy, key_matrix, bases)

    def restrict(self, lo: int, hi: int) -> "SeedPlan":
        """A plan over the contiguous trial range ``[lo, hi)``.

        Fast-path plans only (the sliced plan cannot resolve slow-path tree
        lookups, which the fast path never needs).  Used by the lockstep
        kernel to process oversized studies in bounded trial blocks.
        """
        if not self.fast:
            raise ValueError("restrict() requires a fast seed plan")
        return SeedPlan(
            None, hi - lo, self._entropy, self._keys[lo:hi], self._bases[lo:hi]
        )

    # -- fast-path state derivation ---------------------------------------

    def adversary_generator_states(self) -> Optional[np.ndarray]:
        """``generate_state`` words of each trial's adversary generator."""
        if not self.fast:
            return None
        keys = np.concatenate(
            (
                self._keys,
                self._bases[:, None],
                np.zeros((self.trials, 1), dtype=np.uint64),
            ),
            axis=1,
        )
        words = assemble_seed_words(self._entropy, keys)
        return None if words is None else bulk_seed_states(words)

    def node_generator_states(
        self,
        trial_indices: range,
        nodes_per_trial: np.ndarray,
        total_rows: int,
    ) -> Optional[np.ndarray]:
        """State words of every node generator in the block, in row order."""
        if not self.fast or total_rows == 0:
            return None if not self.fast else np.zeros((0, 4), dtype=np.uint64)
        lo = trial_indices.start
        hi = trial_indices.stop
        repeats = nodes_per_trial.astype(np.int64)
        keys = np.empty(
            (total_rows, self._keys.shape[1] + 3), dtype=np.uint64
        )
        keys[:, : self._keys.shape[1]] = np.repeat(
            self._keys[lo:hi], repeats, axis=0
        )
        keys[:, -3] = np.repeat(self._bases[lo:hi] + 1, repeats)
        keys[:, -2] = np.concatenate(
            [np.arange(n, dtype=np.uint64) for n in repeats]
        )
        keys[:, -1] = 0
        words = assemble_seed_words(self._entropy, keys)
        return None if words is None else bulk_seed_states(words)

    def node_states_pairs(
        self, trial_ids: np.ndarray, node_ids: np.ndarray
    ) -> Optional[np.ndarray]:
        """State words for arbitrary (trial, node-index) pairs, in pair order.

        The incremental form the lockstep kernel needs when arrivals are
        revealed slot by slot rather than known up front.
        """
        if not self.fast:
            return None
        count = len(trial_ids)
        if count == 0:
            return np.zeros((0, 4), dtype=np.uint64)
        keys = np.empty((count, self._keys.shape[1] + 3), dtype=np.uint64)
        keys[:, : self._keys.shape[1]] = self._keys[trial_ids]
        keys[:, -3] = self._bases[trial_ids] + 1
        keys[:, -2] = np.asarray(node_ids, dtype=np.uint64)
        keys[:, -1] = 0
        words = assemble_seed_words(self._entropy, keys)
        return None if words is None else bulk_seed_states(words)

    # -- slow-path fallbacks ----------------------------------------------

    def fresh_generator(
        self, states: Optional[np.ndarray], index: int
    ) -> np.random.Generator:
        """A standalone generator for this trial's adversary stream.

        Fresh object (never pooled), so adversaries may retain it safely.
        """
        if states is not None:
            bit_generator = np.random.PCG64(0)
            bit_generator.state = pcg64_state_dict(states[index])
            return np.random.Generator(bit_generator)
        sequence = self._tree(index).sequence
        base = sequence.n_children_spawned
        child = np.random.SeedSequence(
            entropy=sequence.entropy,
            spawn_key=tuple(sequence.spawn_key) + (base, 0),
        )
        return np.random.default_rng(child)

    def slow_node_generators(
        self, trial_indices: range, nodes_per_trial: np.ndarray
    ):
        """Per-node generators via real SeedSequence objects (fallback)."""
        for offset, index in enumerate(trial_indices):
            sequence = self._tree(index).sequence
            base = sequence.n_children_spawned
            key = tuple(sequence.spawn_key)
            for i in range(int(nodes_per_trial[offset])):
                child = np.random.SeedSequence(
                    entropy=sequence.entropy,
                    spawn_key=key + (base + 1, i, 0),
                )
                yield np.random.default_rng(child)


def compile_adversary_schedules(
    adversary_factory,
    config,
    plan: SeedPlan,
    horizon: int,
) -> Optional[Tuple[List[Adversary], np.ndarray, np.ndarray]]:
    """Set up and precompile one adversary per trial.

    Consumes exactly the randomness the serial path would: one generator
    spawned from each trial's adversary tree, then whatever the adversary's
    ``setup``/``precompile`` draw from it.  Returns ``None`` when any trial's
    adversary turns out not to be precompilable.
    """
    trials = plan.trials
    adversary_states = plan.adversary_generator_states()
    outer_pool = ReusableGenerator()
    arrivals_pool = ReusableGenerator()
    jamming_pool = ReusableGenerator()

    # The two per-trial strategy seeds (ComposedAdversary.strategy_seeds)
    # are two bounded draws from each trial's adversary generator; with
    # the verified replication they are derived for every trial in one
    # vectorized pass instead of reseeding a generator per trial.
    seed_pairs = None
    if adversary_states is not None and fast_bounded_pairs_ok():
        seed_pairs = bulk_bounded_pairs63(adversary_states).tolist()

    adversaries: List[Adversary] = []
    pending: List[Tuple[int, Adversary]] = []
    strategy_seeds: List[int] = []
    arrivals_all = np.zeros((trials, horizon + 1), dtype=np.int64)
    jammed_all = np.zeros((trials, horizon + 1), dtype=bool)

    for index in range(trials):
        adversary = adversary_factory()
        if not adversary.precompilable:
            return None
        adversaries.append(adversary)
        pooled = (
            adversary_states is not None
            and type(adversary) is ComposedAdversary
            and adversary.arrivals.transient_rng
            and adversary.jamming.transient_rng
        )
        if pooled:
            if seed_pairs is not None:
                strategy_seeds.extend(seed_pairs[index])
            else:
                rng = outer_pool.reseed(adversary_states[index])
                strategy_seeds.extend(adversary.strategy_seeds(rng))
            pending.append((index, adversary))
        else:
            rng = plan.fresh_generator(adversary_states, index)
            adversary.setup(rng, horizon)
            schedule = adversary.precompile(horizon)
            if schedule is None:
                return None
            arrivals_all[index] = schedule.arrivals
            jammed_all[index] = schedule.jammed

    if pending:
        states = seed_states_for_entropies(strategy_seeds)
        for slot, (index, adversary) in enumerate(pending):
            # A strategy that never draws keeps the pool's stale stream;
            # its seed was still consumed from the adversary generator,
            # exactly as in the serial path.
            arrivals_rng = (
                arrivals_pool.reseed(states[2 * slot])
                if adversary.arrivals.consumes_rng
                else arrivals_pool.generator
            )
            jamming_rng = (
                jamming_pool.reseed(states[2 * slot + 1])
                if adversary.jamming.consumes_rng
                else jamming_pool.generator
            )
            adversary.arrivals.setup(arrivals_rng, horizon)
            adversary.jamming.setup(jamming_rng, horizon)
            schedule = adversary.precompile(horizon)
            if schedule is None:
                return None
            arrivals_all[index] = schedule.arrivals
            jammed_all[index] = schedule.jammed

    cum = np.cumsum(arrivals_all, axis=1)
    over_trials, over_slots = np.nonzero(cum > config.max_nodes)
    if over_trials.size:
        # nonzero returns row-major order, so index 0 is the first
        # violating trial's first violating slot — the same slot the
        # serial run of that trial would have raised on.
        raise ConfigurationError(
            f"adversary exceeded max_nodes={config.max_nodes} "
            f"at slot {int(over_slots[0])}"
        )
    return adversaries, arrivals_all, jammed_all


def study_early_stops(
    config,
    adversaries: List[Adversary],
    cum_arrivals: np.ndarray,
    prefix_successes: np.ndarray,
    horizon: int,
) -> np.ndarray:
    """Per-trial stop slots under ``stop_when_drained`` (else the horizon)."""
    simulated = np.full(len(adversaries), horizon, dtype=np.int64)
    if not config.stop_when_drained:
        return simulated
    occupancy_after = cum_arrivals - prefix_successes
    for b, adversary in enumerate(adversaries):
        stop_candidates = np.nonzero(
            (occupancy_after[b] == 0) & (cum_arrivals[b] > 0)
        )[0]
        for t in stop_candidates:
            t = int(t)
            if t >= 1 and adversary.arrivals_exhausted(t):
                simulated[b] = t
                break
    return simulated


def emit_study_results(
    adversary_names: List[str],
    nodes_per_trial: np.ndarray,
    row_starts: np.ndarray,
    arrival_list: List[int],
    success_list: List[int],
    finished_list: List[bool],
    bc_list: List[int],
    simulated: np.ndarray,
    cum_arrivals: np.ndarray,
    prefix: np.ndarray,
    silence_at: np.ndarray,
    protocol_name: str,
    backend_name: str,
) -> List[SimulationResult]:
    """Assemble per-trial results from shared study matrices.

    ``prefix`` stacks the cumulative (successes, jammed, active) planes; the
    per-trial counters handed out are zero-copy row views into it and into
    ``cum_arrivals``, so retention equals the columnar study data.
    """
    prefix_succ, prefix_jam, prefix_act = prefix
    trial_axis = np.arange(len(adversary_names))
    at_sim = lambda matrix: matrix[trial_axis, simulated].tolist()  # noqa: E731
    succ_at = at_sim(prefix_succ)
    jam_at = at_sim(prefix_jam)
    sil_at = silence_at.tolist()
    act_at = at_sim(prefix_act)
    arr_at = at_sim(cum_arrivals)
    sim_list = simulated.tolist()
    start_list = row_starts.tolist()
    results: List[SimulationResult] = []
    for b, adversary_name in enumerate(adversary_names):
        sim = sim_list[b]
        lo, hi = start_list[b], start_list[b + 1]
        successes = succ_at[b]
        silences = sil_at[b]
        node_stats: Dict[int, NodeStats] = {}
        total_broadcasts = 0
        for row in range(lo, hi):
            arrival = arrival_list[row]
            if arrival > sim:
                continue
            done = finished_list[row]
            count = bc_list[row]
            total_broadcasts += count
            node_id = row - lo
            node_stats[node_id] = NodeStats(
                node_id=node_id,
                arrival_slot=arrival,
                success_slot=success_list[row] if done else None,
                broadcast_count=count,
            )
        summary = SimulationSummary(
            total_slots=sim,
            active_slots=act_at[b],
            successes=successes,
            collisions=sim - successes - silences,
            silent_slots=silences,
            jammed_slots=jam_at[b],
            arrivals=arr_at[b],
            total_broadcasts=total_broadcasts,
        )
        results.append(
            SimulationResult(
                summary=summary,
                node_stats=node_stats,
                counters=PrefixCounters(
                    active=prefix_act[b, : sim + 1],
                    arrivals=cum_arrivals[b, : sim + 1],
                    jammed=prefix_jam[b, : sim + 1],
                    successes=prefix_succ[b, : sim + 1],
                ),
                protocol_name=protocol_name,
                adversary_name=adversary_name,
                horizon=sim,
                seed=None,
                trace=None,
                backend=backend_name,
            )
        )
    return results
