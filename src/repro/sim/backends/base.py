"""The slot-kernel contract shared by all simulation backends.

A :class:`SlotKernel` executes one complete simulation run — the slot loop of
the model — for the configuration captured in a :class:`KernelContext`.  The
contract every kernel must honor:

* **Semantics.**  Slots proceed in the canonical order (adversary action,
  arrivals, broadcast decisions, channel resolution, feedback, departure,
  bookkeeping) and the returned :class:`~repro.sim.results.SimulationResult`
  carries the same summary, prefix arrays and per-node statistics the
  reference kernel would produce.
* **Determinism.**  All randomness must be drawn from the context's two seed
  trees in the documented order: one generator from ``adversary_tree`` for the
  adversary, then one generator per node from ``node_tree`` — spawned in
  arrival order.  Two kernels given the same context must produce
  *bit-for-bit identical* results whenever both support the configuration.
* **Fallback.**  :meth:`SlotKernel.supports` must be side-effect free (in
  particular it must not consume either seed tree), so the engine can probe
  kernels and fall back without perturbing the run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ...adversary.base import Adversary
from ...channel.multiple_access import MultipleAccessChannel
from ...metrics.collectors import MetricsCollector
from ...protocols.base import ProtocolFactory
from ...rng import SeedTree, make_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine import SimulatorConfig
    from ..results import SimulationResult

__all__ = ["KernelContext", "SlotKernel", "age_probability_profile"]


def age_probability_profile(protocol_factory: ProtocolFactory, horizon: int):
    """Per-age broadcast probabilities of a vector-eligible protocol.

    Probes a fresh instance (arrival slot 1, throwaway generator, consuming
    nothing from any run's seed trees) and returns the float vector with
    index 0 forced to 0.0 — the invariant both array kernels rely on so that
    clipped pre-arrival ages can never beat a uniform.  Returns ``None`` when
    the protocol cannot provide a closed-form age profile, in which case the
    caller must fall back to a per-slot execution path.
    """
    probe = protocol_factory()
    probe.on_arrival(1, make_generator(0))
    probabilities = probe.age_probability_vector(horizon)
    if probabilities is None:
        return None
    probabilities = np.asarray(probabilities, dtype=float).copy()
    probabilities[0] = 0.0
    return probabilities


@dataclass
class KernelContext:
    """Everything a kernel needs to execute one run.

    The engine spawns ``adversary_tree`` and ``node_tree`` (in that order)
    from the simulator's root seed tree before selecting a kernel, so every
    kernel sees identical random streams regardless of how selection went.
    """

    protocol_factory: ProtocolFactory
    adversary: Adversary
    config: "SimulatorConfig"
    channel: MultipleAccessChannel
    collectors: List[MetricsCollector]
    adversary_tree: SeedTree
    node_tree: SeedTree
    seed: Optional[int]
    protocol_name: str


class SlotKernel(abc.ABC):
    """One strategy for executing the slot loop of a simulation run."""

    #: registry / provenance name ("reference", "vectorized", ...)
    name: str = "kernel"

    @abc.abstractmethod
    def supports(self, context: KernelContext) -> bool:
        """Whether this kernel can execute ``context`` faithfully.

        Must not mutate the context (and in particular must not consume its
        seed trees); the engine calls this while choosing a backend.
        """

    @abc.abstractmethod
    def run(self, context: KernelContext) -> "SimulationResult":
        """Execute the run and return its result."""

    def unsupported_reason(self, context: KernelContext) -> Optional[str]:
        """Human-readable reason ``supports`` is False, for error messages."""
        return None if self.supports(context) else f"{self.name} kernel cannot run this configuration"
