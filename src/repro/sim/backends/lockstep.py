"""The lockstep study kernel: trial-parallel execution of feedback-driven protocols.

The batched study kernel resolves whole horizons up front, which only works
for protocols whose decisions ignore feedback.  The paper's own algorithm is
feedback-*driven* — phase transitions fire on observed successes — so its
broadcast matrix cannot be precomputed.  This kernel flips the vectorization
axis instead: it steps slot by slot through the horizon, but advances the
**entire T-trial × N-node population per slot** with array operations — one
Python iteration per slot instead of ``T × N × horizon``.

Three columnar sub-systems cooperate:

* the protocol's :class:`~repro.protocols.base.LockstepProgram` holds every
  node's algorithm state as numpy columns (phases, anchors, backoff plans,
  windows) and produces the slot's broadcast mask;
* a :class:`~repro.rng.NodeStreamPool` replays every node's ``default_rng``
  stream bit for bit with vectorized PCG64 stepping, so draws happen in
  exactly the order and kind the per-node reference execution consumes them;
* a :class:`~repro.adversary.columnar.LockstepAdversaryDriver` supplies each
  slot's arrivals/jamming for all trials — precompiled schedules for
  oblivious adversaries, columnar counter updates for the bundled adaptive
  ones (reactive jamming, the success chaser), a per-instance Python loop
  for anything else.

Bit-for-bit reproducibility
---------------------------

Node streams are derived read-only from the same spawn keys the serial path
uses (:class:`~repro.sim.backends.studysupport.SeedPlan`), adversary streams
are consumed through the same ``setup``/``precompile`` calls, and the slot
semantics (resolution order, feedback delivery, winner departure, early
stop) mirror the reference loop exactly.  The property suite enforces
seed-for-seed equality against the serial reference for every protocol with
a lockstep program, across oblivious and adaptive adversaries.

Eligibility: a protocol exposing :meth:`~repro.protocols.base.Protocol.
lockstep_program`, no per-slot collectors, no trace retention, and the
runtime-verified RNG replication (:func:`repro.rng.lockstep_streams_ok`).
Any adversary is accepted.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from ...adversary.base import Adversary
from ...adversary.columnar import (
    AdaptiveChaserLockstepDriver,
    GenericLockstepDriver,
    LockstepAdversaryDriver,
    PrecompiledLockstepDriver,
    ReactiveJammingLockstepDriver,
)
from ...errors import ConfigurationError
from ...protocols.base import LockstepProgram
from ...rng import NodeStreamPool
from ..artifacts import streams_verified
from ..results import SimulationResult
from .studysupport import (
    MAX_BLOCK_ELEMENTS,
    SeedPlan,
    StudyProbe,
    compile_adversary_schedules,
    emit_study_results,
)

__all__ = ["LockstepStudyKernel", "build_lockstep_driver", "emit_lockstep_results"]

AdversaryFactory = Callable[[], Adversary]

#: Initial per-trial node capacity when the arrival schedule is not known up
#: front (adaptive arrivals); grown by doubling as nodes are injected.
_INITIAL_CAPACITY = 16

#: ``auto``-selection gate: the kernel's per-slot cost is fixed while its
#: work per slot scales with the live population, so lockstep only beats the
#: per-trial reference loop when enough node-trials advance together.  The
#: peak single-slot arrival count is a cheap upfront proxy for concurrent
#: population; studies below the pressure floor (and with too few trials to
#: amortize over) stay on the per-trial ladder under ``auto``.  An explicit
#: ``backend="lockstep"`` request always runs.
_AUTO_PRESSURE_FLOOR = 24
_AUTO_TRIALS_FLOOR = 8

#: Trial-slot budget of one processing block.  The kernel's per-slot study
#: matrices (arrivals/jam/success/counts plus the int64 prefix planes at
#: emit) cost ~45 bytes per trial-slot, so bounding trial-slots per block
#: bounds peak memory the way the batched kernel's element cap does;
#: oversized studies run in contiguous trial blocks, which is semantically
#: free (trials are independent) and keeps ``streaming=True`` peak memory
#: at one block rather than the whole study.
_BLOCK_TRIAL_SLOTS = MAX_BLOCK_ELEMENTS // 4


class LockstepStudyKernel:
    """Study-level backend: slot-lockstep array execution of all trials."""

    name = "lockstep"

    # ------------------------------------------------------------ eligibility

    def unsupported_reason(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        collectors: Sequence = (),
        probe: Optional[StudyProbe] = None,
    ) -> Optional[str]:
        """Why this study cannot run lockstep (``None`` when it can)."""
        if probe is None:
            probe = StudyProbe(protocol_factory, adversary_factory)
        if probe.program is None:
            return (
                f"protocol {probe.protocol.name!r} has no columnar lockstep "
                "program (it must implement Protocol.lockstep_program)"
            )
        if config.keep_trace:
            return (
                "keep_trace requires per-slot records; use the reference "
                "backend"
            )
        if collectors:
            return (
                "collectors require per-slot records; use the reference "
                "backend"
            )
        if config.horizon >= 2**31:
            return "lockstep supports horizons below 2**31 slots"
        if not streams_verified():
            return (
                "this numpy's generator internals diverge from the verified "
                "lockstep RNG replication"
            )
        return None

    def supports_study(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        collectors: Sequence = (),
        probe: Optional[StudyProbe] = None,
    ) -> bool:
        return (
            self.unsupported_reason(
                protocol_factory, adversary_factory, config, collectors, probe
            )
            is None
        )

    def auto_preferred(
        self,
        adversary_factory: AdversaryFactory,
        config,
        trials: int,
        probe: Optional[StudyProbe] = None,
    ) -> bool:
        """Whether ``auto`` should escalate this study to the lockstep tier.

        Large trial counts always amortize the kernel's fixed per-slot cost;
        below that, the study must carry enough concurrent population
        (trials × peak single-slot arrivals) to beat the per-trial reference
        loop.  See :data:`_AUTO_PRESSURE_FLOOR`.
        """
        if trials >= _AUTO_TRIALS_FLOOR:
            return True
        if probe is None:
            # The runner passes its dispatch-level probe; this fallback only
            # serves direct callers, and the peak estimate itself is shared
            # process-wide through the artifact cache for spec-built factories.
            probe = StudyProbe(lambda: None, adversary_factory)
        peak = probe.peak_arrivals(config.horizon)
        if peak is None:
            return False
        return trials * peak >= _AUTO_PRESSURE_FLOOR

    # ------------------------------------------------------------------- run

    def run_study(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        trial_trees,  # List[SeedTree] or TrialSeedBatch
        protocol_name: str = "protocol",
        probe: Optional[StudyProbe] = None,
    ) -> Optional[List[SimulationResult]]:
        """Execute all trials, or return ``None`` when the study must fall
        back to the per-trial path.

        A ``None`` return guarantees the trial seed trees were not consumed
        (seed derivation is read-only), so the caller can rerun every trial
        through the per-trial ladder with identical results.
        """
        start_time = time.perf_counter()
        if probe is None:
            probe = StudyProbe(protocol_factory, adversary_factory)
        if probe.program is None or not streams_verified():
            return None
        plan = SeedPlan.build(trial_trees)
        if not plan.fast:
            return None

        block_trials = max(1, _BLOCK_TRIAL_SLOTS // (config.horizon + 1))
        results: List[SimulationResult] = []
        for lo in range(0, plan.trials, block_trials):
            hi = min(plan.trials, lo + block_trials)
            block_plan = plan if (lo, hi) == (0, plan.trials) else plan.restrict(lo, hi)
            driver = build_lockstep_driver(adversary_factory, config, block_plan)
            if driver is None:
                # Only reachable on the first block: driver construction
                # depends solely on the factory, so a later block cannot
                # bail after an earlier one succeeded.
                return None
            results.extend(
                _LockstepRun(
                    probe.take_program(),
                    driver,
                    config,
                    block_plan,
                    protocol_name,
                ).execute()
            )

        per_trial = (time.perf_counter() - start_time) / max(1, len(results))
        for result in results:
            result.wall_time_seconds = per_trial
        return results


def build_lockstep_driver(
    adversary_factory: AdversaryFactory, config, plan: SeedPlan
) -> Optional[LockstepAdversaryDriver]:
    """Resolve the adversary driver, consuming streams as the serial path would."""
    horizon = config.horizon
    if adversary_factory().precompilable:
        compiled = compile_adversary_schedules(
            adversary_factory, config, plan, horizon
        )
        if compiled is None:
            return None
        return PrecompiledLockstepDriver(*compiled)

    def fresh_adversaries(states):
        built = [adversary_factory() for _ in range(plan.trials)]
        for index, adversary in enumerate(built):
            adversary.setup(plan.fresh_generator(states, index), horizon)
        return built

    states = plan.adversary_generator_states()
    adversaries = fresh_adversaries(states)
    driver = ReactiveJammingLockstepDriver.try_build(adversaries, horizon)
    if driver is None:
        driver = AdaptiveChaserLockstepDriver.try_build(adversaries, horizon)
    if driver is None:
        # The reactive builder may have consumed some trials' arrival
        # strategies before bailing; the generic per-slot driver needs
        # untouched instances, and rebuilding from the same plan-derived
        # generators is stream-identical.
        driver = GenericLockstepDriver(fresh_adversaries(states))
    return driver


class _LockstepRun:
    """One study execution: the per-slot loop plus its columnar bookkeeping."""

    def __init__(
        self,
        program: LockstepProgram,
        driver: LockstepAdversaryDriver,
        config,
        plan: SeedPlan,
        protocol_name: str,
    ) -> None:
        self._program = program
        self._driver = driver
        self._config = config
        self._plan = plan
        self._protocol_name = protocol_name
        self._trials = plan.trials
        horizon = config.horizon
        schedule = driver.arrival_schedule
        if schedule is not None:
            cum = np.cumsum(schedule, axis=1)
            over_trials, over_slots = np.nonzero(cum > config.max_nodes)
            if over_trials.size:
                raise ConfigurationError(
                    f"adversary exceeded max_nodes={config.max_nodes} "
                    f"at slot {int(over_slots[0])}"
                )
            self._capacity = max(1, int(cum[:, horizon].max())) if cum.size else 1
        else:
            self._capacity = _INITIAL_CAPACITY
        trials = self._trials
        rows = trials * self._capacity
        self._pool = NodeStreamPool(rows)
        self._seed_all_rows(0, self._capacity)
        program.bind(trials, self._capacity, self._pool, horizon)
        self._arrival_col = np.zeros(rows, dtype=np.int64)
        self._success_col = np.zeros(rows, dtype=np.int64)
        self._broadcasts_col = np.zeros(rows, dtype=np.int64)
        self._node_count = np.zeros(trials, dtype=np.int64)
        self._success_count = np.zeros(trials, dtype=np.int64)
        self._active = np.zeros(0, dtype=np.int64)
        self._active_trials = np.zeros(0, dtype=np.int64)
        self._trial_active = np.ones(trials, dtype=bool)
        self._simulated = np.full(trials, horizon, dtype=np.int64)
        self._arrivals_m = np.zeros((trials, horizon + 1), dtype=np.int64)
        self._jam_m = np.zeros((trials, horizon + 1), dtype=bool)
        self._success_m = np.zeros((trials, horizon + 1), dtype=bool)
        self._counts_m = np.zeros((trials, horizon + 1), dtype=np.int32)

    # --------------------------------------------------------------- seeding

    def _seed_all_rows(self, from_node: int, to_node: int) -> None:
        """Seed the pool for every (trial, node) pair in the index range.

        One bulk hash covers the whole rectangle — the per-call cost of
        :func:`repro.rng.bulk_seed_states` is a fixed number of vectorized
        passes, so deriving states for nodes that never arrive is far
        cheaper than deriving small batches per arrival slot.  Unused rows
        are never drawn from, so over-seeding cannot perturb any stream.
        """
        span = to_node - from_node
        if span <= 0:
            return
        trials = self._trials
        node_ids = np.tile(
            np.arange(from_node, to_node, dtype=np.int64), trials
        )
        trial_ids = np.repeat(np.arange(trials, dtype=np.int64), span)
        states = self._plan.node_states_pairs(trial_ids, node_ids)
        assert states is not None  # plan.fast and 32-bit components guaranteed
        self._pool.seed_rows(trial_ids * self._capacity + node_ids, states)

    # ---------------------------------------------------------------- growth

    def _grow(self, needed: int) -> None:
        old = self._capacity
        new = old
        while new < needed:
            new *= 2
        trials = self._trials
        args = (trials, old, new)
        from ...protocols.base import grow_flat_column

        self._arrival_col = grow_flat_column(self._arrival_col, *args)
        self._success_col = grow_flat_column(self._success_col, *args)
        self._broadcasts_col = grow_flat_column(self._broadcasts_col, *args)
        node_index = np.tile(np.arange(new, dtype=np.int64), trials)
        trial_index = np.repeat(np.arange(trials, dtype=np.int64), new)
        gather = np.where(node_index < old, trial_index * old + node_index, -1)
        self._pool.remap(gather, trials * new)
        self._program.grow(trials, old, new)
        self._active = self._active_trials * new + (
            self._active - self._active_trials * old
        )
        self._capacity = new
        self._seed_all_rows(old, new)

    # --------------------------------------------------------------- arrivals

    def _inject(self, arrivals: np.ndarray, slot: int) -> None:
        config = self._config
        counts_after = self._node_count + arrivals
        if self._driver.arrival_schedule is None:
            if (counts_after > config.max_nodes).any():
                raise ConfigurationError(
                    f"adversary exceeded max_nodes={config.max_nodes} "
                    f"at slot {slot}"
                )
            needed = int(counts_after.max())
            if needed > self._capacity:
                self._grow(needed)
        trial_list = np.nonzero(arrivals)[0]
        trial_ids = np.repeat(trial_list, arrivals[trial_list])
        node_ids = np.concatenate(
            [
                self._node_count[t] + np.arange(arrivals[t], dtype=np.int64)
                for t in trial_list
            ]
        )
        rows = trial_ids * self._capacity + node_ids
        self._arrival_col[rows] = slot
        self._program.arrive(rows, slot)
        self._active = np.concatenate((self._active, rows))
        self._active_trials = np.concatenate((self._active_trials, trial_ids))
        self._node_count = counts_after
        self._arrivals_m[:, slot] = arrivals

    # ------------------------------------------------------------------ loop

    def execute(self) -> List[SimulationResult]:
        config = self._config
        program = self._program
        driver = self._driver
        trials = self._trials
        for slot in range(1, config.horizon + 1):
            arrivals, jam = driver.actions(slot, self._trial_active)
            self._jam_m[:, slot] = jam
            if arrivals.any():
                self._inject(arrivals, slot)
            rows = self._active
            if rows.size:
                sends = program.step(rows, slot)
                send_positions = np.nonzero(sends)[0]
                send_trials = self._active_trials[send_positions]
                counts = np.bincount(send_trials, minlength=trials).astype(
                    np.int32
                )
            else:
                sends = np.zeros(0, dtype=bool)
                send_positions = send_trials = np.zeros(0, dtype=np.int64)
                counts = np.zeros(trials, dtype=np.int32)
            self._counts_m[:, slot] = counts
            if send_positions.size:
                self._broadcasts_col[rows[send_positions]] += 1
            success = (counts == 1) & ~jam & self._trial_active
            winner_ids = np.full(trials, -1, dtype=np.int64)
            any_success = success.any()
            if any_success:
                winning = success[send_trials]
                winner_positions = send_positions[winning]
                winner_rows = rows[winner_positions]
                self._success_col[winner_rows] = slot
                self._success_m[:, slot] = success
                self._success_count += success
                winner_ids[send_trials[winning]] = (
                    winner_rows - send_trials[winning] * self._capacity
                )
            if rows.size:
                trial_success = success[self._active_trials]
                own = np.zeros(len(rows), dtype=bool)
                if any_success:
                    own[winner_positions] = True
                program.feedback(slot, rows, sends, trial_success, own)
            driver.observe(slot, success, winner_ids, self._trial_active)
            if any_success:
                keep = ~own
                self._active = rows[keep]
                self._active_trials = self._active_trials[keep]
            if config.stop_when_drained and self._check_drained(slot):
                break
        return self._emit()

    def _check_drained(self, slot: int) -> bool:
        """Stop trials whose system is empty and arrivals exhausted.

        Returns True when every trial has stopped.  A stopping trial has no
        active rows by construction (occupancy is exactly its live node
        count), so the active row set needs no pruning.
        """
        drained = (
            self._trial_active
            & (self._node_count > 0)
            & (self._node_count == self._success_count)
        )
        if drained.any():
            for trial in np.nonzero(drained)[0]:
                trial = int(trial)
                if self._driver.exhausted(trial, slot):
                    self._trial_active[trial] = False
                    self._simulated[trial] = slot
        return not self._trial_active.any()

    # ------------------------------------------------------------------ emit

    def _emit(self) -> List[SimulationResult]:
        return emit_lockstep_results(
            [self._driver.describe(t) for t in range(self._trials)],
            self._config.horizon,
            self._capacity,
            self._node_count,
            self._arrival_col,
            self._success_col,
            self._broadcasts_col,
            self._simulated,
            self._arrivals_m,
            self._jam_m,
            self._success_m,
            self._counts_m,
            self._protocol_name,
            LockstepStudyKernel.name,
        )


def emit_lockstep_results(
    adversary_names: List[str],
    horizon: int,
    capacity: int,
    node_count: np.ndarray,
    arrival_col: np.ndarray,
    success_col: np.ndarray,
    broadcasts_col: np.ndarray,
    simulated: np.ndarray,
    arrivals_m: np.ndarray,
    jam_m: np.ndarray,
    success_m: np.ndarray,
    counts_m: np.ndarray,
    protocol_name: str,
    backend_name: str,
) -> List[SimulationResult]:
    """Assemble results from the lockstep loop's columnar bookkeeping.

    Shared by the numpy lockstep kernel and the compiled (``lockstep-jit``)
    kernel — both produce the same flat outcome columns and per-slot study
    matrices, so the prefix-plane construction and per-trial assembly are
    identical.
    """
    trials = len(adversary_names)
    nodes_per_trial = node_count
    row_starts = np.concatenate(
        ([0], np.cumsum(nodes_per_trial))
    ).astype(np.int64)
    order = np.concatenate(
        [
            t * capacity + np.arange(nodes_per_trial[t], dtype=np.int64)
            for t in range(trials)
        ]
    ) if int(nodes_per_trial.sum()) else np.zeros(0, dtype=np.int64)

    cum_arrivals = np.cumsum(arrivals_m, axis=1)
    stacked = np.stack((success_m, jam_m))
    stacked[:, :, 0] = False
    # int64 planes so each trial's counters are zero-copy views into the
    # shared study matrices, exactly as the batched kernel emits them.
    prefix = np.empty((3, trials, horizon + 1), dtype=np.int64)
    np.cumsum(stacked, axis=2, out=prefix[:2])
    successes_before = np.zeros_like(cum_arrivals)
    successes_before[:, 1:] = prefix[0, :, :-1]
    active_full = (cum_arrivals - successes_before) > 0
    active_full[:, 0] = False
    np.cumsum(active_full, axis=1, out=prefix[2])
    silence = (~jam_m) & (counts_m == 0)
    silence[:, 0] = False
    silence_prefix = np.cumsum(silence, axis=1)
    silence_at = silence_prefix[np.arange(trials), simulated]

    success_ordered = success_col[order]
    sim_per_row = np.repeat(simulated, nodes_per_trial)
    finished = (success_ordered >= 1) & (success_ordered <= sim_per_row)

    return emit_study_results(
        adversary_names,
        nodes_per_trial,
        row_starts,
        arrival_col[order].tolist(),
        success_ordered.tolist(),
        finished.tolist(),
        broadcasts_col[order].tolist(),
        simulated,
        cum_arrivals,
        prefix,
        silence_at,
        protocol_name,
        backend_name,
    )
