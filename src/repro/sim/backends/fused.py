"""Fused multi-study dispatch: many sweep points, one lockstep run.

A sweep executes one :class:`~repro.spec.StudySpec` per dispatch, so a
100-point grid pays 100× the fixed costs — probe construction, driver
compilation, pool seeding, the per-slot Python overhead of the lockstep
loop.  This module stacks *compatible* points along the existing trials
axis and executes them as ONE lockstep (or compiled) run:

* :func:`fusion_key` decides compatibility — same protocol family, horizon,
  early-stop policy and columnar adversary driver family;
* :func:`plan_fusion_groups` partitions a plan's pending points into
  groups, bounded by the lockstep kernel's block trial budget;
* :func:`run_fused_group` executes one group and splits the results back
  into ordinary per-spec :class:`~repro.sim.runner.TrialStudy` objects, so
  store/dedupe semantics are untouched.

Bit-for-bit reproducibility
---------------------------

Fusion changes *layout*, never *streams*.  Each member study keeps its own
:class:`~repro.sim.backends.studysupport.SeedPlan` (trial ``t`` of member
``m`` derives exactly the states its solo run would), its own adversary
driver built with the member's plan (consuming member streams exactly as
the solo path does), and — when protocol parameters differ within a group —
its own unmodified :class:`~repro.protocols.base.LockstepProgram`, driven
through a row-translating composite.  The shared
:class:`~repro.rng.NodeStreamPool` draws per-row independent streams, the
slot loop's bookkeeping is per-trial independent, and a shared capacity or
a longer tail past one member's drain point changes nothing a trial can
observe.  The property suite enforces equality against per-point serial
execution for mixed grids.

A ``None`` return anywhere means "fall back to per-point dispatch"; the
group's members then run exactly as they would have without fusion.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ... import faults
from ...adversary.adaptive import AdaptiveSuccessChaser
from ...adversary.base import ComposedAdversary
from ...adversary.columnar import (
    AdaptiveChaserLockstepDriver,
    GenericLockstepDriver,
    LockstepAdversaryDriver,
    PrecompiledLockstepDriver,
    ReactiveJammingLockstepDriver,
)
from ...adversary.jamming import ReactiveJamming
from ...rng import TrialSeedBatch
from ..artifacts import canonical_key, streams_verified
from ..engine import SimulatorConfig
from .lockstep import _BLOCK_TRIAL_SLOTS, _LockstepRun, build_lockstep_driver
from .studysupport import SeedPlan

__all__ = ["fusion_budget", "fusion_key", "plan_fusion_groups", "run_fused_group"]

#: Backends a fused run may substitute for (results are backend-invariant;
#: explicit reference/per-trial pins are honoured by not fusing).
_FUSIBLE_BACKENDS = ("auto", "lockstep", "lockstep-jit", "batched-study")

#: Backends under which the group may take the compiled (lockstep-jit) tier.
_COMPILED_BACKENDS = ("auto", "lockstep-jit")


# ---------------------------------------------------------------- grouping


def _driver_family(spec) -> str:
    """Which columnar driver family the spec's adversary will build.

    Classified from a throwaway instance (never given a generator, so no
    stream is consumed).  Mirrors the ladder in
    :func:`~repro.sim.backends.lockstep.build_lockstep_driver`; the merge
    re-checks the *actual* built driver types, so a misprediction can only
    cause a fallback, never a wrong merge.
    """
    adversary = spec.adversary.factory(spec.horizon)()
    if adversary.precompilable:
        return "precompiled"
    if (
        type(adversary) is ComposedAdversary
        and not adversary.arrivals.adaptive
        and type(adversary.jamming) is ReactiveJamming
    ):
        return "reactive"
    if type(adversary) is AdaptiveSuccessChaser:
        return "chaser"
    return "generic"


def fusion_key(spec) -> Optional[Tuple]:
    """The compatibility group of a spec, or ``None`` when it cannot fuse.

    Points fuse when they share the protocol family (one program type, so
    a single or composite program covers the group), the horizon and
    early-stop policy (one slot loop), and the adversary driver family
    (one merged driver).  Trace retention, metric pipelines, streaming
    memory policy, unseeded studies and explicit per-trial/reference
    backend pins all opt out.
    """
    if spec.keep_trace or spec.streaming or spec.pipeline is not None:
        return None
    if spec.seed is None or spec.horizon >= 2**31:
        return None
    if spec.backend not in _FUSIBLE_BACKENDS:
        return None
    try:
        if spec.protocol.build()().lockstep_program() is None:
            return None
        family = _driver_family(spec)
    except Exception:
        return None
    return (spec.protocol.kind, spec.horizon, spec.stop_when_drained, family)


def fusion_budget(horizon: int) -> int:
    """Max stacked trials per fused run (one lockstep block by construction)."""
    return max(1, _BLOCK_TRIAL_SLOTS // (horizon + 1))


def plan_fusion_groups(
    indexed_specs: Sequence[Tuple[int, Any]],
) -> List[List[Tuple[int, Any]]]:
    """Partition pending points into fusable groups of at least two.

    ``indexed_specs`` is ``[(plan_index, spec), ...]``; points that cannot
    fuse (or end up alone in their group) are simply not returned and run
    per-point as before.  Groups are additionally chunked so one fused run
    stays within the lockstep kernel's block trial budget — a fused run is
    one block by construction.
    """
    buckets: Dict[Tuple, List[Tuple[int, Any]]] = {}
    for index, spec in indexed_specs:
        key = fusion_key(spec)
        if key is None:
            continue
        buckets.setdefault(key, []).append((index, spec))

    groups: List[List[Tuple[int, Any]]] = []
    for key, members in buckets.items():
        budget = fusion_budget(key[1])
        chunk: List[Tuple[int, Any]] = []
        chunk_trials = 0
        for member in members:
            trials = member[1].trials
            if trials > budget:
                continue  # the solo path blocks internally; don't fuse it
            if chunk and chunk_trials + trials > budget:
                if len(chunk) >= 2:
                    groups.append(chunk)
                chunk, chunk_trials = [], 0
            chunk.append(member)
            chunk_trials += trials
        if len(chunk) >= 2:
            groups.append(chunk)
    return groups


# ----------------------------------------------------------- seed stacking


class _FusedSeedPlan:
    """Per-member seed plans presented as one plan over stacked trials.

    Member ``m``'s trials occupy the contiguous block starting at
    ``offsets[m]``; every state derivation delegates to the member's own
    :class:`SeedPlan`, so fused trial ``offsets[m] + t`` derives exactly
    the states member ``m``'s solo trial ``t`` would.
    """

    def __init__(self, plans: List[SeedPlan]) -> None:
        self._plans = plans
        counts = np.array([plan.trials for plan in plans], dtype=np.int64)
        self._offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts))
        )
        self._trials = int(self._offsets[-1])

    @property
    def trials(self) -> int:
        return self._trials

    @property
    def fast(self) -> bool:
        return all(plan.fast for plan in self._plans)

    def member_of_trials(self, trial_ids: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._offsets, trial_ids, side="right") - 1

    def node_states_pairs(
        self, trial_ids: np.ndarray, node_ids: np.ndarray
    ) -> Optional[np.ndarray]:
        trial_ids = np.asarray(trial_ids, dtype=np.int64)
        node_ids = np.asarray(node_ids, dtype=np.int64)
        count = len(trial_ids)
        members = self.member_of_trials(trial_ids)
        pieces: Dict[int, np.ndarray] = {}
        for m in np.unique(members).tolist():
            mask = members == m
            states = self._plans[m].node_states_pairs(
                trial_ids[mask] - self._offsets[m], node_ids[mask]
            )
            if states is None:
                return None
            pieces[m] = states
        if not pieces:
            return np.zeros((0, 4), dtype=np.uint64)
        template = next(iter(pieces.values()))
        out = np.empty((count,) + template.shape[1:], dtype=template.dtype)
        for m, states in pieces.items():
            out[members == m] = states
        return out


# ------------------------------------------------------- program stacking


class _OffsetStreamPool:
    """A member program's view of the shared pool, shifted by its trial block.

    Member-local row ``(t, n)`` maps to global row
    ``(t + offset_trials) * capacity + n = local + offset_trials * capacity``,
    so every draw is a constant row shift — the underlying per-row streams
    are untouched.
    """

    def __init__(self, pool, offset_trials: int) -> None:
        self._pool = pool
        self._offset_trials = offset_trials
        self._shift = 0

    def set_capacity(self, capacity: int) -> None:
        self._shift = self._offset_trials * capacity

    def doubles(self, rows):
        return self._pool.doubles(rows + self._shift)

    def next_u32(self, rows):
        return self._pool.next_u32(rows + self._shift)

    def bounded_u32(self, rows, ranges):
        return self._pool.bounded_u32(rows + self._shift, ranges)

    def pow2_batch(self, rows, k, count):
        return self._pool.pow2_batch(rows + self._shift, k, count)

    def bounded_scalar(self, row, bound):
        return self._pool.bounded_scalar(int(row) + self._shift, bound)


class _CompositeLockstepProgram:
    """Per-member programs behind the single-program lockstep interface.

    Used when a group's members share a protocol *family* but not exact
    parameters: each member keeps its own unmodified program (its own
    tables, windows, plan widths) over its own contiguous trial block, and
    every kernel call is split by row membership.  Per-row RNG streams are
    independent, so routing a row to its member's program preserves each
    row's draw order exactly.
    """

    def __init__(self, programs: List[Any], member_trials: List[int]) -> None:
        self._programs = programs
        self._member_trials = [int(t) for t in member_trials]
        self._trial_offsets = np.concatenate(
            (
                np.zeros(1, dtype=np.int64),
                np.cumsum(np.asarray(self._member_trials, dtype=np.int64)),
            )
        )
        self._capacity = 0
        self._adapters: List[_OffsetStreamPool] = []

    def compiled_tables(self, horizon: int):
        return None  # heterogeneous parameters never lower to one table set

    def bind(self, trials: int, capacity: int, pool, horizon: int) -> None:
        self._capacity = capacity
        self._adapters = []
        for m, program in enumerate(self._programs):
            adapter = _OffsetStreamPool(pool, int(self._trial_offsets[m]))
            adapter.set_capacity(capacity)
            self._adapters.append(adapter)
            program.bind(self._member_trials[m], capacity, adapter, horizon)

    def grow(self, trials: int, old_capacity: int, new_capacity: int) -> None:
        self._capacity = new_capacity
        for m, program in enumerate(self._programs):
            self._adapters[m].set_capacity(new_capacity)
            program.grow(self._member_trials[m], old_capacity, new_capacity)

    def _members_of_rows(self, rows: np.ndarray) -> np.ndarray:
        return (
            np.searchsorted(
                self._trial_offsets, rows // self._capacity, side="right"
            )
            - 1
        )

    def arrive(self, rows: np.ndarray, slot: int) -> None:
        members = self._members_of_rows(rows)
        for m in np.unique(members).tolist():
            mask = members == m
            local = rows[mask] - self._trial_offsets[m] * self._capacity
            self._programs[m].arrive(local, slot)

    def step(self, rows: np.ndarray, slot: int) -> np.ndarray:
        sends = np.zeros(len(rows), dtype=bool)
        members = self._members_of_rows(rows)
        for m in np.unique(members).tolist():
            mask = members == m
            local = rows[mask] - self._trial_offsets[m] * self._capacity
            sends[mask] = self._programs[m].step(local, slot)
        return sends

    def feedback(
        self, slot, rows, sends, trial_success, own_success
    ) -> None:
        members = self._members_of_rows(rows)
        for m in np.unique(members).tolist():
            mask = members == m
            local = rows[mask] - self._trial_offsets[m] * self._capacity
            self._programs[m].feedback(
                slot, local, sends[mask], trial_success[mask], own_success[mask]
            )


# ---------------------------------------------------------- driver merging


def _merge_drivers(
    drivers: List[LockstepAdversaryDriver],
) -> Optional[LockstepAdversaryDriver]:
    """One driver over the stacked trials, or ``None`` when types mix.

    All four driver families keep strictly per-trial state (schedules,
    counters, adversary instances), so merging is concatenation along the
    trial axis; merged mutable state starts zeroed exactly as each member's
    fresh driver's does.
    """
    first = type(drivers[0])
    if any(type(driver) is not first for driver in drivers):
        return None
    adversaries = [a for driver in drivers for a in driver.adversaries]
    if first is PrecompiledLockstepDriver:
        return PrecompiledLockstepDriver(
            adversaries,
            np.concatenate([d.arrival_schedule for d in drivers], axis=0),
            np.concatenate([d._jammed for d in drivers], axis=0),
        )
    if first is ReactiveJammingLockstepDriver:
        return ReactiveJammingLockstepDriver(
            adversaries,
            np.concatenate([d.arrival_schedule for d in drivers], axis=0),
            np.concatenate([d._fraction for d in drivers]),
            np.concatenate([d._burst for d in drivers]),
        )
    if first is AdaptiveChaserLockstepDriver:
        return AdaptiveChaserLockstepDriver(adversaries)
    if first is GenericLockstepDriver:
        return GenericLockstepDriver(adversaries)
    return None


# --------------------------------------------------------------- execution


def run_fused_group(specs: Sequence[Any]) -> Optional[List[Any]]:
    """Execute compatible specs as one run; per-spec studies in order.

    Returns ``None`` when the group turns out not to be fusable after all
    (callers fall back to per-point dispatch).  Exceptions — including
    injected ``fused-group`` faults — propagate; nothing has been stored,
    so sibling points are unaffected and re-run per-point.
    """
    if not specs:
        return []
    faults.active_plan().maybe_raise("fused-group", points=len(specs))
    if not streams_verified():
        return None
    first = specs[0]
    config = SimulatorConfig(
        horizon=first.horizon,
        keep_trace=False,
        stop_when_drained=first.stop_when_drained,
    )

    plans: List[SeedPlan] = []
    drivers: List[LockstepAdversaryDriver] = []
    programs: List[Any] = []
    protocol_name = "protocol"
    uniform = len(
        {canonical_key(spec.protocol.to_dict()) for spec in specs}
    ) == 1
    for spec in specs:
        plan = SeedPlan.build(TrialSeedBatch(spec.seed, spec.trials))
        if not plan.fast:
            return None
        # The member's driver is built with the member's own plan, so its
        # setup/precompile consume the member's streams exactly as a solo
        # run would.
        driver = build_lockstep_driver(
            spec.adversary.factory(spec.horizon), config, plan
        )
        if driver is None:
            return None
        plans.append(plan)
        drivers.append(driver)
        if not uniform or not programs:
            factory = spec.protocol.build()
            program = factory().lockstep_program()
            if program is None:
                return None
            programs.append(program)
            protocol_name = (
                getattr(factory, "protocol_name", None) or "protocol"
            )

    merged = _merge_drivers(drivers)
    if merged is None:
        return None
    fused_plan = _FusedSeedPlan(plans)
    if uniform:
        program: Any = programs[0]
    else:
        program = _CompositeLockstepProgram(
            programs, [plan.trials for plan in plans]
        )

    start = time.perf_counter()
    results = None
    if uniform and all(spec.backend in _COMPILED_BACKENDS for spec in specs):
        results = _run_compiled_fused(
            program, merged, config, fused_plan, protocol_name
        )
    if results is None:
        results = _LockstepRun(
            program, merged, config, fused_plan, protocol_name
        ).execute()
    elapsed = time.perf_counter() - start
    per_trial = elapsed / max(1, len(results))
    for result in results:
        result.wall_time_seconds = per_trial

    return _split_studies(specs, results)


def _run_compiled_fused(
    program, driver, config, fused_plan, protocol_name
) -> Optional[List[Any]]:
    """Try the lockstep-jit tier on the merged run (uniform groups only).

    Any bail-out returns ``None`` and the caller runs the numpy fused path
    with the same (still untouched) merged driver — the interpreter only
    ever reads driver state into its own arrays before running.
    """
    from .compiled import (
        _kernels_for,
        _run_block,
        compiled_streams_ok,
        interpreter_mode,
    )

    mode = interpreter_mode()
    if mode == "off" or not compiled_streams_ok(mode):
        return None
    tables = program.compiled_tables(config.horizon)
    if tables is None:
        return None
    kernels = _kernels_for(mode)
    if kernels is None:
        return None
    return _run_block(
        kernels,
        mode,
        None,
        config,
        fused_plan,
        tables,
        protocol_name,
        driver=driver,
    )


def _split_studies(specs: Sequence[Any], results: List[Any]) -> List[Any]:
    """Slice the stacked results back into per-spec TrialStudy objects.

    Results come out of the lockstep emit in trial order, so member ``m``
    owns the contiguous slice starting at its trial offset.  The studies
    are ordinary :class:`TrialStudy` objects — stored, hashed and reported
    exactly as per-point runs are.
    """
    from ...sim.health import RunHealth
    from ...sim.runner import TrialStudy

    studies = []
    offset = 0
    for spec in specs:
        chunk = results[offset : offset + spec.trials]
        offset += spec.trials
        health = RunHealth(
            requested_workers=spec.workers, effective_workers=1
        )
        studies.append(
            TrialStudy(
                results=chunk,
                label=spec.display_label,
                effective_workers=1,
                health=health,
            )
        )
    return studies
