"""The vectorized slot kernel: whole-horizon array resolution with numpy.

Eligibility
-----------

The kernel exploits the structure most classical protocols share: while a node
is active it broadcasts independently each slot with a probability that
depends only on its *age* (slots since arrival), ignoring all feedback, and
consumes exactly one uniform per active slot (the
:attr:`~repro.protocols.base.Protocol.vector_eligible` contract).  Because
decisions never depend on the channel, the entire broadcast matrix can be
drawn up front and slots resolved by array arithmetic; only the (rare)
successes need sequential treatment, since a success removes the winner's
future broadcasts.

The adversary must be oblivious and precompilable
(:meth:`~repro.adversary.base.Adversary.precompile`), so its whole-horizon
arrival/jamming arrays can be pulled before the first slot.

Bit-for-bit reproducibility
---------------------------

Per-node generators are spawned from the context's node seed tree in arrival
order, exactly as the reference kernel does, and a batched
``Generator.random(n)`` yields the same stream as ``n`` sequential
``Generator.random()`` calls.  The kernel therefore reproduces the reference
execution *exactly* — summaries, prefix arrays, node statistics and traces are
identical, which the property suite enforces.

When the configuration is not eligible (adaptive adversary, feedback-coupled
protocol) the engine falls back to the reference kernel; when only the
broadcast matrix is too large for memory, this kernel replays its precompiled
schedule through the reference slot loop instead.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ...adversary.base import PrecompiledSchedule
from ...channel.multiple_access import MultipleAccessChannel
from ...errors import ConfigurationError
from ...types import AdversaryAction, NodeStats, SimulationSummary, SlotOutcome, SlotRecord
from ..events import EventTrace
from ..results import PrefixCounters, SimulationResult
from .base import KernelContext, SlotKernel, age_probability_profile
from .reference import run_slot_loop

__all__ = ["VectorizedKernel"]

#: Broadcast matrices larger than this (bytes) trigger the replay fallback.
_MAX_MATRIX_BYTES = 1 << 28

#: Element cap for the fully dense temporaries (float64 uniforms, int32
#: cumulative sums).  Below it the kernel resolves broadcasts and per-node
#: counts with whole-matrix operations; above it (still within the replay
#: guard) it degrades to the equivalent row-wise forms to bound memory.
_MAX_DENSE_ELEMENTS = 1 << 23


class VectorizedKernel(SlotKernel):
    """Batched-RNG array kernel for vector-eligible protocols."""

    name = "vectorized"

    def supports(self, context: KernelContext) -> bool:
        return self.unsupported_reason(context) is None

    def unsupported_reason(self, context: KernelContext) -> Optional[str]:
        probe = context.protocol_factory()
        if not probe.vector_eligible:
            return (
                f"protocol {probe.name!r} is not vector-eligible "
                "(its broadcast decisions depend on feedback or are not "
                "independent per-slot Bernoulli draws)"
            )
        if not context.adversary.precompilable:
            return (
                f"adversary {context.adversary.describe()!r} is adaptive and "
                "cannot be precompiled into a whole-horizon schedule"
            )
        if type(context.channel) is not MultipleAccessChannel:
            return (
                f"channel {type(context.channel).__name__} may override slot "
                "resolution semantics"
            )
        return None

    def run(self, context: KernelContext) -> SimulationResult:
        config = context.config
        adversary = context.adversary
        horizon = config.horizon

        start_time = time.perf_counter()
        adversary_rng = context.adversary_tree.generator()
        adversary.setup(adversary_rng, horizon)
        schedule = adversary.precompile(horizon)
        if schedule is None:
            # The adversary claimed precompilability but produced no schedule;
            # its RNG was consumed only by setup(), so the live loop is still
            # bit-identical to the reference kernel.
            return run_slot_loop(
                context, adversary.action_for_slot, backend_name="reference"
            )

        arrivals = schedule.arrivals
        jammed = schedule.jammed

        cum_arrivals = np.cumsum(arrivals)
        over = np.nonzero(cum_arrivals > config.max_nodes)[0]
        if over.size:
            raise ConfigurationError(
                f"adversary exceeded max_nodes={config.max_nodes} at slot {int(over[0])}"
            )

        total_nodes = int(cum_arrivals[horizon])
        if total_nodes * (horizon + 1) > _MAX_MATRIX_BYTES:
            return self._replay_fallback(context, schedule)

        probabilities = age_probability_profile(context.protocol_factory, horizon)
        if probabilities is None:
            return self._replay_fallback(context, schedule)

        for collector in context.collectors:
            collector.on_run_start(horizon)

        # --- broadcast matrix: one row per node, one column per slot -------
        # Seed children are spawned in bulk (one SeedSequence.spawn call) and
        # each node's uniforms are drawn as one batched row, which reproduces
        # the reference kernel's sequential child()/random() streams exactly.
        arrival_slots = np.repeat(np.arange(horizon + 1), arrivals)
        n = total_nodes
        dense = n * (horizon + 1) <= _MAX_DENSE_ELEMENTS
        children = context.node_tree.children(n)
        if dense:
            uniforms = np.zeros((n, horizon + 1))
            for i, child in enumerate(children):
                a = int(arrival_slots[i])
                uniforms[i, a:] = child.generator().random(horizon - a + 1)
            ages = np.arange(horizon + 1)[None, :] - arrival_slots[:, None] + 1
            np.clip(ages, 0, horizon, out=ages)
            # probabilities[0] == 0.0, so clipped pre-arrival ages (age <= 0)
            # can never beat a uniform and the rows need no explicit mask.
            broadcasts = uniforms < probabilities[ages]
            del uniforms, ages
        else:
            broadcasts = np.zeros((n, horizon + 1), dtype=bool)
            for i, child in enumerate(children):
                a = int(arrival_slots[i])
                draws = child.generator().random(horizon - a + 1)
                broadcasts[i, a:] = draws < probabilities[1 : horizon - a + 2]

        # --- forward pass: peel off successes in slot order ----------------
        counts = broadcasts.sum(axis=0, dtype=np.int64)
        eligible = ~jammed
        alive = np.ones(n, dtype=bool)
        success_slot = np.zeros(n, dtype=np.int64)
        position = 1
        while position <= horizon:
            candidates = np.nonzero(
                (counts[position:] == 1) & eligible[position:]
            )[0]
            if candidates.size == 0:
                break
            slot = position + int(candidates[0])
            winner = int(np.nonzero(broadcasts[:, slot] & alive)[0][0])
            success_slot[winner] = slot
            alive[winner] = False
            if slot < horizon:
                counts[slot + 1 :] -= broadcasts[winner, slot + 1 :]
            position = slot + 1

        # --- early stop (stop_when_drained) ---------------------------------
        sorted_successes = np.sort(success_slot[success_slot > 0])
        successes_up_to = np.searchsorted(
            sorted_successes, np.arange(horizon + 1), side="right"
        )
        simulated = horizon
        if config.stop_when_drained:
            occupancy_after = cum_arrivals - successes_up_to
            stop_candidates = np.nonzero(
                (occupancy_after == 0) & (cum_arrivals > 0)
            )[0]
            for t in stop_candidates:
                t = int(t)
                if t >= 1 and adversary.arrivals_exhausted(t):
                    simulated = t
                    break

        finished = (success_slot >= 1) & (success_slot <= simulated)

        # --- per-slot outcome masks over the simulated range ----------------
        jam_t = jammed[1 : simulated + 1]
        counts_t = counts[1 : simulated + 1]
        success_t = (~jam_t) & (counts_t == 1)
        silence_t = (~jam_t) & (counts_t == 0)
        collision_t = ~success_t & ~silence_t
        successes_before = np.concatenate(([0], successes_up_to[:-1]))
        occupancy_during = cum_arrivals - successes_before
        active_t = occupancy_during[1 : simulated + 1] > 0

        # --- per-node statistics --------------------------------------------
        exists = arrival_slots <= simulated
        ends = np.where(finished, success_slot, simulated)
        if dense:
            running = np.cumsum(broadcasts, axis=1, dtype=np.int32)
            broadcast_counts = np.take_along_axis(
                running, ends[:, None], axis=1
            )[:, 0].astype(np.int64)
            del running
        else:
            broadcast_counts = np.zeros(n, dtype=np.int64)
            for i in range(n):
                broadcast_counts[i] = int(broadcasts[i, : int(ends[i]) + 1].sum())

        node_stats: Dict[int, NodeStats] = {}
        for i in np.nonzero(exists)[0]:
            i = int(i)
            node_stats[i] = NodeStats(
                node_id=i,
                arrival_slot=int(arrival_slots[i]),
                success_slot=int(success_slot[i]) if finished[i] else None,
                broadcast_count=int(broadcast_counts[i]),
            )

        summary = SimulationSummary(
            total_slots=simulated,
            active_slots=int(active_t.sum()),
            successes=int(success_t.sum()),
            collisions=int(collision_t.sum()),
            silent_slots=int(silence_t.sum()),
            jammed_slots=int(jam_t.sum()),
            arrivals=int(cum_arrivals[simulated]),
            total_broadcasts=int(broadcast_counts[exists].sum()),
        )
        context.channel.record_bulk(
            slots=simulated,
            successes=summary.successes,
            jammed=summary.jammed_slots,
        )

        # Columns go straight into the result record — no .tolist() round trip.
        zero = np.zeros(1, dtype=np.int64)
        counters = PrefixCounters(
            active=np.concatenate((zero, np.cumsum(active_t, dtype=np.int64))),
            arrivals=np.asarray(cum_arrivals[: simulated + 1], dtype=np.int64),
            jammed=np.concatenate((zero, np.cumsum(jam_t, dtype=np.int64))),
            successes=np.concatenate((zero, np.cumsum(success_t, dtype=np.int64))),
        )

        trace: Optional[EventTrace] = None
        if config.keep_trace or context.collectors:
            trace = self._emit_records(
                context,
                broadcasts,
                jammed,
                counts,
                arrivals,
                occupancy_during,
                success_slot,
                finished,
                simulated,
            )

        wall_time = time.perf_counter() - start_time
        result = SimulationResult(
            summary=summary,
            node_stats=node_stats,
            counters=counters,
            protocol_name=context.protocol_name,
            adversary_name=adversary.describe(),
            horizon=simulated,
            seed=context.seed,
            trace=trace,
            backend=self.name,
            wall_time_seconds=wall_time,
        )
        for collector in context.collectors:
            collector.on_run_end(result)
        return result

    # ------------------------------------------------------------------ utils

    def _replay_fallback(
        self, context: KernelContext, schedule: PrecompiledSchedule
    ) -> SimulationResult:
        """Run the reference loop against the already-precompiled schedule.

        The adversary's RNG streams were consumed by ``precompile``; replaying
        the materialized arrays (instead of calling ``action_for_slot`` again)
        keeps the run bit-identical to a reference execution.
        """
        arrivals = schedule.arrivals
        jammed = schedule.jammed

        def replay(slot: int) -> AdversaryAction:
            return AdversaryAction(
                arrivals=int(arrivals[slot]), jam=bool(jammed[slot])
            )

        return run_slot_loop(context, replay, backend_name="reference")

    @staticmethod
    def _emit_records(
        context: KernelContext,
        broadcasts: np.ndarray,
        jammed: np.ndarray,
        counts: np.ndarray,
        arrivals: np.ndarray,
        occupancy_during: np.ndarray,
        success_slot: np.ndarray,
        finished: np.ndarray,
        simulated: int,
    ) -> Optional[EventTrace]:
        """Materialize per-slot records for the trace and the collectors."""
        trace = EventTrace() if context.config.keep_trace else None
        winner_by_slot = np.full(simulated + 1, -1, dtype=np.int64)
        finished_ids = np.nonzero(finished)[0]
        winner_by_slot[success_slot[finished_ids]] = finished_ids
        alive = np.ones(broadcasts.shape[0], dtype=bool)
        for slot in range(1, simulated + 1):
            ids = np.nonzero(broadcasts[:, slot] & alive)[0]
            jam = bool(jammed[slot])
            winner = int(winner_by_slot[slot])
            if jam:
                outcome = SlotOutcome.COLLISION
            elif counts[slot] == 1:
                outcome = SlotOutcome.SUCCESS
            elif counts[slot] == 0:
                outcome = SlotOutcome.SILENCE
            else:
                outcome = SlotOutcome.COLLISION
            record = SlotRecord(
                slot=slot,
                broadcasters=tuple(int(i) for i in ids),
                jammed=jam,
                outcome=outcome,
                successful_node=winner if winner >= 0 else None,
                active_nodes=int(occupancy_during[slot]),
                arrivals=int(arrivals[slot]),
            )
            if trace is not None:
                trace.append(record)
            for collector in context.collectors:
                collector.on_slot(record)
            if winner >= 0:
                alive[winner] = False
        return trace
