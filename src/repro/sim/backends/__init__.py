"""Pluggable simulation backends (slot kernels and the study kernel).

Per-run slot kernels:

* ``"reference"`` — the per-node, per-slot Python loop; supports every
  configuration and defines the semantics.
* ``"vectorized"`` — batched-RNG numpy resolution for vector-eligible
  protocols against precompilable adversaries; bit-for-bit identical to the
  reference kernel where it applies.

Study-level backends (valid for :class:`~repro.sim.runner.TrialRunner` /
:func:`~repro.sim.runner.run_trials`, not for a single
:class:`~repro.sim.engine.Simulator`):

* ``"batched-study"`` — all trials of a study stacked into one numpy pass
  (:class:`BatchedStudyKernel`); requires a vector-eligible protocol and a
  precompilable adversary; seed-for-seed identical to running the trials
  serially.
* ``"lockstep-jit"`` — the same trial-lockstep semantics lowered into one
  fused slot loop (:class:`CompiledStudyKernel`), compiled with numba when
  it is installed; runtime stream verification with automatic demotion to
  the numpy lockstep kernel on any mismatch or missing dependency, so
  results are always produced and always identical.
* ``"lockstep"`` — all trials advanced one slot at a time with array
  operations (:class:`LockstepStudyKernel`); serves feedback-driven
  protocols that expose a columnar
  :class:`~repro.protocols.base.LockstepProgram` (the paper's CJZ protocol
  and the windowed/sawtooth backoff baselines) against *any* adversary,
  adaptive ones included; seed-for-seed identical to serial reference.

``"auto"`` escalates down the ladder: the trial runner picks the batched
study kernel when the whole study is eligible, else the compiled lockstep
kernel (which itself demotes to the numpy lockstep kernel when it cannot
run), else each trial picks the vectorized kernel when eligible, else the
reference kernel.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ...errors import ConfigurationError
from .base import KernelContext, SlotKernel
from .batched import BatchedStudyKernel
from .compiled import CompiledStudyKernel
from .lockstep import LockstepStudyKernel
from .reference import ReferenceKernel, run_slot_loop
from .vectorized import VectorizedKernel

__all__ = [
    "KernelContext",
    "SlotKernel",
    "ReferenceKernel",
    "VectorizedKernel",
    "BatchedStudyKernel",
    "CompiledStudyKernel",
    "LockstepStudyKernel",
    "run_slot_loop",
    "AUTO_BACKEND",
    "STUDY_BACKEND",
    "COMPILED_BACKEND",
    "LOCKSTEP_BACKEND",
    "STUDY_BACKENDS",
    "available_backends",
    "available_study_backends",
    "resolve_kernel",
    "select_kernel",
]

AUTO_BACKEND = "auto"
STUDY_BACKEND = BatchedStudyKernel.name
COMPILED_BACKEND = CompiledStudyKernel.name
LOCKSTEP_BACKEND = LockstepStudyKernel.name

#: Backends that execute whole trial studies (rejected by a single Simulator).
STUDY_BACKENDS = (STUDY_BACKEND, COMPILED_BACKEND, LOCKSTEP_BACKEND)

_KERNELS: Dict[str, Type[SlotKernel]] = {
    ReferenceKernel.name: ReferenceKernel,
    VectorizedKernel.name: VectorizedKernel,
}


def available_backends() -> Tuple[str, ...]:
    """Valid single-run ``backend=`` values, including ``"auto"``."""
    return (AUTO_BACKEND, *sorted(_KERNELS))


def available_study_backends() -> Tuple[str, ...]:
    """Valid study-level ``backend=`` values (trial runner / experiments)."""
    return (AUTO_BACKEND, *sorted(STUDY_BACKENDS), *sorted(_KERNELS))


def resolve_kernel(name: str) -> SlotKernel:
    """Instantiate the slot kernel registered under ``name`` (not ``"auto"``)."""
    try:
        return _KERNELS[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from exc


def select_kernel(backend: str, context: KernelContext) -> SlotKernel:
    """Resolve ``backend`` against a concrete run configuration.

    ``"auto"`` prefers the vectorized kernel when it supports the context and
    silently falls back to the reference kernel otherwise.  Naming a kernel
    explicitly raises :class:`~repro.errors.ConfigurationError` when it cannot
    run the configuration.
    """
    if backend == AUTO_BACKEND:
        vectorized = VectorizedKernel()
        if vectorized.supports(context):
            return vectorized
        return ReferenceKernel()
    kernel = resolve_kernel(backend)
    reason = kernel.unsupported_reason(context)
    if reason is not None:
        raise ConfigurationError(f"backend {backend!r} unavailable: {reason}")
    return kernel
