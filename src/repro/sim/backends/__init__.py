"""Pluggable simulation backends (slot kernels).

Two kernels are provided:

* ``"reference"`` — the per-node, per-slot Python loop; supports every
  configuration and defines the semantics.
* ``"vectorized"`` — batched-RNG numpy resolution for vector-eligible
  protocols against precompilable adversaries; bit-for-bit identical to the
  reference kernel where it applies.

``"auto"`` (the :class:`~repro.sim.engine.Simulator` default) picks the
vectorized kernel when the configuration is eligible and falls back to the
reference kernel otherwise.
"""

from __future__ import annotations

from typing import Dict, Type

from ...errors import ConfigurationError
from .base import KernelContext, SlotKernel
from .reference import ReferenceKernel, run_slot_loop
from .vectorized import VectorizedKernel

__all__ = [
    "KernelContext",
    "SlotKernel",
    "ReferenceKernel",
    "VectorizedKernel",
    "run_slot_loop",
    "AUTO_BACKEND",
    "available_backends",
    "resolve_kernel",
    "select_kernel",
]

AUTO_BACKEND = "auto"

_KERNELS: Dict[str, Type[SlotKernel]] = {
    ReferenceKernel.name: ReferenceKernel,
    VectorizedKernel.name: VectorizedKernel,
}


def available_backends() -> tuple:
    """Valid ``backend=`` values, including ``"auto"``."""
    return (AUTO_BACKEND, *sorted(_KERNELS))


def resolve_kernel(name: str) -> SlotKernel:
    """Instantiate the kernel registered under ``name`` (not ``"auto"``)."""
    try:
        return _KERNELS[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from exc


def select_kernel(backend: str, context: KernelContext) -> SlotKernel:
    """Resolve ``backend`` against a concrete run configuration.

    ``"auto"`` prefers the vectorized kernel when it supports the context and
    silently falls back to the reference kernel otherwise.  Naming a kernel
    explicitly raises :class:`~repro.errors.ConfigurationError` when it cannot
    run the configuration.
    """
    if backend == AUTO_BACKEND:
        vectorized = VectorizedKernel()
        if vectorized.supports(context):
            return vectorized
        return ReferenceKernel()
    kernel = resolve_kernel(backend)
    reason = kernel.unsupported_reason(context)
    if reason is not None:
        raise ConfigurationError(f"backend {backend!r} unavailable: {reason}")
    return kernel
