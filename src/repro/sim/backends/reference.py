"""The reference slot kernel: the per-node, per-slot Python loop.

This is the semantics-defining implementation — every other backend is
validated against it.  The loop body is exposed as :func:`run_slot_loop` so
the vectorized kernel can reuse it verbatim when it has already precompiled
the adversary's schedule but must fall back (e.g. because the broadcast
matrix would not fit in memory).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from ...errors import ConfigurationError
from ...types import (
    AdversaryAction,
    NodeStats,
    SimulationSummary,
    SlotObservation,
    SlotRecord,
)
from ..events import EventTrace
from ..node import Node
from ..results import PrefixCounters, SimulationResult
from .base import KernelContext, SlotKernel

__all__ = ["ReferenceKernel", "run_slot_loop"]


def run_slot_loop(
    context: KernelContext,
    action_for_slot: Callable[[int], AdversaryAction],
    backend_name: str = "reference",
) -> SimulationResult:
    """Execute the canonical per-node slot loop.

    ``action_for_slot`` supplies the adversary's decision for each slot —
    either the live adversary method or a replay of a precompiled schedule.
    The adversary must already be set up; observations are still delivered to
    it each slot.
    """
    config = context.config
    adversary = context.adversary
    channel = context.channel
    collectors = context.collectors
    node_seed_tree = context.node_tree

    start_time = time.perf_counter()
    for collector in collectors:
        collector.on_run_start(config.horizon)

    nodes: Dict[int, Node] = {}
    active_nodes: List[Node] = []
    summary = SimulationSummary()
    trace = EventTrace() if config.keep_trace else None

    prefix_active = [0]
    prefix_arrivals = [0]
    prefix_jammed = [0]
    prefix_successes = [0]

    next_node_id = 0
    slots_simulated = 0

    for slot in range(1, config.horizon + 1):
        slots_simulated = slot
        action = action_for_slot(slot)
        if action.arrivals and next_node_id + action.arrivals > config.max_nodes:
            raise ConfigurationError(
                f"adversary exceeded max_nodes={config.max_nodes} at slot {slot}"
            )

        # 2. arrivals
        for _ in range(action.arrivals):
            node = Node(
                node_id=next_node_id,
                arrival_slot=slot,
                protocol=context.protocol_factory(),
                rng=node_seed_tree.child().generator(),
            )
            nodes[next_node_id] = node
            active_nodes.append(node)
            next_node_id += 1

        # 3. broadcast decisions
        broadcasters = [
            node.node_id for node in active_nodes if node.decide_broadcast(slot)
        ]

        # 4. channel resolution
        outcome, winner, feedback = channel.resolve(broadcasters, jammed=action.jam)

        # 5./6. feedback dispatch; the winner deactivates itself
        broadcaster_set = set(broadcasters)
        for node in active_nodes:
            node.deliver_feedback(
                slot, feedback, node.node_id in broadcaster_set, winner
            )
        if winner is not None:
            active_nodes = [n for n in active_nodes if n.active]

        # 7. bookkeeping
        record = SlotRecord(
            slot=slot,
            broadcasters=tuple(broadcasters),
            jammed=action.jam,
            outcome=outcome,
            successful_node=winner,
            active_nodes=len(active_nodes) + (1 if winner is not None else 0),
            arrivals=action.arrivals,
        )
        summary.record(record)
        if trace is not None:
            trace.append(record)
        for collector in collectors:
            collector.on_slot(record)

        prefix_active.append(summary.active_slots)
        prefix_arrivals.append(summary.arrivals)
        prefix_jammed.append(summary.jammed_slots)
        prefix_successes.append(summary.successes)

        observation = SlotObservation(slot=slot, feedback=feedback, message_node=winner)
        adversary.observe(observation)

        if (
            config.stop_when_drained
            and not active_nodes
            and summary.arrivals > 0
            and adversary.arrivals_exhausted(slot)
        ):
            break

    node_stats: Dict[int, NodeStats] = {
        node_id: node.stats for node_id, node in nodes.items()
    }
    wall_time = time.perf_counter() - start_time
    result = SimulationResult(
        summary=summary,
        node_stats=node_stats,
        counters=PrefixCounters.from_lists(
            prefix_active, prefix_arrivals, prefix_jammed, prefix_successes
        ),
        protocol_name=context.protocol_name,
        adversary_name=adversary.describe(),
        horizon=slots_simulated,
        seed=context.seed,
        trace=trace,
        backend=backend_name,
        wall_time_seconds=wall_time,
    )
    for collector in collectors:
        collector.on_run_end(result)
    return result


class ReferenceKernel(SlotKernel):
    """Per-node, per-slot loop — supports every configuration."""

    name = "reference"

    def supports(self, context: KernelContext) -> bool:
        return True

    def run(self, context: KernelContext) -> SimulationResult:
        adversary_rng = context.adversary_tree.generator()
        context.adversary.setup(adversary_rng, context.config.horizon)
        return run_slot_loop(
            context, context.adversary.action_for_slot, backend_name=self.name
        )
