"""The batched study kernel: all trials of a study in one array pass.

Every experiment in the reproduction is really a *study* — tens to hundreds of
independent trials of the same (protocol, adversary, horizon) triple.  The
per-trial vectorized kernel already resolves one run with arrays, but each
trial still pays the full Python setup: a ``Simulator``, two seed-tree spawns,
an adversary setup, a probability-vector probe, and ~50 small numpy calls.
This kernel amortizes all of that across the whole study:

* all per-node random streams are derived with one **bulk seed hash**
  (:func:`repro.rng.bulk_seed_states`) and replayed through pooled,
  state-reseeded generators — no ``SeedSequence``/``Generator`` objects per
  node;
* the broadcast matrices of all trials are stacked into one
  ``(ΣN_t) × (horizon+1)`` block, resolved with whole-matrix comparisons;
* successes are peeled in **lockstep rounds**: every round advances each
  still-active trial by exactly one success (its earliest eligible
  single-broadcaster slot), which is the sequential per-trial peel executed
  across the block diagonal with a handful of matrix operations per round;
* all ``T`` :class:`~repro.sim.results.SimulationResult` objects are emitted
  from shared prefix matrices.

Bit-for-bit reproducibility
---------------------------

The kernel reproduces the serial reference path exactly, trial for trial: the
same seeds are derived (read-only — the trial seed trees are never spawned
from, so any mid-flight bail-out can rerun them untouched), the same per-node
uniforms are drawn from the same PCG64 streams, and the same slot semantics
apply.  The property suite enforces equality against the serial reference
study.

Eligibility is the vectorized kernel's (vector-eligible protocol, oblivious
precompilable adversary) plus study-level constraints: no collectors and no
trace retention (both need per-slot records; the runner falls back to the
per-trial path for them).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...adversary.base import Adversary
from ...rng import ReusableGenerator
from ..results import SimulationResult
from .base import age_probability_profile
from .studysupport import (
    MAX_BLOCK_ELEMENTS as _MAX_BLOCK_ELEMENTS,
    SeedPlan as _SeedPlan,
    StudyProbe as _StudyProbe,
    compile_adversary_schedules,
    emit_study_results,
    iter_blocks as _blocks,
    study_early_stops,
)

__all__ = ["BatchedStudyKernel"]

AdversaryFactory = Callable[[], Adversary]


class BatchedStudyKernel:
    """Study-level backend: one numpy pass over all trials of a study."""

    name = "batched-study"

    # ------------------------------------------------------------ eligibility

    def unsupported_reason(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        collectors: Sequence = (),
        probe: Optional[_StudyProbe] = None,
    ) -> Optional[str]:
        """Why this study cannot run batched (``None`` when it can)."""
        if probe is None:
            probe = _StudyProbe(protocol_factory, adversary_factory)
        protocol = probe.protocol
        if not protocol.vector_eligible:
            return (
                f"protocol {protocol.name!r} is not vector-eligible "
                "(its broadcast decisions depend on feedback or are not "
                "independent per-slot Bernoulli draws)"
            )
        adversary = probe.adversary
        if not adversary.precompilable:
            return (
                f"adversary {adversary.describe()!r} is adaptive and cannot "
                "be precompiled into a whole-horizon schedule"
            )
        if config.keep_trace:
            return (
                "keep_trace requires per-slot records; use the vectorized or "
                "reference backend"
            )
        if collectors:
            return (
                "collectors require per-slot records; use the vectorized or "
                "reference backend"
            )
        return None

    def supports_study(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        collectors: Sequence = (),
        probe: Optional[_StudyProbe] = None,
    ) -> bool:
        return (
            self.unsupported_reason(
                protocol_factory, adversary_factory, config, collectors, probe
            )
            is None
        )

    # ------------------------------------------------------------------- run

    def run_study(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        trial_trees,  # List[SeedTree] or TrialSeedBatch
        protocol_name: str = "protocol",
        probe: Optional[_StudyProbe] = None,
    ) -> Optional[List[SimulationResult]]:
        """Execute all trials, or return ``None`` when the study must fall
        back to the per-trial path.

        A ``None`` return guarantees the trial seed trees were not consumed
        (seed derivation is read-only), so the caller can rerun every trial
        through :class:`~repro.sim.engine.Simulator` with identical results.
        """
        horizon = config.horizon
        start_time = time.perf_counter()

        probabilities = age_probability_profile(protocol_factory, horizon)
        if probabilities is None:
            return None

        plan = _SeedPlan.build(trial_trees)
        schedules = self._compile_adversaries(
            adversary_factory, config, plan, horizon
        )
        if schedules is None:
            return None
        adversaries, arrivals_all, jammed_all = schedules

        nodes_per_trial = arrivals_all.sum(axis=1)
        if nodes_per_trial.size and int(nodes_per_trial.max()) * (
            horizon + 1
        ) > _MAX_BLOCK_ELEMENTS:
            return None

        results: List[SimulationResult] = []
        for lo, hi in _blocks(nodes_per_trial, horizon):
            results.extend(
                self._run_block(
                    config,
                    plan,
                    adversaries[lo:hi],
                    arrivals_all[lo:hi],
                    jammed_all[lo:hi],
                    nodes_per_trial[lo:hi],
                    probabilities,
                    range(lo, hi),
                    protocol_name,
                )
            )

        # Wall time is measured for the whole study and attributed evenly:
        # individual trials have no meaningful separate duration here.
        per_trial = (time.perf_counter() - start_time) / max(1, len(results))
        for result in results:
            result.wall_time_seconds = per_trial
        return results

    # ------------------------------------------------------------- internals

    def _compile_adversaries(
        self,
        adversary_factory: AdversaryFactory,
        config,
        plan: "_SeedPlan",
        horizon: int,
    ) -> Optional[Tuple[List[Adversary], np.ndarray, np.ndarray]]:
        """Per-trial adversary setup + precompilation (shared study machinery)."""
        return compile_adversary_schedules(adversary_factory, config, plan, horizon)

    def _run_block(
        self,
        config,
        plan: "_SeedPlan",
        adversaries: List[Adversary],
        arrivals: np.ndarray,
        jammed: np.ndarray,
        nodes_per_trial: np.ndarray,
        probabilities: np.ndarray,
        trial_indices: range,
        protocol_name: str,
    ) -> List[SimulationResult]:
        horizon = config.horizon
        block_trials = arrivals.shape[0]
        columns = np.arange(horizon + 1)
        row_starts = np.concatenate(
            ([0], np.cumsum(nodes_per_trial))
        ).astype(np.int64)
        total_rows = int(row_starts[-1])

        # --- per-node uniforms, drawn from the exact per-node streams -------
        arrival_rows = [
            np.repeat(columns, arrivals[b]) for b in range(block_trials)
        ]
        arrival_slots = (
            np.concatenate(arrival_rows)
            if arrival_rows
            else np.zeros(0, dtype=np.int64)
        )
        uniforms = np.zeros((total_rows, horizon + 1))
        node_states = plan.node_generator_states(
            trial_indices, nodes_per_trial, total_rows
        )
        arrival_list = arrival_slots.tolist()
        if node_states is not None:
            pool = ReusableGenerator()
            reseed = pool.reseed
            for state, a, row in zip(node_states.tolist(), arrival_list, uniforms):
                reseed(state).random(out=row[a:])
        else:
            slow_generators = plan.slow_node_generators(
                trial_indices, nodes_per_trial
            )
            for generator, a, row in zip(slow_generators, arrival_list, uniforms):
                generator.random(out=row[a:])

        broadcasts = self._resolve_broadcasts(
            uniforms, arrival_slots, probabilities, horizon
        )
        del uniforms

        # --- per-trial counts and winner-index sums (block-diagonal) --------
        row_index = np.arange(total_rows, dtype=np.int64)
        uniform_nodes = nodes_per_trial.size and int(nodes_per_trial.min()) == int(
            nodes_per_trial.max()
        )
        if uniform_nodes and nodes_per_trial[0] > 0:
            # Equal trial sizes: fold the block into (T, N, H+1) and resolve
            # both per-trial reductions with two whole-array passes.
            per_trial = int(nodes_per_trial[0])
            folded = broadcasts.reshape(block_trials, per_trial, horizon + 1)
            counts = folded.sum(axis=1, dtype=np.int32)
            local = np.arange(per_trial, dtype=np.int64)
            index_sums = (folded * local[None, :, None]).sum(axis=1)
            index_sums += counts.astype(np.int64) * row_starts[:-1, None]
        else:
            counts = np.zeros((block_trials, horizon + 1), dtype=np.int32)
            index_sums = np.zeros((block_trials, horizon + 1), dtype=np.int64)
            for b in range(block_trials):
                lo, hi = int(row_starts[b]), int(row_starts[b + 1])
                if lo == hi:
                    continue
                rows = broadcasts[lo:hi]
                counts[b] = rows.sum(axis=0, dtype=np.int32)
                index_sums[b] = (rows * row_index[lo:hi, None]).sum(axis=0)

        # --- lockstep peel: one success per still-active trial per round ----
        # Each round advances every trial that still has an eligible
        # single-broadcaster slot by exactly one success (its earliest such
        # slot), which is the sequential per-trial peel in lockstep.  A trial
        # without a candidate can never regain one (only its own removals
        # change its counts), so the active set shrinks monotonically and the
        # total work is O(total_successes × horizon), as in the per-trial
        # kernel.
        eligible = ~jammed
        position = np.ones(block_trials, dtype=np.int64)
        success_slot = np.zeros(total_rows, dtype=np.int64)
        active = np.arange(block_trials)
        while active.size:
            candidates = (
                (counts[active] == 1)
                & eligible[active]
                & (columns[None, :] >= position[active, None])
            )
            has = candidates.any(axis=1)
            if not has.any():
                break
            sub = np.nonzero(has)[0]
            trial_ids = active[sub]
            slot_ids = candidates[sub].argmax(axis=1)
            winner_rows = index_sums[trial_ids, slot_ids]
            success_slot[winner_rows] = slot_ids
            removal = (
                broadcasts[winner_rows] & (columns[None, :] > slot_ids[:, None])
            ).astype(np.int32)
            counts[trial_ids] -= removal
            index_sums[trial_ids] -= winner_rows[:, None] * removal
            position[trial_ids] = slot_ids + 1
            active = trial_ids

        # --- outcome prefix matrices over the full horizon ------------------
        cum_arrivals = np.cumsum(arrivals, axis=1)
        stacked = np.stack((eligible & (counts == 1), jammed))
        stacked[:, :, 0] = False  # index 0 is unused in every prefix array
        # int64 so the per-trial row slices handed to PrefixCounters in
        # _emit are zero-copy views into this shared study matrix; exactly
        # the three emitted planes (successes, jammed, active) share the
        # base array, so the views pin no dead plane.
        prefix = np.empty((3, block_trials, horizon + 1), dtype=np.int64)
        np.cumsum(stacked, axis=2, out=prefix[:2])  # successes, jammed
        successes_before = np.zeros_like(cum_arrivals)
        successes_before[:, 1:] = prefix[0, :, :-1]
        active_full = (cum_arrivals - successes_before) > 0
        active_full[:, 0] = False
        np.cumsum(active_full, axis=1, out=prefix[2])
        # Silence is only ever needed as a scalar at each trial's stop slot,
        # so its cumulative counts live in a separate, short-lived array.
        silence = eligible & (counts == 0)
        silence[:, 0] = False
        silence_prefix = np.cumsum(silence, axis=1)

        simulated = self._early_stops(
            config, adversaries, cum_arrivals, prefix[0], horizon
        )
        silence_at = silence_prefix[np.arange(block_trials), simulated]

        # --- per-node statistics --------------------------------------------
        sim_per_row = np.repeat(simulated, nodes_per_trial)
        finished = (success_slot >= 1) & (success_slot <= sim_per_row)
        ends = np.where(finished, success_slot, sim_per_row)
        running_b = np.cumsum(broadcasts, axis=1, dtype=np.int32)
        broadcast_counts = np.take_along_axis(running_b, ends[:, None], axis=1)[
            :, 0
        ]
        del running_b, broadcasts

        return self._emit(
            adversaries,
            nodes_per_trial,
            row_starts,
            arrival_list,
            success_slot.tolist(),
            finished.tolist(),
            broadcast_counts.tolist(),
            simulated,
            cum_arrivals,
            prefix,
            silence_at,
            protocol_name,
        )

    @staticmethod
    def _resolve_broadcasts(
        uniforms: np.ndarray,
        arrival_slots: np.ndarray,
        probabilities: np.ndarray,
        horizon: int,
    ) -> np.ndarray:
        """``uniform < p(age)`` for every node row, aligned at its arrival.

        Rows are grouped by arrival slot (one comparison per group) when the
        arrival pattern is concentrated; scattered patterns use a single
        age-index gather instead.
        """
        distinct = np.unique(arrival_slots)
        if distinct.size == 1:
            a = int(distinct[0])
            broadcasts = np.zeros(uniforms.shape, dtype=bool)
            np.less(
                uniforms[:, a:],
                probabilities[1 : horizon - a + 2],
                out=broadcasts[:, a:],
            )
            return broadcasts
        if distinct.size <= 64:
            broadcasts = np.zeros(uniforms.shape, dtype=bool)
            for a in distinct.tolist():
                rows = np.nonzero(arrival_slots == a)[0]
                broadcasts[rows, a:] = (
                    uniforms[rows, a:] < probabilities[1 : horizon - a + 2]
                )
            return broadcasts
        ages = np.arange(horizon + 1)[None, :] - arrival_slots[:, None] + 1
        np.clip(ages, 0, horizon, out=ages)
        return uniforms < probabilities[ages]

    @staticmethod
    def _early_stops(
        config,
        adversaries: List[Adversary],
        cum_arrivals: np.ndarray,
        prefix_successes: np.ndarray,
        horizon: int,
    ) -> np.ndarray:
        return study_early_stops(
            config, adversaries, cum_arrivals, prefix_successes, horizon
        )

    @staticmethod
    def _emit(
        adversaries: List[Adversary],
        nodes_per_trial: np.ndarray,
        row_starts: np.ndarray,
        arrival_list: List[int],
        success_list: List[int],
        finished_list: List[bool],
        bc_list: List[int],
        simulated: np.ndarray,
        cum_arrivals: np.ndarray,
        prefix: np.ndarray,
        silence_at: np.ndarray,
        protocol_name: str,
    ) -> List[SimulationResult]:
        # Zero-copy views into the shared block matrices.  Every plane of
        # the backing arrays is referenced by some trial's counters, so
        # retention equals the columnar study data (early stops may truncate
        # a view below its backing row, the one case nbytes under-counts).
        return emit_study_results(
            [adversary.describe() for adversary in adversaries],
            nodes_per_trial,
            row_starts,
            arrival_list,
            success_list,
            finished_list,
            bc_list,
            simulated,
            cum_arrivals,
            prefix,
            silence_at,
            protocol_name,
            BatchedStudyKernel.name,
        )


