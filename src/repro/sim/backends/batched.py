"""The batched study kernel: all trials of a study in one array pass.

Every experiment in the reproduction is really a *study* — tens to hundreds of
independent trials of the same (protocol, adversary, horizon) triple.  The
per-trial vectorized kernel already resolves one run with arrays, but each
trial still pays the full Python setup: a ``Simulator``, two seed-tree spawns,
an adversary setup, a probability-vector probe, and ~50 small numpy calls.
This kernel amortizes all of that across the whole study:

* all per-node random streams are derived with one **bulk seed hash**
  (:func:`repro.rng.bulk_seed_states`) and replayed through pooled,
  state-reseeded generators — no ``SeedSequence``/``Generator`` objects per
  node;
* the broadcast matrices of all trials are stacked into one
  ``(ΣN_t) × (horizon+1)`` block, resolved with whole-matrix comparisons;
* successes are peeled in **lockstep rounds**: every round advances each
  still-active trial by exactly one success (its earliest eligible
  single-broadcaster slot), which is the sequential per-trial peel executed
  across the block diagonal with a handful of matrix operations per round;
* all ``T`` :class:`~repro.sim.results.SimulationResult` objects are emitted
  from shared prefix matrices.

Bit-for-bit reproducibility
---------------------------

The kernel reproduces the serial reference path exactly, trial for trial: the
same seeds are derived (read-only — the trial seed trees are never spawned
from, so any mid-flight bail-out can rerun them untouched), the same per-node
uniforms are drawn from the same PCG64 streams, and the same slot semantics
apply.  The property suite enforces equality against the serial reference
study.

Eligibility is the vectorized kernel's (vector-eligible protocol, oblivious
precompilable adversary) plus study-level constraints: no collectors and no
trace retention (both need per-slot records; the runner falls back to the
per-trial path for them).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...adversary.base import Adversary, ComposedAdversary
from ...errors import ConfigurationError
from ...rng import (
    ReusableGenerator,
    SeedTree,
    TrialSeedBatch,
    assemble_seed_words,
    bulk_bounded_pairs63,
    bulk_seed_states,
    fast_bounded_pairs_ok,
    fast_seed_path_ok,
    pcg64_state_dict,
    seed_states_for_entropies,
)
from ...types import NodeStats, SimulationSummary
from ..results import PrefixCounters, SimulationResult
from .base import age_probability_profile

__all__ = ["BatchedStudyKernel"]

#: Element cap (rows × columns) for one processing block.  Studies larger
#: than this are split into trial blocks; a single trial above the cap makes
#: the study ineligible (the per-trial path has its own replay fallback).
_MAX_BLOCK_ELEMENTS = 1 << 24

AdversaryFactory = Callable[[], Adversary]


class BatchedStudyKernel:
    """Study-level backend: one numpy pass over all trials of a study."""

    name = "batched-study"

    # ------------------------------------------------------------ eligibility

    def unsupported_reason(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        collectors: Sequence = (),
    ) -> Optional[str]:
        """Why this study cannot run batched (``None`` when it can)."""
        probe = protocol_factory()
        if not probe.vector_eligible:
            return (
                f"protocol {probe.name!r} is not vector-eligible "
                "(its broadcast decisions depend on feedback or are not "
                "independent per-slot Bernoulli draws)"
            )
        adversary = adversary_factory()
        if not adversary.precompilable:
            return (
                f"adversary {adversary.describe()!r} is adaptive and cannot "
                "be precompiled into a whole-horizon schedule"
            )
        if config.keep_trace:
            return (
                "keep_trace requires per-slot records; use the vectorized or "
                "reference backend"
            )
        if collectors:
            return (
                "collectors require per-slot records; use the vectorized or "
                "reference backend"
            )
        return None

    def supports_study(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        collectors: Sequence = (),
    ) -> bool:
        return (
            self.unsupported_reason(
                protocol_factory, adversary_factory, config, collectors
            )
            is None
        )

    # ------------------------------------------------------------------- run

    def run_study(
        self,
        protocol_factory,
        adversary_factory: AdversaryFactory,
        config,
        trial_trees,  # List[SeedTree] or TrialSeedBatch
        protocol_name: str = "protocol",
    ) -> Optional[List[SimulationResult]]:
        """Execute all trials, or return ``None`` when the study must fall
        back to the per-trial path.

        A ``None`` return guarantees the trial seed trees were not consumed
        (seed derivation is read-only), so the caller can rerun every trial
        through :class:`~repro.sim.engine.Simulator` with identical results.
        """
        horizon = config.horizon
        start_time = time.perf_counter()

        probabilities = age_probability_profile(protocol_factory, horizon)
        if probabilities is None:
            return None

        plan = _SeedPlan.build(trial_trees)
        schedules = self._compile_adversaries(
            adversary_factory, config, plan, horizon
        )
        if schedules is None:
            return None
        adversaries, arrivals_all, jammed_all = schedules

        nodes_per_trial = arrivals_all.sum(axis=1)
        if nodes_per_trial.size and int(nodes_per_trial.max()) * (
            horizon + 1
        ) > _MAX_BLOCK_ELEMENTS:
            return None

        results: List[SimulationResult] = []
        for lo, hi in _blocks(nodes_per_trial, horizon):
            results.extend(
                self._run_block(
                    config,
                    plan,
                    adversaries[lo:hi],
                    arrivals_all[lo:hi],
                    jammed_all[lo:hi],
                    nodes_per_trial[lo:hi],
                    probabilities,
                    range(lo, hi),
                    protocol_name,
                )
            )

        # Wall time is measured for the whole study and attributed evenly:
        # individual trials have no meaningful separate duration here.
        per_trial = (time.perf_counter() - start_time) / max(1, len(results))
        for result in results:
            result.wall_time_seconds = per_trial
        return results

    # ------------------------------------------------------------- internals

    def _compile_adversaries(
        self,
        adversary_factory: AdversaryFactory,
        config,
        plan: "_SeedPlan",
        horizon: int,
    ) -> Optional[Tuple[List[Adversary], np.ndarray, np.ndarray]]:
        """Set up and precompile one adversary per trial.

        Consumes exactly the randomness the serial path would: one generator
        spawned from each trial's adversary tree, then whatever the
        adversary's ``setup``/``precompile`` draw from it.
        """
        trials = plan.trials
        adversary_states = plan.adversary_generator_states()
        outer_pool = ReusableGenerator()
        arrivals_pool = ReusableGenerator()
        jamming_pool = ReusableGenerator()

        # The two per-trial strategy seeds (ComposedAdversary.strategy_seeds)
        # are two bounded draws from each trial's adversary generator; with
        # the verified replication they are derived for every trial in one
        # vectorized pass instead of reseeding a generator per trial.
        seed_pairs = None
        if adversary_states is not None and fast_bounded_pairs_ok():
            seed_pairs = bulk_bounded_pairs63(adversary_states).tolist()

        adversaries: List[Adversary] = []
        pending: List[Tuple[int, Adversary]] = []
        strategy_seeds: List[int] = []
        arrivals_all = np.zeros((trials, horizon + 1), dtype=np.int64)
        jammed_all = np.zeros((trials, horizon + 1), dtype=bool)

        for index in range(trials):
            adversary = adversary_factory()
            if not adversary.precompilable:
                return None
            adversaries.append(adversary)
            pooled = (
                adversary_states is not None
                and type(adversary) is ComposedAdversary
                and adversary.arrivals.transient_rng
                and adversary.jamming.transient_rng
            )
            if pooled:
                if seed_pairs is not None:
                    strategy_seeds.extend(seed_pairs[index])
                else:
                    rng = outer_pool.reseed(adversary_states[index])
                    strategy_seeds.extend(adversary.strategy_seeds(rng))
                pending.append((index, adversary))
            else:
                rng = plan.fresh_generator(adversary_states, index)
                adversary.setup(rng, horizon)
                schedule = adversary.precompile(horizon)
                if schedule is None:
                    return None
                arrivals_all[index] = schedule.arrivals
                jammed_all[index] = schedule.jammed

        if pending:
            states = seed_states_for_entropies(strategy_seeds)
            for slot, (index, adversary) in enumerate(pending):
                # A strategy that never draws keeps the pool's stale stream;
                # its seed was still consumed from the adversary generator,
                # exactly as in the serial path.
                arrivals_rng = (
                    arrivals_pool.reseed(states[2 * slot])
                    if adversary.arrivals.consumes_rng
                    else arrivals_pool.generator
                )
                jamming_rng = (
                    jamming_pool.reseed(states[2 * slot + 1])
                    if adversary.jamming.consumes_rng
                    else jamming_pool.generator
                )
                adversary.arrivals.setup(arrivals_rng, horizon)
                adversary.jamming.setup(jamming_rng, horizon)
                schedule = adversary.precompile(horizon)
                if schedule is None:
                    return None
                arrivals_all[index] = schedule.arrivals
                jammed_all[index] = schedule.jammed

        cum = np.cumsum(arrivals_all, axis=1)
        over_trials, over_slots = np.nonzero(cum > config.max_nodes)
        if over_trials.size:
            # nonzero returns row-major order, so index 0 is the first
            # violating trial's first violating slot — the same slot the
            # serial run of that trial would have raised on.
            raise ConfigurationError(
                f"adversary exceeded max_nodes={config.max_nodes} "
                f"at slot {int(over_slots[0])}"
            )
        return adversaries, arrivals_all, jammed_all

    def _run_block(
        self,
        config,
        plan: "_SeedPlan",
        adversaries: List[Adversary],
        arrivals: np.ndarray,
        jammed: np.ndarray,
        nodes_per_trial: np.ndarray,
        probabilities: np.ndarray,
        trial_indices: range,
        protocol_name: str,
    ) -> List[SimulationResult]:
        horizon = config.horizon
        block_trials = arrivals.shape[0]
        columns = np.arange(horizon + 1)
        row_starts = np.concatenate(
            ([0], np.cumsum(nodes_per_trial))
        ).astype(np.int64)
        total_rows = int(row_starts[-1])

        # --- per-node uniforms, drawn from the exact per-node streams -------
        arrival_rows = [
            np.repeat(columns, arrivals[b]) for b in range(block_trials)
        ]
        arrival_slots = (
            np.concatenate(arrival_rows)
            if arrival_rows
            else np.zeros(0, dtype=np.int64)
        )
        uniforms = np.zeros((total_rows, horizon + 1))
        node_states = plan.node_generator_states(
            trial_indices, nodes_per_trial, total_rows
        )
        arrival_list = arrival_slots.tolist()
        if node_states is not None:
            pool = ReusableGenerator()
            reseed = pool.reseed
            for state, a, row in zip(node_states.tolist(), arrival_list, uniforms):
                reseed(state).random(out=row[a:])
        else:
            slow_generators = plan.slow_node_generators(
                trial_indices, nodes_per_trial
            )
            for generator, a, row in zip(slow_generators, arrival_list, uniforms):
                generator.random(out=row[a:])

        broadcasts = self._resolve_broadcasts(
            uniforms, arrival_slots, probabilities, horizon
        )
        del uniforms

        # --- per-trial counts and winner-index sums (block-diagonal) --------
        row_index = np.arange(total_rows, dtype=np.int64)
        uniform_nodes = nodes_per_trial.size and int(nodes_per_trial.min()) == int(
            nodes_per_trial.max()
        )
        if uniform_nodes and nodes_per_trial[0] > 0:
            # Equal trial sizes: fold the block into (T, N, H+1) and resolve
            # both per-trial reductions with two whole-array passes.
            per_trial = int(nodes_per_trial[0])
            folded = broadcasts.reshape(block_trials, per_trial, horizon + 1)
            counts = folded.sum(axis=1, dtype=np.int32)
            local = np.arange(per_trial, dtype=np.int64)
            index_sums = (folded * local[None, :, None]).sum(axis=1)
            index_sums += counts.astype(np.int64) * row_starts[:-1, None]
        else:
            counts = np.zeros((block_trials, horizon + 1), dtype=np.int32)
            index_sums = np.zeros((block_trials, horizon + 1), dtype=np.int64)
            for b in range(block_trials):
                lo, hi = int(row_starts[b]), int(row_starts[b + 1])
                if lo == hi:
                    continue
                rows = broadcasts[lo:hi]
                counts[b] = rows.sum(axis=0, dtype=np.int32)
                index_sums[b] = (rows * row_index[lo:hi, None]).sum(axis=0)

        # --- lockstep peel: one success per still-active trial per round ----
        # Each round advances every trial that still has an eligible
        # single-broadcaster slot by exactly one success (its earliest such
        # slot), which is the sequential per-trial peel in lockstep.  A trial
        # without a candidate can never regain one (only its own removals
        # change its counts), so the active set shrinks monotonically and the
        # total work is O(total_successes × horizon), as in the per-trial
        # kernel.
        eligible = ~jammed
        position = np.ones(block_trials, dtype=np.int64)
        success_slot = np.zeros(total_rows, dtype=np.int64)
        active = np.arange(block_trials)
        while active.size:
            candidates = (
                (counts[active] == 1)
                & eligible[active]
                & (columns[None, :] >= position[active, None])
            )
            has = candidates.any(axis=1)
            if not has.any():
                break
            sub = np.nonzero(has)[0]
            trial_ids = active[sub]
            slot_ids = candidates[sub].argmax(axis=1)
            winner_rows = index_sums[trial_ids, slot_ids]
            success_slot[winner_rows] = slot_ids
            removal = (
                broadcasts[winner_rows] & (columns[None, :] > slot_ids[:, None])
            ).astype(np.int32)
            counts[trial_ids] -= removal
            index_sums[trial_ids] -= winner_rows[:, None] * removal
            position[trial_ids] = slot_ids + 1
            active = trial_ids

        # --- outcome prefix matrices over the full horizon ------------------
        cum_arrivals = np.cumsum(arrivals, axis=1)
        stacked = np.stack((eligible & (counts == 1), jammed))
        stacked[:, :, 0] = False  # index 0 is unused in every prefix array
        # int64 so the per-trial row slices handed to PrefixCounters in
        # _emit are zero-copy views into this shared study matrix; exactly
        # the three emitted planes (successes, jammed, active) share the
        # base array, so the views pin no dead plane.
        prefix = np.empty((3, block_trials, horizon + 1), dtype=np.int64)
        np.cumsum(stacked, axis=2, out=prefix[:2])  # successes, jammed
        successes_before = np.zeros_like(cum_arrivals)
        successes_before[:, 1:] = prefix[0, :, :-1]
        active_full = (cum_arrivals - successes_before) > 0
        active_full[:, 0] = False
        np.cumsum(active_full, axis=1, out=prefix[2])
        # Silence is only ever needed as a scalar at each trial's stop slot,
        # so its cumulative counts live in a separate, short-lived array.
        silence = eligible & (counts == 0)
        silence[:, 0] = False
        silence_prefix = np.cumsum(silence, axis=1)

        simulated = self._early_stops(
            config, adversaries, cum_arrivals, prefix[0], horizon
        )
        silence_at = silence_prefix[np.arange(block_trials), simulated]

        # --- per-node statistics --------------------------------------------
        sim_per_row = np.repeat(simulated, nodes_per_trial)
        finished = (success_slot >= 1) & (success_slot <= sim_per_row)
        ends = np.where(finished, success_slot, sim_per_row)
        running_b = np.cumsum(broadcasts, axis=1, dtype=np.int32)
        broadcast_counts = np.take_along_axis(running_b, ends[:, None], axis=1)[
            :, 0
        ]
        del running_b, broadcasts

        return self._emit(
            adversaries,
            nodes_per_trial,
            row_starts,
            arrival_list,
            success_slot.tolist(),
            finished.tolist(),
            broadcast_counts.tolist(),
            simulated,
            cum_arrivals,
            prefix,
            silence_at,
            protocol_name,
        )

    @staticmethod
    def _resolve_broadcasts(
        uniforms: np.ndarray,
        arrival_slots: np.ndarray,
        probabilities: np.ndarray,
        horizon: int,
    ) -> np.ndarray:
        """``uniform < p(age)`` for every node row, aligned at its arrival.

        Rows are grouped by arrival slot (one comparison per group) when the
        arrival pattern is concentrated; scattered patterns use a single
        age-index gather instead.
        """
        distinct = np.unique(arrival_slots)
        if distinct.size == 1:
            a = int(distinct[0])
            broadcasts = np.zeros(uniforms.shape, dtype=bool)
            np.less(
                uniforms[:, a:],
                probabilities[1 : horizon - a + 2],
                out=broadcasts[:, a:],
            )
            return broadcasts
        if distinct.size <= 64:
            broadcasts = np.zeros(uniforms.shape, dtype=bool)
            for a in distinct.tolist():
                rows = np.nonzero(arrival_slots == a)[0]
                broadcasts[rows, a:] = (
                    uniforms[rows, a:] < probabilities[1 : horizon - a + 2]
                )
            return broadcasts
        ages = np.arange(horizon + 1)[None, :] - arrival_slots[:, None] + 1
        np.clip(ages, 0, horizon, out=ages)
        return uniforms < probabilities[ages]

    @staticmethod
    def _early_stops(
        config,
        adversaries: List[Adversary],
        cum_arrivals: np.ndarray,
        prefix_successes: np.ndarray,
        horizon: int,
    ) -> np.ndarray:
        simulated = np.full(len(adversaries), horizon, dtype=np.int64)
        if not config.stop_when_drained:
            return simulated
        occupancy_after = cum_arrivals - prefix_successes
        for b, adversary in enumerate(adversaries):
            stop_candidates = np.nonzero(
                (occupancy_after[b] == 0) & (cum_arrivals[b] > 0)
            )[0]
            for t in stop_candidates:
                t = int(t)
                if t >= 1 and adversary.arrivals_exhausted(t):
                    simulated[b] = t
                    break
        return simulated

    @staticmethod
    def _emit(
        adversaries: List[Adversary],
        nodes_per_trial: np.ndarray,
        row_starts: np.ndarray,
        arrival_list: List[int],
        success_list: List[int],
        finished_list: List[bool],
        bc_list: List[int],
        simulated: np.ndarray,
        cum_arrivals: np.ndarray,
        prefix: np.ndarray,
        silence_at: np.ndarray,
        protocol_name: str,
    ) -> List[SimulationResult]:
        prefix_succ, prefix_jam, prefix_act = prefix
        trial_axis = np.arange(len(adversaries))
        at_sim = lambda matrix: matrix[trial_axis, simulated].tolist()  # noqa: E731
        succ_at = at_sim(prefix_succ)
        jam_at = at_sim(prefix_jam)
        sil_at = silence_at.tolist()
        act_at = at_sim(prefix_act)
        arr_at = at_sim(cum_arrivals)
        sim_list = simulated.tolist()
        start_list = row_starts.tolist()
        results: List[SimulationResult] = []
        for b, adversary in enumerate(adversaries):
            sim = sim_list[b]
            lo, hi = start_list[b], start_list[b + 1]
            successes = succ_at[b]
            silences = sil_at[b]
            node_stats: Dict[int, NodeStats] = {}
            total_broadcasts = 0
            for row in range(lo, hi):
                arrival = arrival_list[row]
                if arrival > sim:
                    continue
                done = finished_list[row]
                count = bc_list[row]
                total_broadcasts += count
                node_id = row - lo
                node_stats[node_id] = NodeStats(
                    node_id=node_id,
                    arrival_slot=arrival,
                    success_slot=success_list[row] if done else None,
                    broadcast_count=count,
                )
            summary = SimulationSummary(
                total_slots=sim,
                active_slots=act_at[b],
                successes=successes,
                collisions=sim - successes - silences,
                silent_slots=silences,
                jammed_slots=jam_at[b],
                arrivals=arr_at[b],
                total_broadcasts=total_broadcasts,
            )
            results.append(
                SimulationResult(
                    summary=summary,
                    node_stats=node_stats,
                    # Zero-copy views into the shared block matrices.  Every
                    # plane of the backing arrays is referenced by some
                    # trial's counters, so retention equals the columnar
                    # study data (early stops may truncate a view below its
                    # backing row, the one case nbytes under-counts).
                    counters=PrefixCounters(
                        active=prefix_act[b, : sim + 1],
                        arrivals=cum_arrivals[b, : sim + 1],
                        jammed=prefix_jam[b, : sim + 1],
                        successes=prefix_succ[b, : sim + 1],
                    ),
                    protocol_name=protocol_name,
                    adversary_name=adversary.describe(),
                    horizon=sim,
                    seed=None,
                    trace=None,
                    backend=BatchedStudyKernel.name,
                )
            )
        return results


def _blocks(nodes_per_trial: np.ndarray, horizon: int):
    """Split trials into contiguous blocks bounded by the element cap."""
    trials = len(nodes_per_trial)
    lo = 0
    while lo < trials:
        hi = lo
        elements = 0
        while hi < trials:
            trial_elements = int(nodes_per_trial[hi]) * (horizon + 1)
            if hi > lo and elements + trial_elements > _MAX_BLOCK_ELEMENTS:
                break
            elements += trial_elements
            hi += 1
        yield lo, hi
        lo = hi


class _SeedPlan:
    """Read-only derivation of every stream the serial path would spawn.

    The serial path derives, per trial root sequence with spawn key ``K``:
    the adversary generator at ``K + (base, 0)`` and node ``i``'s generator at
    ``K + (base + 1, i, 0)`` (``base`` being the root's spawned-children
    count, normally 0).  This plan reproduces those spawn keys arithmetically
    so the trees themselves are never advanced.
    """

    def __init__(
        self,
        source,  # List[SeedTree] or TrialSeedBatch
        trials: int,
        entropy: Optional[int],
        keys: Optional[np.ndarray],
        bases: Optional[np.ndarray],
    ) -> None:
        self._source = source
        self._trials = trials
        self._entropy = entropy
        self._keys = keys
        self._bases = bases

    @property
    def trials(self) -> int:
        return self._trials

    @property
    def fast(self) -> bool:
        return self._keys is not None

    def _tree(self, index: int) -> SeedTree:
        trees = (
            self._source.trees
            if isinstance(self._source, TrialSeedBatch)
            else self._source
        )
        return trees[index]

    @classmethod
    def build(cls, source) -> "_SeedPlan":
        trials = len(source)
        if not fast_seed_path_ok() or not trials:
            return cls(source, trials, None, None, None)
        if isinstance(source, TrialSeedBatch):
            # Children of one root: keys follow arithmetically without ever
            # materializing the per-trial SeedSequence objects.
            entropy, root_key, first = source.spawn_descriptor()
            if not isinstance(entropy, int):
                return cls(source, trials, None, None, None)
            key_matrix = np.empty((trials, len(root_key) + 1), dtype=np.uint64)
            key_matrix[:, : len(root_key)] = np.asarray(root_key, dtype=np.uint64)
            key_matrix[:, -1] = first + np.arange(trials, dtype=np.uint64)
            bases = np.zeros(trials, dtype=np.uint64)
        else:
            entropies = set()
            keys = []
            base_list = []
            for tree in source:
                sequence = tree.sequence
                if not isinstance(sequence.entropy, int):
                    return cls(source, trials, None, None, None)
                entropies.add(sequence.entropy)
                keys.append(sequence.spawn_key)
                base_list.append(sequence.n_children_spawned)
            lengths = {len(key) for key in keys}
            if len(entropies) != 1 or len(lengths) != 1:
                return cls(source, trials, None, None, None)
            entropy = entropies.pop()
            key_matrix = np.asarray(keys, dtype=np.uint64)
            bases = np.asarray(base_list, dtype=np.uint64)
        if key_matrix.size and key_matrix.max() > 0xFFFFFFFF:
            return cls(source, trials, None, None, None)
        return cls(source, trials, entropy, key_matrix, bases)

    # -- fast-path state derivation ---------------------------------------

    def adversary_generator_states(self) -> Optional[np.ndarray]:
        """``generate_state`` words of each trial's adversary generator."""
        if not self.fast:
            return None
        keys = np.concatenate(
            (
                self._keys,
                self._bases[:, None],
                np.zeros((self.trials, 1), dtype=np.uint64),
            ),
            axis=1,
        )
        words = assemble_seed_words(self._entropy, keys)
        return None if words is None else bulk_seed_states(words)

    def node_generator_states(
        self,
        trial_indices: range,
        nodes_per_trial: np.ndarray,
        total_rows: int,
    ) -> Optional[np.ndarray]:
        """State words of every node generator in the block, in row order."""
        if not self.fast or total_rows == 0:
            return None if not self.fast else np.zeros((0, 4), dtype=np.uint64)
        lo = trial_indices.start
        hi = trial_indices.stop
        repeats = nodes_per_trial.astype(np.int64)
        keys = np.empty(
            (total_rows, self._keys.shape[1] + 3), dtype=np.uint64
        )
        keys[:, : self._keys.shape[1]] = np.repeat(
            self._keys[lo:hi], repeats, axis=0
        )
        keys[:, -3] = np.repeat(self._bases[lo:hi] + 1, repeats)
        keys[:, -2] = np.concatenate(
            [np.arange(n, dtype=np.uint64) for n in repeats]
        )
        keys[:, -1] = 0
        words = assemble_seed_words(self._entropy, keys)
        return None if words is None else bulk_seed_states(words)

    # -- slow-path fallbacks ----------------------------------------------

    def fresh_generator(
        self, states: Optional[np.ndarray], index: int
    ) -> np.random.Generator:
        """A standalone generator for this trial's adversary stream.

        Fresh object (never pooled), so adversaries may retain it safely.
        """
        if states is not None:
            bit_generator = np.random.PCG64(0)
            bit_generator.state = pcg64_state_dict(states[index])
            return np.random.Generator(bit_generator)
        sequence = self._tree(index).sequence
        base = sequence.n_children_spawned
        child = np.random.SeedSequence(
            entropy=sequence.entropy,
            spawn_key=tuple(sequence.spawn_key) + (base, 0),
        )
        return np.random.default_rng(child)

    def slow_node_generators(
        self, trial_indices: range, nodes_per_trial: np.ndarray
    ):
        """Per-node generators via real SeedSequence objects (fallback)."""
        for offset, index in enumerate(trial_indices):
            sequence = self._tree(index).sequence
            base = sequence.n_children_spawned
            key = tuple(sequence.spawn_key)
            for i in range(int(nodes_per_trial[offset])):
                child = np.random.SeedSequence(
                    entropy=sequence.entropy,
                    spawn_key=key + (base + 1, i, 0),
                )
                yield np.random.default_rng(child)
