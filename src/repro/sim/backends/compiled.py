"""The ``lockstep-jit`` study kernel: a fused, compilable slot loop.

The numpy lockstep kernel advances the whole population per slot with array
operations, but still pays dozens of numpy dispatches per slot.  This kernel
lowers the entire study — protocol program, RNG streams, adversary driver,
bookkeeping — into flat int64/float64 arrays and runs **one** loop over the
horizon (:func:`repro.sim.backends._interp.fused_loop`), compiled with
``numba.njit(cache=True)`` when numba is importable.

Selection mirrors the runtime RNG self-verification pattern used everywhere
else in the tree: the interpreter must first reproduce real ``default_rng``
draws bit for bit (:func:`compiled_streams_ok`, replaying the same
interleaved pattern :func:`repro.rng.lockstep_streams_ok` pins for the numpy
pool).  Any missing piece — no numba, no compiled tables for the protocol, a
driver outside the three columnar families, a failed self-test — **demotes
the study to the numpy lockstep kernel** with identical results (seed
derivation is read-only, so the rerun consumes the same streams).  Demoted
results carry ``backend="lockstep"``.

Environment switches:

* ``REPRO_DISABLE_NUMBA`` — never use the compiled interpreter at all
  (every ``lockstep-jit`` request demotes to the numpy kernel);
* ``REPRO_COMPILED_FORCE_PYTHON`` — run the interpreter as plain Python
  (slow; exercised by the property suite so the exact compiled code path is
  tested without numba).
"""

from __future__ import annotations

import importlib.util
import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...adversary.columnar import (
    AdaptiveChaserLockstepDriver,
    LockstepAdversaryDriver,
    PrecompiledLockstepDriver,
    ReactiveJammingLockstepDriver,
)
from ...errors import ConfigurationError
from ...protocols.base import LOCKSTEP_SENTINEL
from ...rng import pcg64_bulk_init
from ..artifacts import streams_verified
from ..health import note_demotion
from ..results import SimulationResult
from .lockstep import (
    _BLOCK_TRIAL_SLOTS,
    LockstepStudyKernel,
    build_lockstep_driver,
    emit_lockstep_results,
)
from .studysupport import MAX_BLOCK_ELEMENTS, SeedPlan, StudyProbe

__all__ = ["CompiledStudyKernel", "compiled_streams_ok", "interpreter_mode"]


def _env_enabled(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


def interpreter_mode() -> str:
    """Which interpreter the compiled kernel would use right now.

    ``"numba"`` (compiled), ``"python"`` (the same code path uncompiled,
    forced by ``REPRO_COMPILED_FORCE_PYTHON``) or ``"off"`` (numba missing
    or ``REPRO_DISABLE_NUMBA`` set — every study demotes to the numpy
    lockstep kernel).  Read at dispatch time, so tests can flip the
    environment per study.
    """
    if _env_enabled("REPRO_DISABLE_NUMBA"):
        return "off"
    if _env_enabled("REPRO_COMPILED_FORCE_PYTHON"):
        return "python"
    try:
        import numba  # noqa: F401
    except Exception:
        return "off"
    return "numba"


# -- interpreter materialization -------------------------------------------

_KERNEL_CACHE: Dict[str, Optional[object]] = {}


def _build_numba_module():
    """A private copy of ``_interp`` with every function njit-compiled.

    ``numba.njit(cache=True)`` requires plain module-level functions (the
    on-disk cache cannot serialize closures), and the decorated dispatchers
    must replace the plain functions *in the module the callees are looked
    up in*.  Decorating the imported singleton would leak compiled functions
    into the pure-python mode, so a fresh module object is executed from the
    same spec — never inserted into ``sys.modules`` — and rebound wholesale.
    Compilation itself is lazy (first call), at which point every global
    already resolves to a dispatcher.
    """
    try:
        import numba
    except Exception:
        return None
    try:
        spec = importlib.util.find_spec("repro.sim.backends._interp")
        if spec is None or spec.loader is None:
            return None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        jit = numba.njit(cache=True)
        for name in module.INTERP_FUNCTIONS:
            setattr(module, name, jit(getattr(module, name)))
        return module
    except Exception:
        return None


def _kernels_for(mode: str):
    """The interpreter module for ``mode`` (``None`` when unavailable)."""
    if mode not in _KERNEL_CACHE:
        if mode == "python":
            from . import _interp

            _KERNEL_CACHE[mode] = _interp
        elif mode == "numba":
            _KERNEL_CACHE[mode] = _build_numba_module()
        else:
            _KERNEL_CACHE[mode] = None
    return _KERNEL_CACHE[mode]


# -- runtime stream verification -------------------------------------------

_STREAMS_OK: Dict[str, bool] = {}


def compiled_streams_ok(mode: Optional[str] = None) -> bool:
    """Whether the interpreter reproduces real ``default_rng`` streams.

    Same contract as :func:`repro.rng.lockstep_streams_ok`, but replayed
    through the actual interpreter functions (compiled or python) via
    :func:`repro.sim.backends._interp.stream_selftest`.  Verified once per
    interpreter mode per process; any mismatch or exception permanently
    demotes that mode's studies to the numpy lockstep kernel.
    """
    if mode is None:
        mode = interpreter_mode()
    if mode == "off":
        return False
    if mode not in _STREAMS_OK:
        kernels = _kernels_for(mode)
        _STREAMS_OK[mode] = kernels is not None and _verify_compiled_streams(
            kernels
        )
    return _STREAMS_OK[mode]


def _verify_compiled_streams(kernels) -> bool:
    try:
        sequences = [
            np.random.SeedSequence(entropy, spawn_key=key)
            for entropy, key in [
                (20210219, (1, 0, 0)),
                (7, (2, 5, 0)),
                ((1 << 80) + 3, (0, 1, 0)),
            ]
        ]
        words = np.stack([s.generate_state(4, np.uint64) for s in sequences])
        shi, slo, ihi, ilo = (
            np.ascontiguousarray(limb) for limb in pcg64_bulk_init(words)
        )
        count = len(sequences)
        buf32 = np.zeros(count, dtype=np.uint64)
        has32 = np.zeros(count, dtype=bool)
        out_doubles = np.zeros((2, count), dtype=np.float64)
        out_pow2 = np.zeros((3, count), dtype=np.int64)
        out_bounded = np.zeros((5, count), dtype=np.int64)
        out_scalar = np.zeros((3, count), dtype=np.int64)
        with np.errstate(over="ignore"):
            kernels.stream_selftest(
                shi, slo, ihi, ilo, buf32, has32,
                out_doubles, out_pow2, out_bounded, out_scalar,
            )
        references = [np.random.default_rng(s) for s in sequences]
        for row, generator in enumerate(references):
            if out_doubles[0, row] != generator.random():
                return False
            if not np.array_equal(
                out_pow2[:, row], generator.integers(8, 16, size=3)
            ):
                return False
            if out_doubles[1, row] != generator.random():
                return False
            for j, bound in enumerate((1, 2, 7, 100, 1 << 20)):
                if out_bounded[j, row] != generator.integers(0, bound):
                    return False
            for j, bound in enumerate((3, 1 << 34, 1 << 63)):
                if out_scalar[j, row] != generator.integers(0, bound):
                    return False
        return True
    except Exception:  # pragma: no cover - defensive: never break dispatch
        return False


# -- the kernel -------------------------------------------------------------


class CompiledStudyKernel:
    """Study-level backend: the fused slot loop, numba-compiled when possible.

    Eligibility is identical to the numpy lockstep kernel (same probe-based
    checks); everything the compiled tier *additionally* needs is resolved
    at run time with silent demotion, so an explicit ``lockstep-jit``
    request always produces results — compiled when it can, numpy lockstep
    (``backend="lockstep"``) when it cannot.
    """

    name = "lockstep-jit"

    def __init__(self) -> None:
        self._numpy = LockstepStudyKernel()

    # ------------------------------------------------------------ eligibility

    def unsupported_reason(
        self,
        protocol_factory,
        adversary_factory,
        config,
        collectors: Sequence = (),
        probe: Optional[StudyProbe] = None,
    ) -> Optional[str]:
        return self._numpy.unsupported_reason(
            protocol_factory, adversary_factory, config, collectors, probe
        )

    def supports_study(
        self,
        protocol_factory,
        adversary_factory,
        config,
        collectors: Sequence = (),
        probe: Optional[StudyProbe] = None,
    ) -> bool:
        return (
            self.unsupported_reason(
                protocol_factory, adversary_factory, config, collectors, probe
            )
            is None
        )

    def auto_preferred(
        self,
        adversary_factory,
        config,
        trials: int,
        probe: Optional[StudyProbe] = None,
    ) -> bool:
        """``auto`` escalates exactly when the numpy lockstep tier would.

        The compiled tier strictly dominates the numpy kernel when it runs
        at all (and demotes to it otherwise), so the same population
        pressure gate applies.
        """
        return self._numpy.auto_preferred(
            adversary_factory, config, trials, probe
        )

    # ------------------------------------------------------------------- run

    def run_study(
        self,
        protocol_factory,
        adversary_factory,
        config,
        trial_trees,
        protocol_name: str = "protocol",
        probe: Optional[StudyProbe] = None,
    ) -> Optional[List[SimulationResult]]:
        """Execute all trials compiled, demoting gracefully when impossible.

        Returns ``None`` only when the *numpy lockstep kernel* also cannot
        run the study (same contract: trial seed trees not consumed, the
        caller falls back to the per-trial ladder).
        """
        start_time = time.perf_counter()
        if probe is None:
            probe = StudyProbe(protocol_factory, adversary_factory)
        results = _run_compiled(
            adversary_factory, config, trial_trees, protocol_name, probe
        )
        if results is None:
            # Demote: the numpy kernel reruns from the same read-only seed
            # derivation, producing identical results (backend="lockstep").
            return self._numpy.run_study(
                protocol_factory,
                adversary_factory,
                config,
                trial_trees,
                protocol_name,
                probe,
            )
        per_trial = (time.perf_counter() - start_time) / max(1, len(results))
        for result in results:
            result.wall_time_seconds = per_trial
        return results


def _run_compiled(
    adversary_factory, config, trial_trees, protocol_name, probe
) -> Optional[List[SimulationResult]]:
    """The compiled path proper; ``None`` means demote to numpy lockstep.

    Every bail-out used to be silent; each now records a ``demotion``
    health event with the concrete reason before returning ``None``.
    """
    mode = interpreter_mode()
    if mode == "off":
        _demote(
            "compiled interpreter is off (REPRO_DISABLE_NUMBA set or numba "
            "not importable)"
        )
        return None
    program = probe.program
    if program is None or config.keep_trace or config.horizon >= 2**31:
        _demote(
            "no columnar program"
            if program is None
            else "keep_trace retains per-slot events"
            if config.keep_trace
            else "horizon exceeds the interpreter's int32 slot budget"
        )
        return None
    tables = program.compiled_tables(config.horizon)
    if tables is None:
        _demote("protocol program cannot lower to compiled tables")
        return None
    if not streams_verified() or not compiled_streams_ok(mode):
        _demote(
            f"RNG stream self-test failed for the {mode!r} interpreter mode"
        )
        return None
    kernels = _kernels_for(mode)
    if kernels is None:
        _demote(f"no interpreter module for mode {mode!r}")
        return None
    plan = SeedPlan.build(trial_trees)
    if not plan.fast:
        _demote("trial seeds not derivable on the bulk fast path")
        return None

    block_trials = max(1, _BLOCK_TRIAL_SLOTS // (config.horizon + 1))
    results: List[SimulationResult] = []
    for lo in range(0, plan.trials, block_trials):
        hi = min(plan.trials, lo + block_trials)
        block_plan = (
            plan if (lo, hi) == (0, plan.trials) else plan.restrict(lo, hi)
        )
        block = _run_block(
            kernels, mode, adversary_factory, config, block_plan, tables,
            protocol_name,
        )
        if block is None:
            return None
        results.extend(block)
    return results


def _demote(reason: str) -> None:
    """Record the compiled tier handing this study to the numpy kernel."""
    note_demotion(CompiledStudyKernel.name, LockstepStudyKernel.name, reason)


def _lower_driver(
    driver: LockstepAdversaryDriver, config, horizon: int, trials: int
):
    """Flatten a columnar adversary driver into interpreter arrays.

    Returns ``(adv_mode, arr_sched, jam_sched, adv_i, adv_f, capacity)`` or
    ``None`` for drivers outside the three columnar families (the generic
    per-instance driver calls arbitrary Python per slot and cannot lower).
    Schedule-backed modes raise the same :class:`ConfigurationError` the
    numpy kernel would on a ``max_nodes`` violation.
    """
    int_dummy = np.zeros((1, 1), dtype=np.int64)
    jam_dummy = np.zeros((1, 1), dtype=np.uint8)
    if type(driver) is PrecompiledLockstepDriver:
        arr = np.ascontiguousarray(driver.arrival_schedule, dtype=np.int64)
        jam = np.ascontiguousarray(driver._jammed).astype(np.uint8)
        adv_i = np.zeros((trials, 1), dtype=np.int64)
        adv_f = np.zeros((trials, 1), dtype=np.float64)
        capacity = _schedule_capacity(arr, config, horizon)
        return 0, arr, jam, adv_i, adv_f, capacity
    if type(driver) is ReactiveJammingLockstepDriver:
        arr = np.ascontiguousarray(driver.arrival_schedule, dtype=np.int64)
        # [seen, pending, jammed_so_far, burst]
        adv_i = np.zeros((trials, 4), dtype=np.int64)
        adv_i[:, 3] = driver._burst
        adv_f = np.ascontiguousarray(
            driver._fraction, dtype=np.float64
        ).reshape(trials, 1)
        capacity = _schedule_capacity(arr, config, horizon)
        return 1, arr, jam_dummy, adv_i, adv_f, capacity
    if type(driver) is AdaptiveChaserLockstepDriver:
        # [pending_arr, pending_jam, injected, jammed, slots, per_success,
        #  total_budget (-1 = unbounded), jam_burst, seed_arrivals]
        adv_i = np.zeros((trials, 9), dtype=np.int64)
        adv_i[:, 5] = driver._per_success
        adv_i[:, 6] = np.where(
            driver._unbounded, np.int64(-1), driver._total_budget
        )
        adv_i[:, 7] = driver._jam_burst
        adv_i[:, 8] = driver._seed_arrivals
        adv_f = np.ascontiguousarray(
            driver._jam_fraction, dtype=np.float64
        ).reshape(trials, 1)
        # Worst-case occupancy: the whole budget, or seeds plus one chased
        # burst per slot; the interpreter cannot grow, so size for the peak
        # (capped at max_nodes — beyond it the run raises anyway).
        bound = np.where(
            driver._unbounded,
            driver._seed_arrivals + driver._per_success * horizon,
            driver._total_budget,
        )
        capacity = max(1, min(int(bound.max(initial=0)), int(config.max_nodes)))
        return 2, int_dummy, jam_dummy, adv_i, adv_f, capacity
    return None


def _schedule_capacity(arr: np.ndarray, config, horizon: int) -> int:
    cum = np.cumsum(arr, axis=1)
    over_trials, over_slots = np.nonzero(cum > config.max_nodes)
    if over_trials.size:
        raise ConfigurationError(
            f"adversary exceeded max_nodes={config.max_nodes} "
            f"at slot {int(over_slots[0])}"
        )
    return max(1, int(cum[:, horizon].max())) if cum.size else 1


def _run_block(
    kernels, mode, adversary_factory, config, plan, tables, protocol_name,
    driver: Optional[LockstepAdversaryDriver] = None,
) -> Optional[List[SimulationResult]]:
    horizon = config.horizon
    trials = plan.trials
    if driver is None:
        # The fused dispatcher passes a pre-merged driver; the per-study
        # path builds one from the factory as before.
        driver = build_lockstep_driver(adversary_factory, config, plan)
    if driver is None:
        _demote("no columnar lockstep driver for this adversary")
        return None
    lowered = _lower_driver(driver, config, horizon, trials)
    if lowered is None:
        _demote(
            "adversary driver is outside the three lowerable columnar "
            "families"
        )
        return None
    adv_mode, arr_sched, jam_sched, adv_i, adv_f, capacity = lowered

    rows = trials * capacity
    plan_width = max(1, tables.plan_width)
    if rows * plan_width > MAX_BLOCK_ELEMENTS:
        _demote(
            f"block of {rows}×{plan_width} elements exceeds the "
            "interpreter's memory budget"
        )
        return None

    # Seed every (trial, node) stream up front: one bulk hash for the whole
    # rectangle, exactly the states NodeStreamPool.seed_rows would install.
    node_ids = np.tile(np.arange(capacity, dtype=np.int64), trials)
    trial_ids = np.repeat(np.arange(trials, dtype=np.int64), capacity)
    states = plan.node_states_pairs(trial_ids, node_ids)
    if states is None:
        _demote("node RNG states not bulk-derivable for these seed trees")
        return None
    shi, slo, ihi, ilo = (
        np.ascontiguousarray(limb) for limb in pcg64_bulk_init(states)
    )
    buf32 = np.zeros(rows, dtype=np.uint64)
    has32 = np.zeros(rows, dtype=bool)

    node_i = np.zeros((rows, tables.int_state_width), dtype=np.int64)
    node_f = np.zeros(
        (rows, max(1, tables.float_state_width)), dtype=np.float64
    )
    plan_m = np.full((rows, plan_width), LOCKSTEP_SENTINEL, dtype=np.int64)

    arrival_col = np.zeros(rows, dtype=np.int64)
    success_col = np.zeros(rows, dtype=np.int64)
    broadcasts_col = np.zeros(rows, dtype=np.int64)
    node_count = np.zeros(trials, dtype=np.int64)
    success_count = np.zeros(trials, dtype=np.int64)
    simulated = np.full(trials, horizon, dtype=np.int64)
    arrivals_m = np.zeros((trials, horizon + 1), dtype=np.int64)
    jam_m = np.zeros((trials, horizon + 1), dtype=bool)
    success_m = np.zeros((trials, horizon + 1), dtype=bool)
    counts_m = np.zeros((trials, horizon + 1), dtype=np.int32)

    # Schedule-backed drivers answer exhaustion as a monotone threshold in
    # the slot (all arrival strategies are "done after slot s"), so the
    # first exhausted slot binary-searches in O(log horizon) pure queries.
    # The chaser (mode 2) is counter-based and resolved inside the loop.
    exhaust_from = np.full(trials, horizon + 1, dtype=np.int64)
    if config.stop_when_drained and adv_mode != 2:
        for t in range(trials):
            if not driver.exhausted(t, horizon):
                continue
            lo_slot, hi_slot = 1, horizon
            while lo_slot < hi_slot:
                mid = (lo_slot + hi_slot) // 2
                if driver.exhausted(t, mid):
                    hi_slot = mid
                else:
                    lo_slot = mid + 1
            exhaust_from[t] = lo_slot

    def invoke():
        return kernels.fused_loop(
            np.int64(horizon), np.int64(trials), np.int64(capacity),
            np.int64(config.max_nodes),
            np.int64(1 if config.stop_when_drained else 0),
            np.int64(tables.opcode), tables.prog_i, tables.prog_f,
            tables.stage_counts, tables.table_ctrl, tables.table_data,
            node_i, node_f, plan_m,
            shi, slo, ihi, ilo, buf32, has32,
            np.int64(adv_mode), arr_sched, jam_sched, adv_i, adv_f,
            exhaust_from,
            arrival_col, success_col, broadcasts_col,
            node_count, success_count, simulated,
            arrivals_m, jam_m, success_m, counts_m,
        )

    try:
        if mode == "numba":
            status = invoke()
        else:
            with np.errstate(over="ignore"):
                status = invoke()
    except Exception as exc:
        _demote(f"interpreter raised {type(exc).__name__}: {exc}")
        return None
    if int(status) != 0:
        # Status 1: max_nodes exceeded mid-run (adaptive arrivals) — the
        # numpy rerun raises the identical ConfigurationError.  Status 2:
        # defensive capacity overflow — the numpy kernel grows instead.
        _demote(
            "interpreter bailed mid-run "
            + (
                "(max_nodes exceeded; the numpy rerun raises the same error)"
                if int(status) == 1
                else "(capacity overflow; the numpy kernel grows instead)"
            )
        )
        return None

    return emit_lockstep_results(
        [driver.describe(t) for t in range(trials)],
        horizon, capacity, node_count,
        arrival_col, success_col, broadcasts_col,
        simulated, arrivals_m, jam_m, success_m, counts_m,
        protocol_name, CompiledStudyKernel.name,
    )
