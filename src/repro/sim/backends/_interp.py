"""Scalar interpreter of the fused lockstep slot loop.

This module is the *source form* of the ``lockstep-jit`` study backend's
kernel: plain module-level functions written in the numba-compatible subset
of Python/numpy, with no closures and no Python objects.  The compiled
backend (:mod:`repro.sim.backends.compiled`) consumes it in two ways:

* **numba mode** — a private copy of this module is materialized and every
  function is rebound to its ``numba.njit(cache=True)`` dispatcher, so the
  whole slot loop fuses into one compiled function (module-level functions
  keep numba's on-disk cache usable, which closures would not);
* **python mode** — the functions run as-is, giving a dependency-free
  reference execution of the very same code path (slow, used by the
  property suite and as a debugging aid via ``REPRO_COMPILED_FORCE_PYTHON``).

Everything here replays the per-node ``default_rng`` streams bit for bit:
the RNG primitives are the scalar transcription of
:class:`repro.rng.NodeStreamPool`'s vectorized PCG64 limb arithmetic (same
128-bit multiplier split, same buffered Lemire rejection), and the protocol
families (:data:`~repro.protocols.base.OP_CJZ`,
:data:`~repro.protocols.base.OP_WINDOWED`,
:data:`~repro.protocols.base.OP_SAWTOOTH`) consume draws in exactly the
order and kind their columnar lockstep programs do.  Divergence is caught at
runtime by :func:`repro.sim.backends.compiled.compiled_streams_ok`, which
replays :func:`stream_selftest` against real numpy generators.

In python mode the ``uint64`` arithmetic relies on numpy's wrapping scalar
semantics; callers must wrap invocations in ``np.errstate(over="ignore")``.
"""

from __future__ import annotations

import numpy as np

from ...protocols.base import (
    LOCKSTEP_SENTINEL,
    OP_CJZ,
    OP_SAWTOOTH,
    OP_WINDOWED,
)

__all__ = ["fused_loop", "stream_selftest", "INTERP_FUNCTIONS"]

# PCG64 multiplier limbs (identical to repro.rng's vectorized constants).
_M_HI = np.uint64(0x2360ED051FC65DA4)
_M_LO = np.uint64(0x4385DF649FCCF645)
_MASK32 = np.uint64(0xFFFFFFFF)
_TWO32 = np.uint64(0x100000000)
_FULL64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_U64_0 = np.uint64(0)
_U64_1 = np.uint64(1)
_SH11 = np.uint64(11)
_SH32 = np.uint64(32)
_SH58 = np.uint64(58)
_SH63 = np.uint64(63)
_SH64 = np.uint64(64)
_INV53 = 1.0 / 9007199254740992.0  # 2**-53


def _mulhi64(a, b):
    """High 64 bits of the 64x64 product, via 32-bit limbs."""
    a0 = a & _MASK32
    a1 = a >> _SH32
    b0 = b & _MASK32
    b1 = b >> _SH32
    lo_lo = a0 * b0
    m1 = a1 * b0 + (lo_lo >> _SH32)
    m2 = a0 * b1 + (m1 & _MASK32)
    return a1 * b1 + (m1 >> _SH32) + (m2 >> _SH32)


def _raw64(shi, slo, ihi, ilo, r):
    """One raw PCG64 output word for row ``r``; advances the row's state."""
    s_hi = shi[r]
    s_lo = slo[r]
    hi = _mulhi64(s_lo, _M_LO) + s_lo * _M_HI + s_hi * _M_LO
    lo = s_lo * _M_LO
    lo2 = lo + ilo[r]
    carry = _U64_1 if lo2 < lo else _U64_0
    hi2 = hi + ihi[r] + carry
    shi[r] = hi2
    slo[r] = lo2
    rotation = hi2 >> _SH58
    value = hi2 ^ lo2
    return (value >> rotation) | (value << ((_SH64 - rotation) & _SH63))


def _double(shi, slo, ihi, ilo, r):
    """One ``Generator.random()`` double (never touches the 32-bit buffer)."""
    return np.float64(_raw64(shi, slo, ihi, ilo, r) >> _SH11) * _INV53


def _next_u32(shi, slo, ihi, ilo, buf32, has32, r):
    """One buffered ``next_uint32`` (low half first, high half buffered)."""
    if has32[r]:
        has32[r] = False
        return buf32[r]
    raw = _raw64(shi, slo, ihi, ilo, r)
    buf32[r] = raw >> _SH32
    has32[r] = True
    return raw & _MASK32


def _bounded_u32(shi, slo, ihi, ilo, buf32, has32, r, rng):
    """``integers(0, rng + 1)`` for ``rng < 2**32 - 1`` (buffered Lemire)."""
    if rng == _U64_0:
        return np.int64(0)
    rng_excl = rng + _U64_1
    m = _next_u32(shi, slo, ihi, ilo, buf32, has32, r) * rng_excl
    leftover = m & _MASK32
    if leftover < rng_excl:
        threshold = (_TWO32 - rng_excl) % rng_excl
        while leftover < threshold:
            m = _next_u32(shi, slo, ihi, ilo, buf32, has32, r) * rng_excl
            leftover = m & _MASK32
    return np.int64(m >> _SH32)


def _bounded_any(shi, slo, ihi, ilo, buf32, has32, r, span):
    """``integers(0, span + 1)`` for any non-negative int64 ``span``.

    Same mixed-width dispatch as ``lockstep_bounded_offsets`` +
    ``NodeStreamPool.bounded_scalar``: sub-32-bit spans through the buffered
    path, wider spans through numpy's 64-bit Lemire rejection.
    """
    rng = np.uint64(span)
    if rng < _MASK32:
        return _bounded_u32(shi, slo, ihi, ilo, buf32, has32, r, rng)
    if rng == _MASK32:
        return np.int64(_next_u32(shi, slo, ihi, ilo, buf32, has32, r))
    if rng == _FULL64:
        return np.int64(_raw64(shi, slo, ihi, ilo, r))
    rng_excl = rng + _U64_1
    raw = _raw64(shi, slo, ihi, ilo, r)
    hi = _mulhi64(raw, rng_excl)
    leftover = raw * rng_excl
    if leftover < rng_excl:
        threshold = (_U64_0 - rng_excl) % rng_excl
        while leftover < threshold:
            raw = _raw64(shi, slo, ihi, ilo, r)
            hi = _mulhi64(raw, rng_excl)
            leftover = raw * rng_excl
    return np.int64(hi)


def _pow2_draw(shi, slo, ihi, ilo, buf32, has32, r, k):
    """One ``integers(2**k, 2**(k+1))`` draw (zero rejection threshold)."""
    u = _next_u32(shi, slo, ihi, ilo, buf32, has32, r)
    return np.int64(u >> np.uint64(32 - k)) + (np.int64(1) << np.int64(k))


def _rint(x):
    """``np.rint`` (round half to even) for non-negative floats, as int64."""
    f = np.floor(x)
    d = x - f
    if d > 0.5:
        f += 1.0
    elif d == 0.5:
        h = f / 2.0
        if np.floor(h) != h:
            f += 1.0
    return np.int64(f)


# --------------------------------------------------------------------------
# Protocol families.  Per-node state layouts (``node_i`` columns):
#
# OP_CJZ:       [phase, anchor1, anchor2, anchor3, stage, plan_ptr,
#                next_planned];  prog_i = [global_clock]
# OP_WINDOWED:  [window, failures, next_attempt];
#               prog_i = [initial, max(-1 = none), has_degree];
#               prog_f = [degree]
# OP_SAWTOOTH:  [window, phase_end];  node_f = [probability];
#               prog_i = [initial, max(-1 = none)]
# --------------------------------------------------------------------------


def _windowed_reschedule(
    node_i, r, from_slot, shi, slo, ihi, ilo, buf32, has32
):
    span = node_i[r, 0] - 1
    offset = _bounded_any(shi, slo, ihi, ilo, buf32, has32, r, span)
    node_i[r, 2] = from_slot + offset


def _program_arrive(
    opcode, r, slot, node_i, node_f, prog_i, prog_f,
    shi, slo, ihi, ilo, buf32, has32,
):
    if opcode == OP_CJZ:
        if prog_i[0] != 0:
            # Global-clock variant: straight to Phase 2, anchored at the
            # next odd slot (the globally known control channel).
            node_i[r, 0] = 2
            node_i[r, 2] = slot if slot % 2 == 1 else slot + 1
        else:
            node_i[r, 0] = 1
            node_i[r, 1] = slot
        node_i[r, 4] = -1
        node_i[r, 6] = LOCKSTEP_SENTINEL
    elif opcode == OP_WINDOWED:
        if prog_i[2] != 0:
            node_i[r, 1] = 0
            grown = _rint(1.0 ** prog_f[0])
            node_i[r, 0] = max(prog_i[0], grown)
        else:
            node_i[r, 0] = prog_i[0]
        _windowed_reschedule(node_i, r, slot, shi, slo, ihi, ilo, buf32, has32)
    else:  # OP_SAWTOOTH
        node_i[r, 0] = prog_i[0]
        probability = 1.0 / np.float64(prog_i[0])
        node_f[r, 0] = probability
        node_i[r, 1] = slot + max(np.int64(1), _rint(1.0 / probability))


def _cjz_enter_stage(
    r, k, node_i, plan, stage_counts, shi, slo, ihi, ilo, buf32, has32
):
    """Draw, sort and dedupe the send plan of freshly entered stage ``k``."""
    width = plan.shape[1]
    if k == 0:
        # integers(1, 2) is numpy's zero-range path: no randomness consumed.
        plan[r, 0] = 1
        for j in range(1, width):
            plan[r, j] = LOCKSTEP_SENTINEL
    else:
        count = stage_counts[k]
        for j in range(count):
            plan[r, j] = _pow2_draw(shi, slo, ihi, ilo, buf32, has32, r, k)
        for a in range(1, count):
            value = plan[r, a]
            b = a - 1
            while b >= 0 and plan[r, b] > value:
                plan[r, b + 1] = plan[r, b]
                b -= 1
            plan[r, b + 1] = value
        # Duplicates collapse (drawing with replacement): keep the sorted
        # uniques at the front, sentinel-fill the rest.
        previous = plan[r, 0]
        w = 1
        for a in range(1, count):
            current = plan[r, a]
            if current != previous:
                plan[r, w] = current
                w += 1
                previous = current
        for a in range(w, width):
            plan[r, a] = LOCKSTEP_SENTINEL
    node_i[r, 5] = 0
    node_i[r, 6] = plan[r, 0]
    node_i[r, 4] = k


def _program_step(
    opcode, r, slot, node_i, node_f, plan, prog_i, prog_f,
    stage_counts, table_ctrl, table_data,
    shi, slo, ihi, ilo, buf32, has32,
):
    if opcode == OP_CJZ:
        phase = node_i[r, 0]
        parity = slot & 1
        if phase < 3:
            anchor = node_i[r, 1] if phase == 1 else node_i[r, 2]
            if (anchor & 1) == parity and slot >= anchor:
                local = ((slot - anchor) >> 1) + 1
                k = np.int64(0)
                value = local
                while value > 1:
                    value >>= 1
                    k += 1
                if k != node_i[r, 4]:
                    _cjz_enter_stage(
                        r, k, node_i, plan, stage_counts,
                        shi, slo, ihi, ilo, buf32, has32,
                    )
                if node_i[r, 6] == local:
                    pointer = node_i[r, 5] + 1
                    node_i[r, 5] = pointer
                    node_i[r, 6] = plan[r, pointer]
                    return True
            return False
        anchor3 = node_i[r, 3]
        on_ctrl = ((anchor3 + 1) & 1) == (slot & 1)
        if on_ctrl:
            local = ((slot - anchor3 - 1) >> 1) + 1
            probability = table_ctrl[local]
        else:
            local = ((slot - anchor3 - 2) >> 1) + 1
            probability = table_data[local]
        return _double(shi, slo, ihi, ilo, r) < probability
    if opcode == OP_WINDOWED:
        return node_i[r, 2] == slot
    # OP_SAWTOOTH
    if slot >= node_i[r, 1]:
        doubled = node_f[r, 0] * 2.0
        if doubled > 0.5 + 1e-12:
            window = node_i[r, 0] * 2
            if prog_i[1] >= 0 and window > prog_i[1]:
                window = prog_i[1]
            node_i[r, 0] = window
            probability = 1.0 / np.float64(window)
        else:
            probability = doubled
        node_f[r, 0] = probability
        node_i[r, 1] = slot + max(np.int64(1), _rint(1.0 / probability))
    return _double(shi, slo, ihi, ilo, r) < node_f[r, 0]


def _program_feedback(
    opcode, r, slot, send, trial_success, own, node_i, node_f,
    prog_i, prog_f, shi, slo, ihi, ilo, buf32, has32,
):
    if opcode == OP_CJZ:
        if trial_success and not own:
            phase = node_i[r, 0]
            parity = slot & 1
            if phase == 1:
                node_i[r, 0] = 2
                node_i[r, 2] = slot + 1
                node_i[r, 4] = -1
                node_i[r, 6] = LOCKSTEP_SENTINEL
            elif phase == 2:
                anchor2 = node_i[r, 2]
                if (anchor2 & 1) == parity and slot >= anchor2:
                    node_i[r, 0] = 3
                    node_i[r, 3] = slot
            else:
                anchor3 = node_i[r, 3]
                if ((anchor3 + 1) & 1) == parity and slot > anchor3:
                    node_i[r, 3] = slot
    elif opcode == OP_WINDOWED:
        if send and not trial_success:
            if prog_i[2] != 0:
                failures = node_i[r, 1] + 1
                node_i[r, 1] = failures
                grown = _rint(np.float64(failures + 1) ** prog_f[0])
                window = max(prog_i[0], grown)
            else:
                window = node_i[r, 0] * 2
                if prog_i[1] >= 0 and window > prog_i[1]:
                    window = prog_i[1]
            node_i[r, 0] = window
            _windowed_reschedule(
                node_i, r, slot + 1, shi, slo, ihi, ilo, buf32, has32
            )
        elif (not send) and (not own) and slot >= node_i[r, 2]:
            # Defensive slipped-attempt reschedule, mirroring on_feedback.
            _windowed_reschedule(
                node_i, r, slot + 1, shi, slo, ihi, ilo, buf32, has32
            )
    # OP_SAWTOOTH: time-driven, feedback is ignored.


# --------------------------------------------------------------------------
# The fused slot loop.
#
# Adversary lowering (``adv_mode``):
#   0 — precompiled: arr_sched/jam_sched are full (T, H+1) schedules;
#   1 — reactive jamming: arr_sched is real, jamming is replayed from
#       adv_i = [seen, pending, jammed_so_far, burst], adv_f = [fraction];
#   2 — success chaser: adv_i = [pending_arr, pending_jam, injected,
#       jammed, slots, per_success, total_budget (-1 = unbounded),
#       jam_burst, seed_arrivals], adv_f = [jam_fraction].
#
# Returns 0 on success, 1 when max_nodes is exceeded mid-run (the caller
# demotes; the numpy rerun raises the identical ConfigurationError) and 2 on
# a capacity overflow (defensive; the numpy kernel grows instead).
# --------------------------------------------------------------------------


def fused_loop(
    horizon, trials, capacity, max_nodes, stop_when_drained,
    opcode, prog_i, prog_f, stage_counts, table_ctrl, table_data,
    node_i, node_f, plan,
    shi, slo, ihi, ilo, buf32, has32,
    adv_mode, arr_sched, jam_sched, adv_i, adv_f, exhaust_from,
    arrival_col, success_col, broadcasts_col,
    node_count, success_count, simulated,
    arrivals_m, jam_m, success_m, counts_m,
):
    total_rows = trials * capacity
    active_rows = np.empty(total_rows, np.int64)
    active_trials = np.empty(total_rows, np.int64)
    sends = np.zeros(total_rows, np.uint8)
    counts = np.zeros(trials, np.int64)
    winner_idx = np.zeros(trials, np.int64)
    success_f = np.zeros(trials, np.uint8)
    arr_buf = np.zeros(trials, np.int64)
    jam_buf = np.zeros(trials, np.uint8)
    trial_active = np.ones(trials, np.uint8)
    n_active = 0

    for slot in range(1, horizon + 1):
        # ----------------------------------------------- adversary actions
        for t in range(trials):
            arrivals = np.int64(0)
            jam = False
            if trial_active[t] == 1:
                if adv_mode == 0:
                    arrivals = arr_sched[t, slot]
                    jam = jam_sched[t, slot] != 0
                elif adv_mode == 1:
                    arrivals = arr_sched[t, slot]
                    adv_i[t, 0] += 1
                    budget = np.int64(
                        np.floor(adv_f[t, 0] * np.float64(adv_i[t, 0]))
                    )
                    if adv_i[t, 1] > 0 and adv_i[t, 2] < budget:
                        jam = True
                        adv_i[t, 1] -= 1
                        adv_i[t, 2] += 1
                else:
                    adv_i[t, 4] += 1
                    arrivals = adv_i[t, 0]
                    if slot == 1:
                        arrivals += adv_i[t, 8]
                    if adv_i[t, 6] >= 0:
                        remaining = adv_i[t, 6] - adv_i[t, 2]
                        if remaining < 0:
                            remaining = np.int64(0)
                        if arrivals > remaining:
                            arrivals = remaining
                    adv_i[t, 0] = 0
                    adv_i[t, 2] += arrivals
                    jam_budget = np.int64(
                        np.floor(adv_f[t, 0] * np.float64(adv_i[t, 4]))
                    )
                    if adv_i[t, 1] > 0 and adv_i[t, 3] < jam_budget:
                        jam = True
                        adv_i[t, 1] -= 1
                        adv_i[t, 3] += 1
            arr_buf[t] = arrivals
            jam_buf[t] = 1 if jam else 0
            jam_m[t, slot] = jam

        # ------------------------------------------------------ injection
        for t in range(trials):
            arrivals = arr_buf[t]
            if arrivals > 0:
                base = node_count[t]
                after = base + arrivals
                if adv_mode == 2 and after > max_nodes:
                    return np.int64(1)
                if after > capacity:
                    return np.int64(2)
                for i in range(arrivals):
                    row = t * capacity + base + i
                    arrival_col[row] = slot
                    _program_arrive(
                        opcode, row, slot, node_i, node_f, prog_i, prog_f,
                        shi, slo, ihi, ilo, buf32, has32,
                    )
                    active_rows[n_active] = row
                    active_trials[n_active] = t
                    n_active += 1
                node_count[t] = after
            arrivals_m[t, slot] = arrivals

        # ----------------------------------------------------------- step
        for t in range(trials):
            counts[t] = 0
        for idx in range(n_active):
            row = active_rows[idx]
            send = _program_step(
                opcode, row, slot, node_i, node_f, plan, prog_i, prog_f,
                stage_counts, table_ctrl, table_data,
                shi, slo, ihi, ilo, buf32, has32,
            )
            if send:
                sends[idx] = 1
                t = active_trials[idx]
                counts[t] += 1
                broadcasts_col[row] += 1
                winner_idx[t] = idx
            else:
                sends[idx] = 0
        for t in range(trials):
            counts_m[t, slot] = np.int32(counts[t])

        # ----------------------------------------------------- resolution
        any_success = False
        for t in range(trials):
            won = counts[t] == 1 and jam_buf[t] == 0 and trial_active[t] == 1
            if won:
                any_success = True
                success_f[t] = 1
                winner_row = active_rows[winner_idx[t]]
                success_col[winner_row] = slot
                success_m[t, slot] = True
                success_count[t] += 1
            else:
                success_f[t] = 0

        # ------------------------------------------------------- feedback
        for idx in range(n_active):
            row = active_rows[idx]
            t = active_trials[idx]
            trial_success = success_f[t] == 1
            send = sends[idx] == 1
            _program_feedback(
                opcode, row, slot, send, trial_success,
                trial_success and send, node_i, node_f, prog_i, prog_f,
                shi, slo, ihi, ilo, buf32, has32,
            )

        # ------------------------------------------------ driver feedback
        if any_success:
            if adv_mode == 1:
                for t in range(trials):
                    if success_f[t] == 1:
                        adv_i[t, 1] = adv_i[t, 3]
            elif adv_mode == 2:
                for t in range(trials):
                    if success_f[t] == 1:
                        adv_i[t, 0] += adv_i[t, 5]
                        adv_i[t, 1] = adv_i[t, 7]
            # Winner departure: compact the active arrays.
            write = 0
            for idx in range(n_active):
                t = active_trials[idx]
                if success_f[t] == 1 and sends[idx] == 1:
                    continue
                active_rows[write] = active_rows[idx]
                active_trials[write] = t
                sends[write] = sends[idx]
                write += 1
            n_active = write

        # ----------------------------------------------------- early stop
        if stop_when_drained != 0:
            for t in range(trials):
                if (
                    trial_active[t] == 1
                    and node_count[t] > 0
                    and node_count[t] == success_count[t]
                ):
                    if adv_mode == 2:
                        exhausted = (
                            adv_i[t, 6] >= 0
                            and adv_i[t, 2] >= adv_i[t, 6]
                            and adv_i[t, 0] == 0
                        )
                    else:
                        exhausted = slot >= exhaust_from[t]
                    if exhausted:
                        trial_active[t] = 0
                        simulated[t] = slot
            alive = False
            for t in range(trials):
                if trial_active[t] == 1:
                    alive = True
                    break
            if not alive:
                break
    return np.int64(0)


def stream_selftest(
    shi, slo, ihi, ilo, buf32, has32, out_doubles, out_pow2, out_bounded,
    out_scalar,
):
    """Replay the verification draw pattern for every row.

    Per row: one double, three ``integers(8, 16)`` draws, another double
    (must skip the 32-bit buffer), buffered-Lemire bounded draws for bounds
    1/2/7/100/2**20 (resuming from the buffered half), then the mixed-width
    scalar path for bounds 3, 2**34 and 2**63 — the same interleaving
    ``repro.rng._verify_lockstep_streams`` pins for the numpy pool.
    """
    n = shi.shape[0]
    for r in range(n):
        out_doubles[0, r] = _double(shi, slo, ihi, ilo, r)
        for j in range(3):
            out_pow2[j, r] = _pow2_draw(
                shi, slo, ihi, ilo, buf32, has32, r, np.int64(3)
            )
        out_doubles[1, r] = _double(shi, slo, ihi, ilo, r)
        out_bounded[0, r] = _bounded_u32(
            shi, slo, ihi, ilo, buf32, has32, r, _U64_0
        )
        out_bounded[1, r] = _bounded_u32(
            shi, slo, ihi, ilo, buf32, has32, r, _U64_1
        )
        out_bounded[2, r] = _bounded_u32(
            shi, slo, ihi, ilo, buf32, has32, r, np.uint64(6)
        )
        out_bounded[3, r] = _bounded_u32(
            shi, slo, ihi, ilo, buf32, has32, r, np.uint64(99)
        )
        out_bounded[4, r] = _bounded_u32(
            shi, slo, ihi, ilo, buf32, has32, r, np.uint64((1 << 20) - 1)
        )
        out_scalar[0, r] = _bounded_any(
            shi, slo, ihi, ilo, buf32, has32, r, np.int64(2)
        )
        out_scalar[1, r] = _bounded_any(
            shi, slo, ihi, ilo, buf32, has32, r, np.int64((1 << 34) - 1)
        )
        out_scalar[2, r] = _bounded_any(
            shi, slo, ihi, ilo, buf32, has32, r, np.int64((1 << 63) - 1)
        )


#: Compilation order for the numba lowering: callees strictly before
#: callers, so every global resolves to a dispatcher by the time its caller
#: is compiled.
INTERP_FUNCTIONS = (
    "_mulhi64",
    "_raw64",
    "_double",
    "_next_u32",
    "_bounded_u32",
    "_bounded_any",
    "_pow2_draw",
    "_rint",
    "_windowed_reschedule",
    "_program_arrive",
    "_cjz_enter_stage",
    "_program_step",
    "_program_feedback",
    "fused_loop",
    "stream_selftest",
)
