"""Process-wide cache of seed-independent dispatch artifacts.

Every study dispatch pays a set of fixed costs that depend only on the
*spec*, never on the trial seeds: building a protocol program's compiled
probability tables (``compiled_tables``), the once-per-process RNG stream
self-verifications (:func:`repro.rng.lockstep_streams_ok` and the compiled
interpreter's replay), and probing an oblivious adversary's peak single-slot
arrival count.  A sweep re-pays all of them per point; this module memoizes
them process-wide so repeated dispatches of equivalent specs are O(1).

What is (and is not) cacheable
------------------------------

Only **seed-independent** artifacts live here.  A compiled table is a pure
function of ``(spec_kind, spec params, horizon)``; the stream verification
is a pure property of the numpy build; a peak-arrival probe runs the
adversary under a fixed throwaway generator by design.  Per-trial adversary
*schedules* (``compile_adversary_schedules``) consume each trial's own RNG
streams and are therefore seed-dependent — caching them would break the
seed-for-seed contract, so they are deliberately never cached.

Invalidation mirrors the fault cache (:data:`repro.faults._ENV_CACHE`): the
whole cache is tied to the current ``REPRO_FAULTS`` value and the
programmatically activated plan, so flipping the fault regime (e.g. a chaos
test toggling :func:`repro.faults.injected`) never serves artifacts
computed under a different one.

Callers key their entries themselves; keys must be hashable and are
namespaced by convention with a leading tag string (``("cjz-tables", ...)``).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from .. import faults

__all__ = [
    "cached_artifact",
    "canonical_key",
    "clear_artifacts",
    "streams_verified",
]

_CACHE: Dict[Hashable, Any] = {}
#: (raw REPRO_FAULTS value, programmatically active plan) the cache was
#: populated under; any change flushes everything.
_GENERATION: Tuple[Optional[str], Optional[object]] = (None, None)
_LOCK = threading.RLock()

#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


def _current_generation() -> Tuple[Optional[str], Optional[object]]:
    return (os.environ.get("REPRO_FAULTS"), faults._ACTIVE)


def _ensure_generation() -> None:
    global _GENERATION
    generation = _current_generation()
    if generation[0] != _GENERATION[0] or generation[1] is not _GENERATION[1]:
        _CACHE.clear()
        _GENERATION = generation


def cached_artifact(key: Hashable, builder: Callable[[], Any]) -> Any:
    """The memoized value for ``key``, building (and storing) it on a miss.

    ``builder`` runs at most once per key per fault generation; its result —
    including ``None`` — is returned verbatim afterwards.  Cached values are
    shared across studies, so callers must treat them as immutable.
    """
    with _LOCK:
        _ensure_generation()
        value = _CACHE.get(key, _MISSING)
        if value is not _MISSING:
            return value
    # Build outside the lock: table construction may be expensive, and
    # duplicate concurrent builds are harmless (pure functions of the key).
    value = builder()
    with _LOCK:
        _ensure_generation()
        return _CACHE.setdefault(key, value)


def clear_artifacts() -> None:
    """Drop every cached artifact (tests; normally generation-driven)."""
    global _GENERATION
    with _LOCK:
        _CACHE.clear()
        _GENERATION = (None, None)


def canonical_key(data: Any) -> str:
    """Deterministic JSON encoding of spec-shaped data for cache keys."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)


def streams_verified() -> bool:
    """Once-per-process :func:`repro.rng.lockstep_streams_ok`, shared.

    The numpy lockstep kernel, the compiled kernel and the fused dispatcher
    all need the same runtime RNG replication check; routing it through the
    artifact cache runs the replay exactly once per process (per fault
    generation) instead of once per dispatch path.
    """
    from ..rng import lockstep_streams_ok

    return bool(cached_artifact(("lockstep-streams-ok",), lockstep_streams_ok))
