"""The slot-synchronous simulation engine.

Each slot proceeds in the order the model prescribes:

1. the adversary picks its action (how many nodes to inject, whether to jam);
2. newly injected nodes join the system and initialize their protocols;
3. every active node decides whether to broadcast;
4. the channel resolves the slot (success / silence / collision, jamming wins);
5. feedback is dispatched to all active nodes and to the adversary;
6. a successful node leaves the system immediately;
7. metrics and (optionally) the trace are updated.

Slot kernels
------------

The loop itself is executed by a pluggable *slot kernel*
(:mod:`repro.sim.backends`).  The :class:`Simulator` only assembles the run
configuration, spawns the two seed trees every kernel must draw from (one
generator for the adversary, then one generator per node in arrival order) and
delegates to the selected kernel:

* ``backend="reference"`` — the per-node Python loop above, verbatim; the
  semantics-defining implementation that supports every configuration.
* ``backend="vectorized"`` — numpy array resolution of whole horizons for
  protocols that opt into the
  :attr:`~repro.protocols.base.Protocol.vector_eligible` contract
  (independent per-slot Bernoulli decisions, feedback-oblivious) against
  precompilable (oblivious) adversaries.  Bit-for-bit identical to the
  reference kernel where it applies.
* ``backend="auto"`` (default) — the vectorized kernel when eligible, the
  reference kernel otherwise.

Two further backends exist one level up and are selected through
:func:`repro.sim.run_trials` / :class:`repro.sim.TrialRunner` (a single
:class:`Simulator` rejects them): ``"batched-study"`` executes a whole
multi-trial study in one array pass, and ``"lockstep"`` advances all trials
slot by slot in array lockstep — the fast path for feedback-driven
protocols (the paper's own algorithm included) and adaptive adversaries.

Per-slot ``collectors`` attached here receive a ``SlotRecord`` stream and
therefore pin the run to the record-emitting kernels; study-level metrics
should prefer the columnar :class:`~repro.metrics.MetricPipeline`, which
consumes each trial's :class:`~repro.sim.results.PrefixCounters` after the
fact and runs on every backend (see :class:`repro.sim.TrialRunner`).

Every kernel must honor the contract documented in
:mod:`repro.sim.backends.base`: canonical slot ordering, the documented seed
tree discipline, and results indistinguishable from the reference kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..adversary.base import Adversary
from ..channel.multiple_access import MultipleAccessChannel
from ..errors import ConfigurationError
from ..metrics.collectors import MetricsCollector
from ..protocols.base import ProtocolFactory
from ..rng import SeedLike, SeedTree
from .backends import (
    AUTO_BACKEND,
    STUDY_BACKENDS,
    KernelContext,
    available_backends,
    select_kernel,
)
from .results import SimulationResult

__all__ = ["SimulatorConfig", "Simulator"]


@dataclass
class SimulatorConfig:
    """Configuration of a single simulation run.

    Attributes
    ----------
    horizon:
        Number of slots to simulate.
    keep_trace:
        Whether to retain the full per-slot trace (memory ~ horizon).
    stop_when_drained:
        If true, the run ends early once every arrived node has succeeded and
        the adversary cannot inject more (used by batch experiments that only
        care about completion time); the prefix arrays are still filled up to
        the stopping slot.  "Cannot inject more" is answered by
        :meth:`~repro.adversary.base.Adversary.arrivals_exhausted`, which is
        conservatively False for open-ended arrival processes.
    max_nodes:
        Safety valve against runaway adversaries.
    """

    horizon: int
    keep_trace: bool = False
    stop_when_drained: bool = False
    max_nodes: int = 1_000_000

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if self.max_nodes < 1:
            raise ConfigurationError("max_nodes must be >= 1")


class Simulator:
    """Drives one protocol population against one adversary on one channel."""

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        adversary: Adversary,
        config: SimulatorConfig,
        channel: Optional[MultipleAccessChannel] = None,
        collectors: Sequence[MetricsCollector] = (),
        seed: SeedLike = None,
        backend: str = AUTO_BACKEND,
    ) -> None:
        if backend in STUDY_BACKENDS:
            raise ConfigurationError(
                f"backend {backend!r} executes whole trial studies; use "
                "repro.sim.run_trials / TrialRunner instead of a single Simulator"
            )
        if backend not in available_backends():
            raise ConfigurationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_backends())}"
            )
        self._factory = protocol_factory
        self._adversary = adversary
        self._config = config
        self._channel = channel or MultipleAccessChannel()
        self._collectors = list(collectors)
        self._seed_tree = SeedTree(seed)
        self._seed = seed if isinstance(seed, int) else None
        self._backend = backend

    @property
    def config(self) -> SimulatorConfig:
        return self._config

    @property
    def channel(self) -> MultipleAccessChannel:
        return self._channel

    @property
    def backend(self) -> str:
        """The requested backend (``"auto"`` until resolved per run)."""
        return self._backend

    def run(self) -> SimulationResult:
        """Execute the run and return its result."""
        context = KernelContext(
            protocol_factory=self._factory,
            adversary=self._adversary,
            config=self._config,
            channel=self._channel,
            collectors=self._collectors,
            adversary_tree=self._seed_tree.child(),
            node_tree=self._seed_tree.child(),
            seed=self._seed,
            protocol_name=getattr(self._factory, "protocol_name", None) or "protocol",
        )
        kernel = select_kernel(self._backend, context)
        return kernel.run(context)
