"""The slot-synchronous simulation engine.

Each slot proceeds in the order the model prescribes:

1. the adversary picks its action (how many nodes to inject, whether to jam);
2. newly injected nodes join the system and initialize their protocols;
3. every active node decides whether to broadcast;
4. the channel resolves the slot (success / silence / collision, jamming wins);
5. feedback is dispatched to all active nodes and to the adversary;
6. a successful node leaves the system immediately;
7. metrics and (optionally) the trace are updated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..adversary.base import Adversary
from ..channel.multiple_access import MultipleAccessChannel
from ..errors import ConfigurationError
from ..metrics.collectors import MetricsCollector
from ..protocols.base import ProtocolFactory
from ..rng import SeedLike, SeedTree
from ..types import (
    NodeStats,
    SimulationSummary,
    SlotObservation,
    SlotRecord,
)
from .events import EventTrace
from .node import Node
from .results import SimulationResult

__all__ = ["SimulatorConfig", "Simulator"]


@dataclass
class SimulatorConfig:
    """Configuration of a single simulation run.

    Attributes
    ----------
    horizon:
        Number of slots to simulate.
    keep_trace:
        Whether to retain the full per-slot trace (memory ~ horizon).
    stop_when_drained:
        If true, the run ends early once every arrived node has succeeded and
        the adversary cannot inject more (used by batch experiments that only
        care about completion time); the prefix arrays are still filled up to
        the stopping slot.
    max_nodes:
        Safety valve against runaway adversaries.
    """

    horizon: int
    keep_trace: bool = False
    stop_when_drained: bool = False
    max_nodes: int = 1_000_000

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if self.max_nodes < 1:
            raise ConfigurationError("max_nodes must be >= 1")


class Simulator:
    """Drives one protocol population against one adversary on one channel."""

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        adversary: Adversary,
        config: SimulatorConfig,
        channel: Optional[MultipleAccessChannel] = None,
        collectors: Sequence[MetricsCollector] = (),
        seed: SeedLike = None,
    ) -> None:
        self._factory = protocol_factory
        self._adversary = adversary
        self._config = config
        self._channel = channel or MultipleAccessChannel()
        self._collectors = list(collectors)
        self._seed_tree = SeedTree(seed)
        self._seed = seed if isinstance(seed, int) else None

    @property
    def config(self) -> SimulatorConfig:
        return self._config

    @property
    def channel(self) -> MultipleAccessChannel:
        return self._channel

    def run(self) -> SimulationResult:
        """Execute the run and return its result."""
        config = self._config
        adversary_rng = self._seed_tree.child().generator()
        node_seed_tree = self._seed_tree.child()
        self._adversary.setup(adversary_rng, config.horizon)
        for collector in self._collectors:
            collector.on_run_start(config.horizon)

        nodes: Dict[int, Node] = {}
        active_nodes: List[Node] = []
        summary = SimulationSummary()
        trace = EventTrace() if config.keep_trace else None

        prefix_active = [0]
        prefix_arrivals = [0]
        prefix_jammed = [0]
        prefix_successes = [0]

        next_node_id = 0
        protocol_name = getattr(self._factory, "protocol_name", None) or "protocol"
        slots_simulated = 0

        for slot in range(1, config.horizon + 1):
            slots_simulated = slot
            action = self._adversary.action_for_slot(slot)
            if action.arrivals and next_node_id + action.arrivals > config.max_nodes:
                raise ConfigurationError(
                    f"adversary exceeded max_nodes={config.max_nodes} at slot {slot}"
                )

            # 2. arrivals
            for _ in range(action.arrivals):
                node = Node(
                    node_id=next_node_id,
                    arrival_slot=slot,
                    protocol=self._factory(),
                    rng=node_seed_tree.child().generator(),
                )
                nodes[next_node_id] = node
                active_nodes.append(node)
                next_node_id += 1

            # 3. broadcast decisions
            broadcasters = [
                node.node_id for node in active_nodes if node.decide_broadcast(slot)
            ]

            # 4. channel resolution
            outcome, winner, feedback = self._channel.resolve(
                broadcasters, jammed=action.jam
            )

            # 5./6. feedback dispatch; the winner deactivates itself
            broadcaster_set = set(broadcasters)
            for node in active_nodes:
                node.deliver_feedback(
                    slot, feedback, node.node_id in broadcaster_set, winner
                )
            if winner is not None:
                active_nodes = [n for n in active_nodes if n.active]

            # 7. bookkeeping
            record = SlotRecord(
                slot=slot,
                broadcasters=tuple(broadcasters),
                jammed=action.jam,
                outcome=outcome,
                successful_node=winner,
                active_nodes=len(active_nodes) + (1 if winner is not None else 0),
                arrivals=action.arrivals,
            )
            summary.record(record)
            if trace is not None:
                trace.append(record)
            for collector in self._collectors:
                collector.on_slot(record)

            prefix_active.append(summary.active_slots)
            prefix_arrivals.append(summary.arrivals)
            prefix_jammed.append(summary.jammed_slots)
            prefix_successes.append(summary.successes)

            observation = SlotObservation(
                slot=slot, feedback=feedback, message_node=winner
            )
            self._adversary.observe(observation)

            if config.stop_when_drained and not active_nodes and summary.arrivals > 0:
                break

        node_stats: Dict[int, NodeStats] = {
            node_id: node.stats for node_id, node in nodes.items()
        }
        result = SimulationResult(
            summary=summary,
            node_stats=node_stats,
            prefix_active=prefix_active,
            prefix_arrivals=prefix_arrivals,
            prefix_jammed=prefix_jammed,
            prefix_successes=prefix_successes,
            protocol_name=protocol_name,
            adversary_name=self._adversary.describe(),
            horizon=slots_simulated,
            seed=self._seed,
            trace=trace,
        )
        for collector in self._collectors:
            collector.on_run_end(result)
        return result
