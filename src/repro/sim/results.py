"""Simulation results: everything an experiment needs after a run finishes.

The per-slot cumulative counters of a run — the quantities the paper's
(f, g)-throughput definition bounds — are stored *columnar*: a single
:class:`PrefixCounters` record holding four int64 numpy columns.  Kernels
hand their arrays (or views into shared study matrices) straight to the
record with no ``.tolist()`` round trip, and downstream metrics reduce over
the columns with array arithmetic.  The historical per-slot list API
(``result.prefix_active[t]``, slicing, ``==``) is preserved by
:class:`PrefixColumn`, a lightweight read-only sequence view.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..errors import AnalysisError
from ..types import NodeStats, SimulationSummary
from .events import EventTrace

__all__ = ["PrefixColumn", "PrefixCounters", "SimulationResult"]

#: Names of the four prefix columns, in canonical order.
COLUMN_NAMES = ("active", "arrivals", "jammed", "successes")


class PrefixColumn(SequenceABC):
    """Read-only integer sequence view over one numpy prefix column.

    Behaves like the ``List[int]`` it replaced: indexing (including negative
    indices) returns Python ints, slicing returns another view, iteration
    yields ints, and ``==`` compares element-wise to a single bool — so
    existing consumers and tests are unaffected while the backing storage is
    an int64 column (often a zero-copy view into a whole-study matrix).
    """

    __slots__ = ("_data",)

    def __init__(self, data: np.ndarray) -> None:
        self._data = data

    def __len__(self) -> int:
        return int(self._data.shape[0])

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return PrefixColumn(self._data[index])
        return int(self._data[index])

    def __iter__(self) -> Iterator[int]:
        return iter(self._data.tolist())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PrefixColumn):
            return bool(np.array_equal(self._data, other._data))
        if isinstance(other, (list, tuple, np.ndarray)):
            return bool(np.array_equal(self._data, np.asarray(other)))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(tuple(self._data.tolist()))

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if dtype is None and not copy:
            return self._data
        return np.array(self._data, dtype=dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrefixColumn({self._data.tolist()!r})"

    def tolist(self) -> List[int]:
        return self._data.tolist()


@dataclass(frozen=True, eq=False)
class PrefixCounters:
    """Columnar per-slot cumulative counters of one run.

    Each column has length ``slots + 1``; index 0 is unused (always 0) and
    ``column[t]`` is the cumulative count over slots ``1..t``.  Columns are
    int64 and may be zero-copy views into a larger study matrix — the record
    never copies what kernels hand it (int64 input passes through
    ``np.asarray`` untouched).
    """

    active: np.ndarray
    arrivals: np.ndarray
    jammed: np.ndarray
    successes: np.ndarray

    def __eq__(self, other: object) -> bool:
        # The generated dataclass __eq__ would compare arrays elementwise
        # (ambiguous in bool context); counters are equal iff every column is.
        if not isinstance(other, PrefixCounters):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in COLUMN_NAMES
        )

    def __post_init__(self) -> None:
        lengths = set()
        for name in COLUMN_NAMES:
            column = np.asarray(getattr(self, name), dtype=np.int64)
            object.__setattr__(self, name, column)
            lengths.add(column.shape[0])
        if len(lengths) != 1 or min(lengths) < 1:
            raise AnalysisError(
                f"prefix columns must share one length >= 1, got {sorted(lengths)}"
            )

    @classmethod
    def from_lists(
        cls,
        active: Sequence,
        arrivals: Sequence,
        jammed: Sequence,
        successes: Sequence,
    ) -> "PrefixCounters":
        return cls(
            active=np.asarray(active, dtype=np.int64),
            arrivals=np.asarray(arrivals, dtype=np.int64),
            jammed=np.asarray(jammed, dtype=np.int64),
            successes=np.asarray(successes, dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self.active.shape[0])

    @property
    def slots(self) -> int:
        """Number of simulated slots covered by the columns."""
        return len(self) - 1

    @property
    def nbytes(self) -> int:
        """Bytes held by the four columns (views count their visible extent)."""
        return sum(getattr(self, name).nbytes for name in COLUMN_NAMES)

    def column(self, name: str) -> np.ndarray:
        if name not in COLUMN_NAMES:
            raise AnalysisError(
                f"unknown prefix column {name!r}; known: {', '.join(COLUMN_NAMES)}"
            )
        return getattr(self, name)

    # ------------------------------------------------------- derived columns

    def per_slot(self, name: str) -> np.ndarray:
        """Per-slot increments of a column: ``per_slot[i]`` is slot ``i+1``."""
        return np.diff(self.column(name))

    def success_slots(self) -> np.ndarray:
        """1-based indices of all successful slots, ascending."""
        return np.flatnonzero(self.per_slot("successes")) + 1

    def windowed_successes(self, window: int) -> np.ndarray:
        """Success counts over consecutive windows (trailing partial included).

        Matches :class:`~repro.metrics.collectors.WindowedSuccessCounter`
        slot-for-slot: ``slots // window`` full windows plus one partial
        window when ``slots % window`` is nonzero.
        """
        if window < 1:
            raise AnalysisError("window must be >= 1")
        per_slot = self.per_slot("successes")
        if per_slot.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.add.reduceat(per_slot, np.arange(0, per_slot.size, window))


@dataclass
class SimulationResult:
    """Outcome of a single simulation run.

    Attributes
    ----------
    summary:
        Aggregate counters (slots, successes, arrivals, jammed slots, ...).
    node_stats:
        Per-node lifetime statistics, keyed by node id.
    counters:
        Columnar per-slot cumulative counters (:class:`PrefixCounters`).
        ``None`` after :meth:`release_counters` (streaming mode), in which
        case only the O(1) summary surface remains.
    trace:
        Full per-slot trace, present only when the run kept it.
    protocol_name / adversary_name / seed / horizon:
        Provenance metadata.
    backend:
        Name of the slot kernel that executed the run (``"reference"``,
        ``"vectorized"`` or ``"batched-study"``).
    wall_time_seconds:
        Wall-clock duration of the slot loop, measured by the kernel itself so
        speedups are observable from experiment reports without external
        timers.
    """

    summary: SimulationSummary
    node_stats: Dict[int, NodeStats]
    counters: Optional[PrefixCounters] = None
    protocol_name: str = "protocol"
    adversary_name: str = "adversary"
    horizon: int = 0
    seed: Optional[int] = None
    trace: Optional[EventTrace] = None
    extra: Dict[str, float] = field(default_factory=dict)
    backend: str = "reference"
    wall_time_seconds: float = 0.0

    # ---------------------------------------------------- columnar accessors

    def _require_counters(self) -> PrefixCounters:
        if self.counters is None:
            raise AnalysisError(
                "per-slot prefix counters were released (streaming mode keeps "
                "only reducer state and O(1) summaries); re-run without "
                "streaming to inspect prefixes"
            )
        return self.counters

    @property
    def prefix_active(self) -> PrefixColumn:
        """Back-compat sequence view of the active-slot prefix column."""
        return PrefixColumn(self._require_counters().active)

    @property
    def prefix_arrivals(self) -> PrefixColumn:
        return PrefixColumn(self._require_counters().arrivals)

    @property
    def prefix_jammed(self) -> PrefixColumn:
        return PrefixColumn(self._require_counters().jammed)

    @property
    def prefix_successes(self) -> PrefixColumn:
        return PrefixColumn(self._require_counters().successes)

    def release_counters(self) -> int:
        """Drop the O(horizon) prefix columns, returning the bytes released.

        Used by streaming studies after every reducer has consumed the run:
        the result keeps its summary, node statistics and provenance but no
        longer holds per-slot data.
        """
        counters = self.counters
        if counters is None:
            return 0
        released = counters.nbytes
        self.counters = None
        return released

    def memory_bytes(self) -> int:
        """Bytes retained by the per-slot columns (0 once released)."""
        return 0 if self.counters is None else self.counters.nbytes

    # ----------------------------------------------------- scalar surface

    @property
    def slots_per_second(self) -> float:
        """Simulated slots per wall-clock second (0 when the run was untimed).

        Divides by the slots actually resolved (``summary.total_slots``), not
        the configured horizon — a ``stop_when_drained`` early exit must not
        overstate throughput.
        """
        if self.wall_time_seconds <= 0.0:
            return 0.0
        resolved = self.summary.total_slots or self.horizon
        return resolved / self.wall_time_seconds

    @property
    def total_arrivals(self) -> int:
        return self.summary.arrivals

    @property
    def total_successes(self) -> int:
        return self.summary.successes

    @property
    def total_active_slots(self) -> int:
        return self.summary.active_slots

    @property
    def total_jammed_slots(self) -> int:
        return self.summary.jammed_slots

    @property
    def unfinished_nodes(self) -> int:
        return sum(1 for stats in self.node_stats.values() if not stats.finished)

    def latencies(self) -> List[int]:
        """Latencies (slots from arrival to success) of all finished nodes."""
        return [
            stats.latency
            for stats in self.node_stats.values()
            if stats.latency is not None
        ]

    def broadcast_counts(self) -> List[int]:
        """Per-node channel-access counts (the paper's energy metric)."""
        return [stats.broadcast_count for stats in self.node_stats.values()]

    def mean_latency(self) -> float:
        lat = self.latencies()
        return float(np.mean(lat)) if lat else float("nan")

    def max_latency(self) -> Optional[int]:
        lat = self.latencies()
        return max(lat) if lat else None

    def classical_throughput(self, t: Optional[int] = None) -> float:
        """The paper's classical throughput ``n_t / a_t`` at slot ``t`` (default: horizon).

        Returns ``inf`` when no slot was active (vacuously perfect throughput).
        """
        t = t or self.horizon
        t = min(t, self.horizon)
        if self.counters is None and t == self.horizon:
            # Streaming results can still answer at the horizon from the summary.
            active, arrivals = self.summary.active_slots, self.summary.arrivals
        else:
            counters = self._require_counters()
            active = int(counters.active[t])
            arrivals = int(counters.arrivals[t])
        if active == 0:
            return float("inf")
        return arrivals / active

    def successes_by_slot(self, t: int) -> int:
        t = min(t, self.horizon)
        if self.counters is None and t == self.horizon:
            # Streaming results still answer at the horizon from the summary.
            return self.summary.successes
        return int(self._require_counters().successes[t])

    def describe(self) -> str:
        """One-line human-readable summary used by examples and the CLI."""
        return (
            f"{self.protocol_name} vs {self.adversary_name}: "
            f"{self.summary.successes}/{self.summary.arrivals} messages delivered "
            f"in {self.horizon} slots "
            f"({self.summary.active_slots} active, {self.summary.jammed_slots} jammed)"
        )
