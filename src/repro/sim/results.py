"""Simulation results: everything an experiment needs after a run finishes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..types import NodeStats, SimulationSummary
from .events import EventTrace

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of a single simulation run.

    Attributes
    ----------
    summary:
        Aggregate counters (slots, successes, arrivals, jammed slots, ...).
    node_stats:
        Per-node lifetime statistics, keyed by node id.
    trace:
        Full per-slot trace, present only when the run kept it.
    prefix_active:
        ``prefix_active[t]`` is the number of active slots among slots
        ``1..t`` (index 0 unused).  Always recorded — it is the quantity the
        (f, g)-throughput definition bounds.
    prefix_arrivals / prefix_jammed / prefix_successes:
        Analogous cumulative counters used by the throughput checker.
    protocol_name / adversary_name / seed / horizon:
        Provenance metadata.
    backend:
        Name of the slot kernel that executed the run (``"reference"`` or
        ``"vectorized"``).
    wall_time_seconds:
        Wall-clock duration of the slot loop, measured by the kernel itself so
        speedups are observable from experiment reports without external
        timers.
    """

    summary: SimulationSummary
    node_stats: Dict[int, NodeStats]
    prefix_active: List[int]
    prefix_arrivals: List[int]
    prefix_jammed: List[int]
    prefix_successes: List[int]
    protocol_name: str = "protocol"
    adversary_name: str = "adversary"
    horizon: int = 0
    seed: Optional[int] = None
    trace: Optional[EventTrace] = None
    extra: Dict[str, float] = field(default_factory=dict)
    backend: str = "reference"
    wall_time_seconds: float = 0.0

    @property
    def slots_per_second(self) -> float:
        """Simulated slots per wall-clock second (0 when the run was untimed)."""
        if self.wall_time_seconds <= 0.0:
            return 0.0
        return self.horizon / self.wall_time_seconds

    @property
    def total_arrivals(self) -> int:
        return self.summary.arrivals

    @property
    def total_successes(self) -> int:
        return self.summary.successes

    @property
    def total_active_slots(self) -> int:
        return self.summary.active_slots

    @property
    def total_jammed_slots(self) -> int:
        return self.summary.jammed_slots

    @property
    def unfinished_nodes(self) -> int:
        return sum(1 for stats in self.node_stats.values() if not stats.finished)

    def latencies(self) -> List[int]:
        """Latencies (slots from arrival to success) of all finished nodes."""
        return [
            stats.latency
            for stats in self.node_stats.values()
            if stats.latency is not None
        ]

    def broadcast_counts(self) -> List[int]:
        """Per-node channel-access counts (the paper's energy metric)."""
        return [stats.broadcast_count for stats in self.node_stats.values()]

    def mean_latency(self) -> float:
        lat = self.latencies()
        return float(np.mean(lat)) if lat else float("nan")

    def max_latency(self) -> Optional[int]:
        lat = self.latencies()
        return max(lat) if lat else None

    def classical_throughput(self, t: Optional[int] = None) -> float:
        """The paper's classical throughput ``n_t / a_t`` at slot ``t`` (default: horizon).

        Returns ``inf`` when no slot was active (vacuously perfect throughput).
        """
        t = t or self.horizon
        t = min(t, self.horizon)
        active = self.prefix_active[t]
        arrivals = self.prefix_arrivals[t]
        if active == 0:
            return float("inf")
        return arrivals / active

    def successes_by_slot(self, t: int) -> int:
        t = min(t, self.horizon)
        return self.prefix_successes[t]

    def describe(self) -> str:
        """One-line human-readable summary used by examples and the CLI."""
        return (
            f"{self.protocol_name} vs {self.adversary_name}: "
            f"{self.summary.successes}/{self.summary.arrivals} messages delivered "
            f"in {self.horizon} slots "
            f"({self.summary.active_slots} active, {self.summary.jammed_slots} jammed)"
        )
