"""Multi-trial runner: repeat a simulation with independent seeds and aggregate.

Trials are independent by construction (each gets its own root seed from
:func:`repro.rng.trial_seeds`), which makes them embarrassingly parallel: pass
``workers=N`` to fan trials out over ``N`` forked worker processes.  Seeds are
derived identically in the serial and parallel paths, so a parallel study is
seed-for-seed identical to a serial one — only wall-clock changes.  Each
worker returns its shard's bulk prefix/node columns through one
``multiprocessing.shared_memory`` block (:mod:`repro.sim.shm`); only O(1)
metadata per trial crosses the pickle pipe.

Backends
--------

``backend`` accepts the study-level ladder:

* ``"batched-study"`` — the whole study (or each worker's shard of it) is
  executed by :class:`~repro.sim.backends.BatchedStudyKernel` in one numpy
  pass; requires a vector-eligible protocol and a precompilable adversary.
* ``"lockstep-jit"`` — the lockstep semantics lowered into one fused slot
  loop (:class:`~repro.sim.backends.CompiledStudyKernel`), numba-compiled
  when numba is installed; demotes automatically (and silently) to the
  numpy lockstep kernel when it cannot run, with identical results.
* ``"lockstep"`` — the study is executed by
  :class:`~repro.sim.backends.LockstepStudyKernel`, which advances all
  trials one slot at a time with array operations; serves feedback-driven
  protocols with a columnar :class:`~repro.protocols.base.LockstepProgram`
  (the paper's CJZ algorithm, windowed/sawtooth backoff) against any
  adversary, adaptive ones included.
* ``"auto"`` (default) — batched-study when the study is eligible, else the
  compiled lockstep tier (falling through to numpy lockstep internally)
  when the protocol has a columnar program *and* the study carries enough
  concurrent population to amortize the kernel's fixed per-slot cost (≥ 8
  trials, or trials × peak single-slot arrivals ≥ 24 — see
  :meth:`LockstepStudyKernel.auto_preferred`), else per trial the
  vectorized kernel when eligible, else the reference kernel.
* ``"vectorized"`` / ``"reference"`` — per-trial kernels, forwarded to every
  :class:`~repro.sim.engine.Simulator`.

All paths are seed-for-seed identical; only wall-clock differs.

Metric pipelines and streaming
------------------------------

``pipeline=`` attaches a :class:`~repro.metrics.MetricPipeline` (or its
serializable :class:`~repro.spec.PipelineSpec`): every finished trial is
reduced into the pipeline's columnar reducers, on *any* backend — the
batched study kernel included — and under ``workers > 1``, where each
worker reduces its contiguous shard into a fresh pipeline clone and the
parent merges the shard partials back in trial order (identical to a
serial reduction; property-tested).  ``streaming=True`` additionally drops
each trial's O(horizon) prefix columns the moment all reducers have
consumed it, so huge-horizon studies retain only reducer state plus the
O(1) per-trial summary surface.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..adversary.base import Adversary
from ..errors import ConfigurationError
from ..protocols.base import ProtocolFactory
from ..rng import SeedLike, SeedTree, TrialSeedBatch
from .backends import (
    AUTO_BACKEND,
    COMPILED_BACKEND,
    LOCKSTEP_BACKEND,
    STUDY_BACKEND,
    STUDY_BACKENDS,
    BatchedStudyKernel,
    CompiledStudyKernel,
    LockstepStudyKernel,
    available_study_backends,
)
from .backends.studysupport import StudyProbe
from .engine import Simulator, SimulatorConfig
from .results import SimulationResult
from .shm import export_study, import_study

__all__ = ["TrialRunner", "TrialStudy", "run_trials"]

AdversaryFactory = Callable[[], Adversary]

MetricExtractor = Callable[[SimulationResult], float]
MetricLike = Union[MetricExtractor, np.ndarray]


def _extract_successes(result: SimulationResult) -> float:
    return float(result.total_successes)


def _extract_arrivals(result: SimulationResult) -> float:
    return float(result.total_arrivals)


def _extract_active_slots(result: SimulationResult) -> float:
    return float(result.total_active_slots)


def _extract_jammed_slots(result: SimulationResult) -> float:
    return float(result.total_jammed_slots)


def _extract_mean_latency(result: SimulationResult) -> float:
    return result.mean_latency()


def _extract_unfinished(result: SimulationResult) -> float:
    return float(result.unfinished_nodes)


def _extract_wall_time(result: SimulationResult) -> float:
    return result.wall_time_seconds


def _extract_slots_per_second(result: SimulationResult) -> float:
    return result.slots_per_second


@dataclass
class TrialStudy:
    """Results of a set of independent trials of the same configuration.

    ``effective_workers`` records how many worker processes actually executed
    the study (1 when a ``workers>1`` request fell back to serial execution on
    a platform without ``fork``), so reports never claim parallelism that did
    not happen.  ``from_cache`` marks studies loaded from a
    :class:`~repro.spec.StudyStore` rather than simulated; their ``results``
    are summary-level :class:`~repro.spec.CachedResult` objects.
    """

    results: List[SimulationResult] = field(default_factory=list)
    label: str = ""
    effective_workers: int = 1
    from_cache: bool = False
    pipeline: Optional[Any] = None
    _metric_cache: Dict[MetricExtractor, Tuple[int, np.ndarray]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def trials(self) -> int:
        return len(self.results)

    def metric(self, extractor: MetricExtractor) -> np.ndarray:
        """Vector of a per-trial scalar metric.

        Vectors are memoized per extractor object, so repeated aggregations
        (``mean`` + ``std`` + ``quantile`` over the same extractor) run the
        extractor over the results only once.  Entries are invalidated when
        ``results`` changes length (the runner appends to it after
        construction).
        """
        entry = self._metric_cache.get(extractor)
        if entry is not None and entry[0] == len(self.results):
            return entry[1]
        values = np.asarray(
            [extractor(result) for result in self.results], dtype=float
        )
        self._metric_cache[extractor] = (len(self.results), values)
        return values

    def _values(self, metric: MetricLike) -> np.ndarray:
        if isinstance(metric, np.ndarray):
            return metric
        return self.metric(metric)

    def mean(self, metric: MetricLike) -> float:
        """Mean of a metric (an extractor or a precomputed vector)."""
        values = self._values(metric)
        return float(np.mean(values)) if values.size else float("nan")

    def std(self, metric: MetricLike) -> float:
        values = self._values(metric)
        return float(np.std(values)) if values.size else float("nan")

    def quantile(self, metric: MetricLike, q: float) -> float:
        values = self._values(metric)
        return float(np.quantile(values, q)) if values.size else float("nan")

    def metrics(self) -> Optional[Dict[str, Any]]:
        """Finalized values of the attached metric pipeline (``None`` without one)."""
        if self.pipeline is None:
            return None
        return self.pipeline.finalize()

    def memory_bytes(self) -> int:
        """Bytes retained by the per-slot prefix columns of all results.

        0 for streamed studies (columns released after reduction) and for
        cache-rehydrated studies (summaries only).
        """
        return sum(
            getattr(result, "memory_bytes", lambda: 0)() for result in self.results
        )

    def fraction_satisfying(
        self, predicate: Callable[[SimulationResult], bool]
    ) -> float:
        if not self.results:
            return float("nan")
        return sum(1 for r in self.results if predicate(r)) / len(self.results)

    def summary_row(self) -> Dict[str, float]:
        """Standard aggregate row used by experiment reports.

        Uses module-level extractors so repeated calls hit the metric cache
        instead of accumulating fresh lambda keys in it.
        """
        return {
            "trials": float(self.trials),
            "workers": float(self.effective_workers),
            "mean_successes": self.mean(_extract_successes),
            "mean_arrivals": self.mean(_extract_arrivals),
            "mean_active_slots": self.mean(_extract_active_slots),
            "mean_jammed_slots": self.mean(_extract_jammed_slots),
            "mean_latency": self.mean(_extract_mean_latency),
            "mean_unfinished": self.mean(_extract_unfinished),
            "mean_wall_time_s": self.mean(_extract_wall_time),
            "mean_slots_per_s": self.mean(_extract_slots_per_second),
        }


def _coerce_factories(protocol_factory, adversary_factory, horizon: int):
    """Accept declarative specs wherever factories are expected.

    :class:`~repro.spec.ProtocolSpec` / :class:`~repro.spec.AdversarySpec`
    inputs are built into the equivalent factories (the adversary spec gets
    the study horizon so horizon-dependent defaults and the proof
    adversaries resolve); plain callables pass through untouched.  Imported
    lazily — the spec package imports this module's public API.
    """
    from ..spec.adversary import AdversarySpec
    from ..spec.protocol import ProtocolSpec

    if isinstance(protocol_factory, ProtocolSpec):
        protocol_factory = protocol_factory.build()
    if isinstance(adversary_factory, AdversarySpec):
        adversary_factory = adversary_factory.factory(horizon)
    return protocol_factory, adversary_factory


def _coerce_pipeline(pipeline):
    """Accept a live :class:`~repro.metrics.MetricPipeline` or its spec.

    Imported lazily for the same reason as :func:`_coerce_factories` — both
    the metrics and spec packages import this module's public API.
    """
    if pipeline is None:
        return None
    from ..metrics.pipeline import MetricPipeline
    from ..spec.pipeline import PipelineSpec

    if isinstance(pipeline, PipelineSpec):
        return pipeline.build()
    if isinstance(pipeline, MetricPipeline):
        return pipeline
    raise ConfigurationError(
        f"pipeline must be a MetricPipeline or PipelineSpec, got {pipeline!r}"
    )


# Per-worker state, set by the pool initializer.  With the "fork" start
# method initargs reach the child by memory copy, so unpicklable
# protocol/adversary factories (closures) never cross a pickle boundary —
# only the chunk index travels through the task queue.  Binding the
# state per pool (rather than in the parent before forking) keeps concurrent
# TrialRunner.run calls from seeing each other's trials.
_PARALLEL_STATE: Optional[Tuple["TrialRunner", List[List[SeedTree]]]] = None


def _init_trial_worker(runner: "TrialRunner", chunks: List[List[SeedTree]]) -> None:
    global _PARALLEL_STATE
    _PARALLEL_STATE = (runner, chunks)


def _run_trial_chunk(index: int):
    assert _PARALLEL_STATE is not None, "worker started without parallel state"
    runner, chunks = _PARALLEL_STATE
    # Each shard reduces into its own fresh pipeline clone; the parent merges
    # the returned partials in shard (= trial) order.
    shard_pipeline = (
        runner._pipeline.fresh() if runner._pipeline is not None else None
    )
    results = runner._run_chunk(chunks[index], shard_pipeline)
    # Bulk columns travel through a shared-memory block (pickle only carries
    # O(1) metadata per trial); ineligible shards fall back to plain pickle
    # inside export_study.
    return export_study(results), shard_pipeline


class TrialRunner:
    """Runs the same (protocol, adversary, config) combination across seeds.

    The protocol and adversary are supplied either as factories (the
    callable escape hatch — adversaries hold per-run mutable state, so each
    trial gets a fresh instance) or as declarative specs
    (:class:`~repro.spec.ProtocolSpec` / :class:`~repro.spec.AdversarySpec`),
    which the runner builds into factories itself.  Both paths construct the
    same classes with the same parameters, so they are seed-for-seed
    identical.

    Parameters
    ----------
    collectors:
        Per-slot metric collectors attached to every trial's simulator (the
        legacy callback API).  Collector instances are shared across trials
        (their ``on_run_start`` hook is expected to reset them), which is why
        they require ``workers=1`` (rejected here, at construction time);
        they also force the per-trial path (the batched study kernel emits no
        per-slot records).  Prefer ``pipeline`` — it has neither restriction.
    pipeline:
        A :class:`~repro.metrics.MetricPipeline` (or
        :class:`~repro.spec.PipelineSpec`) of columnar reducers, fed every
        finished trial in order.  Runs on every backend and under
        ``workers > 1`` via ordered shard merges; exposed afterwards as
        :attr:`TrialStudy.pipeline`.
    streaming:
        Release each trial's O(horizon) prefix columns once the pipeline has
        reduced it, keeping only reducer state and O(1) summaries.
        Incompatible with ``keep_trace``.
    backend:
        Study-level backend selection (see the module docstring).
    workers:
        Number of forked worker processes; 1 means serial execution.  Trials
        are sharded contiguously across workers (batched within each shard
        when the batched study kernel applies).  Results are returned in
        trial order and are seed-for-seed identical to a serial run.
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        adversary_factory: AdversaryFactory,
        config: SimulatorConfig,
        label: str = "",
        collectors: Sequence = (),
        backend: str = AUTO_BACKEND,
        workers: int = 1,
        pipeline=None,
        streaming: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if backend not in available_study_backends():
            raise ConfigurationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_study_backends())}"
            )
        if collectors and workers > 1:
            raise ConfigurationError(
                "collectors require workers=1: collector instances cannot be "
                "shared across worker processes (use pipeline= instead)"
            )
        if streaming and config.keep_trace:
            raise ConfigurationError(
                "streaming releases per-slot data; it cannot be combined "
                "with keep_trace"
            )
        protocol_factory, adversary_factory = _coerce_factories(
            protocol_factory, adversary_factory, config.horizon
        )
        self._protocol_factory = protocol_factory
        self._adversary_factory = adversary_factory
        self._config = config
        self._label = label
        self._collectors = list(collectors)
        self._backend = backend
        self._workers = workers
        self._pipeline = _coerce_pipeline(pipeline)
        self._streaming = streaming

    def run_single(self, seed: SeedLike) -> SimulationResult:
        """Execute one trial with the given root seed."""
        simulator = Simulator(
            protocol_factory=self._protocol_factory,
            adversary=self._adversary_factory(),
            config=self._config,
            collectors=self._collectors,
            seed=seed,
            backend=self._per_trial_backend(),
        )
        return simulator.run()

    def run(self, trials: int, seed: SeedLike = None) -> TrialStudy:
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        seeds = TrialSeedBatch(seed, trials)
        workers = min(self._workers, trials)
        # Each run reduces into a fresh clone, so studies from consecutive
        # run() calls never share (or overwrite) each other's metrics.
        pipeline = self._pipeline.fresh() if self._pipeline is not None else None
        study = TrialStudy(label=self._label, pipeline=pipeline)
        if workers > 1:
            if "fork" in multiprocessing.get_all_start_methods():
                results, shard_pipelines = self._run_parallel(
                    seeds.trees, workers
                )
                study.results.extend(results)
                if pipeline is not None:
                    # Shards are contiguous trial ranges; merging their
                    # partials left to right reproduces the serial reduction.
                    for shard_pipeline in shard_pipelines:
                        pipeline.merge(shard_pipeline)
                study.effective_workers = workers
                return study
            warnings.warn(
                "workers>1 requires the 'fork' start method, which this "
                "platform lacks; running trials serially",
                RuntimeWarning,
                stacklevel=2,
            )
        study.results.extend(self._run_chunk(seeds, pipeline))
        return study

    # ------------------------------------------------------------- internals

    def _per_trial_backend(self) -> str:
        """The Simulator backend used when a trial runs individually."""
        return AUTO_BACKEND if self._backend in STUDY_BACKENDS else self._backend

    def _absorb(self, result: SimulationResult, pipeline) -> SimulationResult:
        """Reduce one finished trial; in streaming mode drop its columns."""
        if pipeline is not None:
            pipeline.update(result)
        if self._streaming:
            result.release_counters()
        return result

    def _run_chunk(
        self,
        seeds: Union[List[SeedTree], TrialSeedBatch],
        pipeline=None,
    ) -> List[SimulationResult]:
        """Run a contiguous shard of trials, study-batched when eligible.

        ``auto`` walks the study ladder: batched-study first, then the
        lockstep kernel, then the per-trial path.  A study kernel that bails
        mid-eligibility (returns ``None``) never consumes trial seeds, so
        escalating to the next rung stays seed-for-seed identical.
        """
        protocol_name = (
            getattr(self._protocol_factory, "protocol_name", None) or "protocol"
        )
        # One probe per dispatch: every rung's eligibility questions reuse
        # the same memoized protocol/program/adversary instances instead of
        # re-invoking the factories per kernel.
        probe = StudyProbe(self._protocol_factory, self._adversary_factory)
        for kernel, explicit in (
            (BatchedStudyKernel(), STUDY_BACKEND),
            (CompiledStudyKernel(), COMPILED_BACKEND),
            (LockstepStudyKernel(), LOCKSTEP_BACKEND),
        ):
            if self._backend not in (AUTO_BACKEND, explicit):
                continue
            if (
                self._backend == AUTO_BACKEND
                and explicit in (COMPILED_BACKEND, LOCKSTEP_BACKEND)
                and not kernel.auto_preferred(
                    self._adversary_factory, self._config, len(seeds), probe
                )
            ):
                # Too little concurrent population for the lockstep tiers to
                # pay off; stay on the per-trial ladder.
                continue
            reason = kernel.unsupported_reason(
                self._protocol_factory,
                self._adversary_factory,
                self._config,
                self._collectors,
                probe,
            )
            if reason is None:
                results = kernel.run_study(
                    self._protocol_factory,
                    self._adversary_factory,
                    self._config,
                    seeds,
                    protocol_name=protocol_name,
                    probe=probe,
                )
                if results is not None:
                    return [
                        self._absorb(result, pipeline) for result in results
                    ]
                # The study bailed without consuming any trial seeds
                # (oversized block, missing probability vector, slow seed
                # path, ...): escalate down the ladder.
            if self._backend == explicit:
                if reason is None:
                    # An explicitly requested study kernel that bailed
                    # degrades to the per-trial path, like ``auto`` would.
                    break
                raise ConfigurationError(
                    f"backend {explicit!r} unavailable: {reason}"
                )
        trees = seeds.trees if isinstance(seeds, TrialSeedBatch) else seeds
        return [
            self._absorb(self.run_single(trial_seed), pipeline)
            for trial_seed in trees
        ]

    def _run_parallel(
        self, seeds: List[SeedTree], workers: int
    ) -> Tuple[List[SimulationResult], List[Any]]:
        chunks = _contiguous_chunks(seeds, workers)
        context = multiprocessing.get_context("fork")
        with context.Pool(
            processes=len(chunks),
            initializer=_init_trial_worker,
            initargs=(self, chunks),
        ) as pool:
            shards = pool.map(_run_trial_chunk, range(len(chunks)))
        results = [
            result for payload, _ in shards for result in import_study(payload)
        ]
        pipelines = [shard_pipeline for _, shard_pipeline in shards]
        return results, [p for p in pipelines if p is not None]


def _contiguous_chunks(seeds: List[SeedTree], workers: int) -> List[List[SeedTree]]:
    """Split seeds into at most ``workers`` contiguous, near-even shards."""
    count = len(seeds)
    workers = min(workers, count)
    bounds = np.linspace(0, count, workers + 1).astype(int)
    return [
        list(seeds[lo:hi]) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def run_trials(
    protocol_factory: ProtocolFactory,
    adversary_factory: AdversaryFactory,
    horizon: int,
    trials: int = 5,
    seed: SeedLike = None,
    keep_trace: bool = False,
    stop_when_drained: bool = False,
    label: str = "",
    collectors: Optional[Sequence] = None,
    backend: str = AUTO_BACKEND,
    workers: int = 1,
    pipeline=None,
    streaming: bool = False,
) -> TrialStudy:
    """Convenience wrapper: build the config and runner and execute the trials.

    ``protocol_factory`` / ``adversary_factory`` accept either plain
    callables or declarative specs (:class:`~repro.spec.ProtocolSpec` /
    :class:`~repro.spec.AdversarySpec`); see :class:`TrialRunner`.  For a
    fully declarative entry point use :meth:`repro.spec.StudySpec.run`.
    """
    config = SimulatorConfig(
        horizon=horizon,
        keep_trace=keep_trace,
        stop_when_drained=stop_when_drained,
    )
    runner = TrialRunner(
        protocol_factory,
        adversary_factory,
        config,
        label=label,
        collectors=collectors or (),
        backend=backend,
        workers=workers,
        pipeline=pipeline,
        streaming=streaming,
    )
    return runner.run(trials=trials, seed=seed)
