"""Multi-trial runner: repeat a simulation with independent seeds and aggregate.

Trials are independent by construction (each gets its own root seed from
:func:`repro.rng.trial_seeds`), which makes them embarrassingly parallel: pass
``workers=N`` to fan trials out over ``N`` forked worker processes.  Seeds are
derived identically in the serial and parallel paths, so a parallel study is
seed-for-seed identical to a serial one — only wall-clock changes.

Backends
--------

``backend`` accepts the study-level ladder:

* ``"batched-study"`` — the whole study (or each worker's shard of it) is
  executed by :class:`~repro.sim.backends.BatchedStudyKernel` in one numpy
  pass; requires a vector-eligible protocol and a precompilable adversary.
* ``"auto"`` (default) — batched-study when the study is eligible, else per
  trial the vectorized kernel when eligible, else the reference kernel.
* ``"vectorized"`` / ``"reference"`` — per-trial kernels, forwarded to every
  :class:`~repro.sim.engine.Simulator`.

All paths are seed-for-seed identical; only wall-clock differs.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..adversary.base import Adversary
from ..errors import ConfigurationError
from ..protocols.base import ProtocolFactory
from ..rng import SeedLike, SeedTree, TrialSeedBatch
from .backends import AUTO_BACKEND, STUDY_BACKEND, BatchedStudyKernel, available_study_backends
from .engine import Simulator, SimulatorConfig
from .results import SimulationResult

__all__ = ["TrialRunner", "TrialStudy", "run_trials"]

AdversaryFactory = Callable[[], Adversary]

MetricExtractor = Callable[[SimulationResult], float]
MetricLike = Union[MetricExtractor, np.ndarray]


def _extract_successes(result: SimulationResult) -> float:
    return float(result.total_successes)


def _extract_arrivals(result: SimulationResult) -> float:
    return float(result.total_arrivals)


def _extract_active_slots(result: SimulationResult) -> float:
    return float(result.total_active_slots)


def _extract_jammed_slots(result: SimulationResult) -> float:
    return float(result.total_jammed_slots)


def _extract_mean_latency(result: SimulationResult) -> float:
    return result.mean_latency()


def _extract_unfinished(result: SimulationResult) -> float:
    return float(result.unfinished_nodes)


def _extract_wall_time(result: SimulationResult) -> float:
    return result.wall_time_seconds


def _extract_slots_per_second(result: SimulationResult) -> float:
    return result.slots_per_second


@dataclass
class TrialStudy:
    """Results of a set of independent trials of the same configuration.

    ``effective_workers`` records how many worker processes actually executed
    the study (1 when a ``workers>1`` request fell back to serial execution on
    a platform without ``fork``), so reports never claim parallelism that did
    not happen.  ``from_cache`` marks studies loaded from a
    :class:`~repro.spec.StudyStore` rather than simulated; their ``results``
    are summary-level :class:`~repro.spec.CachedResult` objects.
    """

    results: List[SimulationResult] = field(default_factory=list)
    label: str = ""
    effective_workers: int = 1
    from_cache: bool = False
    _metric_cache: Dict[MetricExtractor, Tuple[int, np.ndarray]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def trials(self) -> int:
        return len(self.results)

    def metric(self, extractor: MetricExtractor) -> np.ndarray:
        """Vector of a per-trial scalar metric.

        Vectors are memoized per extractor object, so repeated aggregations
        (``mean`` + ``std`` + ``quantile`` over the same extractor) run the
        extractor over the results only once.  Entries are invalidated when
        ``results`` changes length (the runner appends to it after
        construction).
        """
        entry = self._metric_cache.get(extractor)
        if entry is not None and entry[0] == len(self.results):
            return entry[1]
        values = np.asarray(
            [extractor(result) for result in self.results], dtype=float
        )
        self._metric_cache[extractor] = (len(self.results), values)
        return values

    def _values(self, metric: MetricLike) -> np.ndarray:
        if isinstance(metric, np.ndarray):
            return metric
        return self.metric(metric)

    def mean(self, metric: MetricLike) -> float:
        """Mean of a metric (an extractor or a precomputed vector)."""
        values = self._values(metric)
        return float(np.mean(values)) if values.size else float("nan")

    def std(self, metric: MetricLike) -> float:
        values = self._values(metric)
        return float(np.std(values)) if values.size else float("nan")

    def quantile(self, metric: MetricLike, q: float) -> float:
        values = self._values(metric)
        return float(np.quantile(values, q)) if values.size else float("nan")

    def fraction_satisfying(
        self, predicate: Callable[[SimulationResult], bool]
    ) -> float:
        if not self.results:
            return float("nan")
        return sum(1 for r in self.results if predicate(r)) / len(self.results)

    def summary_row(self) -> Dict[str, float]:
        """Standard aggregate row used by experiment reports.

        Uses module-level extractors so repeated calls hit the metric cache
        instead of accumulating fresh lambda keys in it.
        """
        return {
            "trials": float(self.trials),
            "workers": float(self.effective_workers),
            "mean_successes": self.mean(_extract_successes),
            "mean_arrivals": self.mean(_extract_arrivals),
            "mean_active_slots": self.mean(_extract_active_slots),
            "mean_jammed_slots": self.mean(_extract_jammed_slots),
            "mean_latency": self.mean(_extract_mean_latency),
            "mean_unfinished": self.mean(_extract_unfinished),
            "mean_wall_time_s": self.mean(_extract_wall_time),
            "mean_slots_per_s": self.mean(_extract_slots_per_second),
        }


def _coerce_factories(protocol_factory, adversary_factory, horizon: int):
    """Accept declarative specs wherever factories are expected.

    :class:`~repro.spec.ProtocolSpec` / :class:`~repro.spec.AdversarySpec`
    inputs are built into the equivalent factories (the adversary spec gets
    the study horizon so horizon-dependent defaults and the proof
    adversaries resolve); plain callables pass through untouched.  Imported
    lazily — the spec package imports this module's public API.
    """
    from ..spec.adversary import AdversarySpec
    from ..spec.protocol import ProtocolSpec

    if isinstance(protocol_factory, ProtocolSpec):
        protocol_factory = protocol_factory.build()
    if isinstance(adversary_factory, AdversarySpec):
        adversary_factory = adversary_factory.factory(horizon)
    return protocol_factory, adversary_factory


# Per-worker state, set by the pool initializer.  With the "fork" start
# method initargs reach the child by memory copy, so unpicklable
# protocol/adversary factories (closures) never cross a pickle boundary —
# only the chunk index travels through the task queue.  Binding the
# state per pool (rather than in the parent before forking) keeps concurrent
# TrialRunner.run calls from seeing each other's trials.
_PARALLEL_STATE: Optional[Tuple["TrialRunner", List[List[SeedTree]]]] = None


def _init_trial_worker(runner: "TrialRunner", chunks: List[List[SeedTree]]) -> None:
    global _PARALLEL_STATE
    _PARALLEL_STATE = (runner, chunks)


def _run_trial_chunk(index: int) -> List[SimulationResult]:
    assert _PARALLEL_STATE is not None, "worker started without parallel state"
    runner, chunks = _PARALLEL_STATE
    return runner._run_chunk(chunks[index])


class TrialRunner:
    """Runs the same (protocol, adversary, config) combination across seeds.

    The protocol and adversary are supplied either as factories (the
    callable escape hatch — adversaries hold per-run mutable state, so each
    trial gets a fresh instance) or as declarative specs
    (:class:`~repro.spec.ProtocolSpec` / :class:`~repro.spec.AdversarySpec`),
    which the runner builds into factories itself.  Both paths construct the
    same classes with the same parameters, so they are seed-for-seed
    identical.

    Parameters
    ----------
    collectors:
        Metric collectors attached to every trial's simulator.  Collector
        instances are shared across trials (their ``on_run_start`` hook is
        expected to reset them), which is why they require ``workers=1``
        (rejected here, at construction time); they also force the per-trial
        path (the batched study kernel emits no per-slot records).
    backend:
        Study-level backend selection (see the module docstring).
    workers:
        Number of forked worker processes; 1 means serial execution.  Trials
        are sharded contiguously across workers (batched within each shard
        when the batched study kernel applies).  Results are returned in
        trial order and are seed-for-seed identical to a serial run.
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        adversary_factory: AdversaryFactory,
        config: SimulatorConfig,
        label: str = "",
        collectors: Sequence = (),
        backend: str = AUTO_BACKEND,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if backend not in available_study_backends():
            raise ConfigurationError(
                f"unknown backend {backend!r}; available: "
                f"{', '.join(available_study_backends())}"
            )
        if collectors and workers > 1:
            raise ConfigurationError(
                "collectors require workers=1: collector instances cannot be "
                "shared across worker processes"
            )
        protocol_factory, adversary_factory = _coerce_factories(
            protocol_factory, adversary_factory, config.horizon
        )
        self._protocol_factory = protocol_factory
        self._adversary_factory = adversary_factory
        self._config = config
        self._label = label
        self._collectors = list(collectors)
        self._backend = backend
        self._workers = workers

    def run_single(self, seed: SeedLike) -> SimulationResult:
        """Execute one trial with the given root seed."""
        simulator = Simulator(
            protocol_factory=self._protocol_factory,
            adversary=self._adversary_factory(),
            config=self._config,
            collectors=self._collectors,
            seed=seed,
            backend=self._per_trial_backend(),
        )
        return simulator.run()

    def run(self, trials: int, seed: SeedLike = None) -> TrialStudy:
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        seeds = TrialSeedBatch(seed, trials)
        workers = min(self._workers, trials)
        study = TrialStudy(label=self._label)
        if workers > 1:
            if "fork" in multiprocessing.get_all_start_methods():
                study.results.extend(self._run_parallel(seeds.trees, workers))
                study.effective_workers = workers
                return study
            warnings.warn(
                "workers>1 requires the 'fork' start method, which this "
                "platform lacks; running trials serially",
                RuntimeWarning,
                stacklevel=2,
            )
        study.results.extend(self._run_chunk(seeds))
        return study

    # ------------------------------------------------------------- internals

    def _per_trial_backend(self) -> str:
        """The Simulator backend used when a trial runs individually."""
        return AUTO_BACKEND if self._backend == STUDY_BACKEND else self._backend

    def _run_chunk(
        self, seeds: Union[List[SeedTree], TrialSeedBatch]
    ) -> List[SimulationResult]:
        """Run a contiguous shard of trials, batched when eligible."""
        if self._backend in (AUTO_BACKEND, STUDY_BACKEND):
            kernel = BatchedStudyKernel()
            reason = kernel.unsupported_reason(
                self._protocol_factory,
                self._adversary_factory,
                self._config,
                self._collectors,
            )
            if reason is None:
                results = kernel.run_study(
                    self._protocol_factory,
                    self._adversary_factory,
                    self._config,
                    seeds,
                    protocol_name=getattr(
                        self._protocol_factory, "protocol_name", None
                    )
                    or "protocol",
                )
                if results is not None:
                    return results
                # The study bailed without consuming any trial seeds
                # (oversized block, missing probability vector, ...): each
                # trial escalates to the per-trial ladder below.
            elif self._backend == STUDY_BACKEND:
                raise ConfigurationError(
                    f"backend {STUDY_BACKEND!r} unavailable: {reason}"
                )
        trees = seeds.trees if isinstance(seeds, TrialSeedBatch) else seeds
        return [self.run_single(trial_seed) for trial_seed in trees]

    def _run_parallel(
        self, seeds: List[SeedTree], workers: int
    ) -> List[SimulationResult]:
        chunks = _contiguous_chunks(seeds, workers)
        context = multiprocessing.get_context("fork")
        with context.Pool(
            processes=len(chunks),
            initializer=_init_trial_worker,
            initargs=(self, chunks),
        ) as pool:
            shards = pool.map(_run_trial_chunk, range(len(chunks)))
        return [result for shard in shards for result in shard]


def _contiguous_chunks(seeds: List[SeedTree], workers: int) -> List[List[SeedTree]]:
    """Split seeds into at most ``workers`` contiguous, near-even shards."""
    count = len(seeds)
    workers = min(workers, count)
    bounds = np.linspace(0, count, workers + 1).astype(int)
    return [
        list(seeds[lo:hi]) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def run_trials(
    protocol_factory: ProtocolFactory,
    adversary_factory: AdversaryFactory,
    horizon: int,
    trials: int = 5,
    seed: SeedLike = None,
    keep_trace: bool = False,
    stop_when_drained: bool = False,
    label: str = "",
    collectors: Optional[Sequence] = None,
    backend: str = AUTO_BACKEND,
    workers: int = 1,
) -> TrialStudy:
    """Convenience wrapper: build the config and runner and execute the trials.

    ``protocol_factory`` / ``adversary_factory`` accept either plain
    callables or declarative specs (:class:`~repro.spec.ProtocolSpec` /
    :class:`~repro.spec.AdversarySpec`); see :class:`TrialRunner`.  For a
    fully declarative entry point use :meth:`repro.spec.StudySpec.run`.
    """
    config = SimulatorConfig(
        horizon=horizon,
        keep_trace=keep_trace,
        stop_when_drained=stop_when_drained,
    )
    runner = TrialRunner(
        protocol_factory,
        adversary_factory,
        config,
        label=label,
        collectors=collectors or (),
        backend=backend,
        workers=workers,
    )
    return runner.run(trials=trials, seed=seed)
